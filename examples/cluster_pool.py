"""Sharding a Monte-Carlo PVT sweep across a local cluster worker pool.

The script demonstrates the third execution tier (:mod:`repro.cluster`) on
one machine:

1. build a ``distributed`` executor that spawns two long-lived worker
   subprocesses (the same thing ``python -m repro run pvt --executor
   distributed --workers 2`` does) and registers them with the in-process
   coordinator;
2. run the Fig. 5d Monte-Carlo mismatch panel as a *sharded* sweep —
   contiguous ``SeedSequence``-stable sample ranges dispatched as chunks
   across the pool — and verify the merged result is **bit-identical** to
   the serial, unsharded reference;
3. re-run the sharded sweep against a content-addressed artifact cache:
   every shard is a cache hit resolved engine-side, so nothing crosses the
   wire at all;
4. print the coordinator's live status document — the same numbers
   ``python -m repro cluster status --connect HOST:PORT`` reports.

Run with::

    PYTHONPATH=src python examples/cluster_pool.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.analysis.pvt_sweeps import mismatch_monte_carlo, mismatch_monte_carlo_sharded
from repro.circuits.technology import tsmc65_like
from repro.cluster import DistributedExecutor
from repro.runtime import ArtifactCache, SweepEngine

SAMPLES = 128
SHARDS = 8


def main() -> None:
    technology = tsmc65_like()

    print("serial, unsharded reference panel ...")
    reference = mismatch_monte_carlo(technology, samples=SAMPLES, seed=7)

    with tempfile.TemporaryDirectory() as cache_dir:
        with DistributedExecutor(workers=2, chunksize=1) as executor:
            address = executor.address
            if address is None:
                # Sandboxed host: the executor degraded to serial — the
                # sharded sweep still runs and stays bit-identical.
                print("cluster unavailable here; sweeps degrade to serial")
            else:
                print(
                    f"cluster endpoint on {address[0]}:{address[1]}, "
                    f"workers: {executor.worker_pids}"
                )
            engine = SweepEngine(executor, cache=ArtifactCache(cache_dir))

            print(f"sharded sweep: {SAMPLES} samples in {SHARDS} chunks across the pool ...")
            sharded = mismatch_monte_carlo_sharded(
                technology, samples=SAMPLES, seed=7, shards=SHARDS, engine=engine
            )
            identical = np.array_equal(
                reference["sigma_at_sampling_times"], sharded["sigma_at_sampling_times"]
            ) and np.array_equal(reference["final_voltages"], sharded["final_voltages"])
            print(f"  bit-identical to serial: {identical}")
            for t, sigma in zip(
                sharded["sampling_times"], sharded["sigma_at_sampling_times"]
            ):
                print(f"  sigma(V_BLB) at {t * 1e9:.1f} ns = {sigma * 1e3:5.2f} mV")

            print("warm re-run: every shard resolves from the artifact cache ...")
            jobs_done_before = executor.status().get("stats", {}).get("jobs_done", 0)
            mismatch_monte_carlo_sharded(
                technology, samples=SAMPLES, seed=7, shards=SHARDS, engine=engine
            )
            jobs_done_after = executor.status().get("stats", {}).get("jobs_done", 0)
            print(
                f"  jobs crossing the wire: {jobs_done_after - jobs_done_before} "
                f"(engine cache hits: {engine.stats.cache_hits})"
            )

            status = executor.status()
            stats = status.get("stats")
            if stats is not None:
                print(
                    f"cluster status: {status['alive_workers']} workers alive, "
                    f"{stats['chunks_dispatched']} chunks dispatched, "
                    f"{stats['chunks_stolen']} stolen, {stats['chunks_retried']} retried"
                )
    print("workers terminated; done")


if __name__ == "__main__":
    main()
