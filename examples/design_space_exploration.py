#!/usr/bin/env python3
"""Design-space exploration of the 4-bit in-SRAM multiplier (paper Section V).

Sweeps the 48-corner design space over ``tau0``, ``V_DAC,0`` and
``V_DAC,FS`` with the fast OPTIMA-backed multiplier, prints the Fig. 7
trends, the Pareto front and the three selected corners of Table I, and runs
the Fig. 8 PVT robustness analysis for each selected corner.

All heavy work (characterisation sweeps, the 48 corner evaluations, the
robustness sweeps) is submitted through a :class:`repro.runtime.SweepEngine`
with a process-pool executor and a content-addressed artifact cache, so a
second run of this example is served from disk in milliseconds.  The same
flow is available as ``python -m repro run dse``.

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

import os

from repro.analysis.design_space import (
    corner_summary_rows,
    figure7_slices,
    format_table1,
    run_design_space_exploration,
)
from repro.circuits import tsmc65_like
from repro.core.calibration import calibrated_suite
from repro.core.pvt import analyze_corner_robustness
from repro.core.speedup import measure_speedup
from repro.runtime import ArtifactCache, ParallelExecutor, SweepEngine


def main() -> None:
    technology = tsmc65_like()
    engine = SweepEngine(
        ParallelExecutor(max_workers=os.cpu_count()), cache=ArtifactCache()
    )
    print(f"sweep engine: {engine.describe()}")
    print("calibrating OPTIMA (characterisation sweeps via the engine) ...")
    suite = calibrated_suite(technology, engine=engine).suite

    print("exploring the 48-corner design space ...")
    result = run_design_space_exploration(technology, suite=suite, engine=engine)
    print(result.describe())
    print()

    # Fig. 7: error / energy trends.
    slices = figure7_slices(result)
    print("Fig. 7 (left): error and energy versus V_DAC,FS (smallest tau0)")
    for row in slices["versus_full_scale"]:
        print(
            f"  V0={row['v_dac_zero']:.1f} V  FS={row['v_dac_full_scale']:.1f} V  "
            f"eps={row['eps_mul_lsb']:5.2f} LSB  E={row['energy_fj']:5.1f} fJ"
        )
    print()

    # Pareto front.
    print("Pareto-optimal corners (energy vs error):")
    for point in result.pareto_front():
        print(
            f"  tau0={point.config.tau0 * 1e9:.2f} ns V0={point.config.v_dac_zero:.1f} "
            f"FS={point.config.v_dac_full_scale:.1f}: "
            f"eps={point.mean_error_lsb:5.2f} LSB, E={point.energy_per_multiplication * 1e15:5.1f} fJ"
        )
    print()

    # Table I.
    rows = corner_summary_rows(result)
    print("Table I reproduction (measured vs paper):")
    print(format_table1(rows))
    print()

    # Fig. 8: PVT robustness of the selected corners.
    print("Fig. 8: PVT robustness of the selected corners")
    for corner in result.selected_corners():
        report = analyze_corner_robustness(suite, corner.config, engine=engine)
        print("  " + report.describe())
    print()

    # Speed-up measurement (paper Section V).
    print("speed-up versus the reference circuit simulator:")
    report = measure_speedup(technology, suite, input_space_repetitions=2, monte_carlo_samples=200)
    print(report.describe())
    print()
    print(engine.describe())


if __name__ == "__main__":
    main()
