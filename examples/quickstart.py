#!/usr/bin/env python3
"""Quickstart: calibrate OPTIMA, query the models, multiply two numbers.

This walks the three core steps of the framework on the default 65 nm-class
technology card:

1. characterise the reference (transistor-level) simulator and fit the
   OPTIMA behavioural models (paper Eq. 3-8),
2. query the fitted models for discharges, sigmas and energies,
3. run a 4-bit in-SRAM multiplication with the fast multiplier model and
   compare it against the slow reference simulation.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import OperatingConditions, tsmc65_like
from repro.core import calibrate
from repro.multiplier import InSramMultiplier, ReferenceMultiplier
from repro.multiplier.config import MultiplierConfig


def main() -> None:
    technology = tsmc65_like()
    print(f"technology card        : {technology.name}")
    print(f"nominal supply         : {technology.vdd_nominal:.2f} V")
    print(f"nominal threshold      : {technology.vth_nominal:.2f} V")
    print()

    # ------------------------------------------------------------------
    # Step 1: calibrate the OPTIMA behavioural models.
    # ------------------------------------------------------------------
    print("calibrating OPTIMA against the reference simulator ...")
    calibration = calibrate(technology)
    print(calibration.describe())
    print()
    suite = calibration.suite

    # ------------------------------------------------------------------
    # Step 2: query the fitted models.
    # ------------------------------------------------------------------
    conditions = OperatingConditions.nominal(technology)
    sampling_time = 1.28e-9
    for wordline_voltage in (0.5, 0.7, 0.9):
        discharge = float(suite.discharge_voltage(sampling_time, wordline_voltage, conditions))
        sigma = float(suite.mismatch_sigma(sampling_time, wordline_voltage))
        energy = float(suite.discharge_event_energy(discharge, conditions))
        print(
            f"V_WL={wordline_voltage:.1f} V @ {sampling_time * 1e9:.2f} ns: "
            f"discharge={discharge * 1e3:6.1f} mV  "
            f"sigma={sigma * 1e3:5.2f} mV  "
            f"E_dc={energy * 1e15:5.1f} fJ"
        )
    print(f"write energy per 4-bit word: {suite.word_write_energy(conditions) * 1e15:.1f} fJ")
    print()

    # ------------------------------------------------------------------
    # Step 3: multiply two 4-bit numbers, fast model vs. reference.
    # ------------------------------------------------------------------
    config = MultiplierConfig(tau0=0.16e-9, v_dac_zero=0.3, v_dac_full_scale=1.0, name="demo")
    fast = InSramMultiplier(suite, config)
    reference = ReferenceMultiplier(technology, config)

    x, d = 11, 13
    fast_result = int(np.asarray(fast.multiply(x, d)))
    reference_result = int(np.asarray(reference.multiply(x, d)))
    print(f"in-SRAM multiply {x} x {d} (expected {x * d}):")
    print(f"  OPTIMA model      : {fast_result}")
    print(f"  reference circuit : {reference_result}")
    print(
        f"  energy per multiply: {float(np.mean(fast.multiplication_energy(x, d))) * 1e15:.1f} fJ, "
        f"per full operation: {float(np.mean(fast.operation_energy(x, d))) * 1e12:.2f} pJ"
    )


if __name__ == "__main__":
    main()
