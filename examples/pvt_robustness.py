#!/usr/bin/env python3
"""PVT variation study of the bit-line discharge and the multiplier.

Reproduces the circuit-level sweeps of paper Fig. 5 (supply voltage,
temperature, process corners, transistor mismatch) on the reference
simulator, then shows how those variations translate into multiplication
errors for the selected fom corner (paper Fig. 8, right column) and how the
event-driven testbench executes one full multiply sequence.

The per-condition reference transients and the model-based sweeps are
submitted through a :class:`repro.runtime.SweepEngine` (process-pool
executor + artifact cache); the same flow is available as
``python -m repro run pvt``.

Run with ``python examples/pvt_robustness.py``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.pvt_sweeps import (
    corner_sweep,
    mismatch_monte_carlo,
    supply_sweep,
    temperature_sweep,
)
from repro.circuits import tsmc65_like
from repro.core.calibration import calibrated_suite
from repro.core.dse import explore_design_space
from repro.core.pvt import analyze_corner_robustness
from repro.eventsim import MultiplierTestbench
from repro.runtime import ArtifactCache, ParallelExecutor, SweepEngine


def main() -> None:
    technology = tsmc65_like()
    engine = SweepEngine(
        ParallelExecutor(max_workers=os.cpu_count()), cache=ArtifactCache()
    )
    print(f"sweep engine: {engine.describe()}")

    print("Fig. 5a: supply-voltage influence on the discharge (V_WL = 0.9 V, 2 ns)")
    supply = supply_sweep(technology, engine=engine)
    for vdd, trace in sorted(item for item in supply.items() if item[0] > 0):
        print(f"  VDD={vdd:.1f} V: final V_BLB = {trace[-1]:.3f} V")

    print("Fig. 5b: temperature influence")
    temperature = temperature_sweep(technology, engine=engine)
    for temp_c, trace in sorted(item for item in temperature.items() if item[0] >= 0):
        print(f"  T={temp_c:5.1f} degC: final V_BLB = {trace[-1]:.3f} V")

    print("Fig. 5c: process corners")
    corners = corner_sweep(technology, engine=engine)
    for name in ("fast", "typical", "slow"):
        print(f"  {name:<8}: final V_BLB = {corners[name][-1]:.3f} V")

    print("Fig. 5d: transistor mismatch (1000 Monte-Carlo samples)")
    monte_carlo = mismatch_monte_carlo(technology, samples=1000)
    for time, sigma in zip(
        monte_carlo["sampling_times"], monte_carlo["sigma_at_sampling_times"]
    ):
        print(f"  sigma(V_BLB) at {time * 1e9:.1f} ns = {sigma * 1e3:5.2f} mV")
    print()

    print("translating PVT variation into multiplication error (fom corner) ...")
    suite = calibrated_suite(technology, engine=engine).suite
    exploration = explore_design_space(suite, engine=engine)
    fom = exploration.best_fom().config.renamed("fom")
    report = analyze_corner_robustness(suite, fom, engine=engine)
    print(f"  nominal error: {report.nominal_error_lsb:.2f} LSB")
    print("  error versus supply voltage:")
    for vdd, error in zip(report.supply_sweep.values, report.supply_sweep.mean_error_lsb):
        print(f"    VDD={vdd:.2f} V -> {error:5.2f} LSB")
    print("  error versus temperature:")
    for temp_c, error in zip(
        report.temperature_sweep.values, report.temperature_sweep.mean_error_lsb
    ):
        print(f"    T={temp_c:5.1f} degC -> {error:5.2f} LSB")
    print()

    print("event-driven testbench: one full multiply sequence at the fom corner")
    testbench = MultiplierTestbench(suite, fom)
    result = testbench.run_multiply(9, 14)
    print(f"  result {result.product} (expected {result.expected}), "
          f"{result.executed_events} events, finished at {result.finish_time * 1e9:.2f} ns")
    for line in result.event_log[-6:]:
        print("   ", line)


if __name__ == "__main__":
    main()
