"""Serving sweeps to many clients: the `repro.service` front door.

The script demonstrates the full multi-client story on one machine:

1. start a :class:`repro.service.SweepService` (the same thing
   ``python -m repro serve`` runs) on an ephemeral port, backed by one
   engine and one size-bounded artifact cache;
2. have two **concurrent** clients submit the *same* fast design-space
   exploration — the server single-flights them onto one execution, both
   receive streamed progress events and the result;
3. submit the sweep a third time — now the content-addressed artifact
   cache serves every job, so nothing executes at all;
4. show the cache's LRU eviction policy trimming a deliberately tiny
   cache while protecting the most recently used artifacts.

Run with::

    PYTHONPATH=src python examples/service_clients.py
"""

from __future__ import annotations

import asyncio
import tempfile

import numpy as np

from repro.runtime import Artifact, ArtifactCache, SweepEngine, job_key
from repro.service import ServiceClient, SweepService


async def _serve_two_clients(cache_dir: str) -> None:
    engine = SweepEngine(cache=ArtifactCache(cache_dir))
    service = SweepService(engine)
    host, port = await service.start()
    print(f"service listening on {host}:{port}")

    progress_counts = {"alice": 0, "bob": 0}

    async def submit(name: str):
        async with ServiceClient(host, port) as client:
            def on_progress(done, total, label, name=name):
                progress_counts[name] += 1

            return await client.submit("dse", {"fast": True}, on_progress=on_progress)

    print("two clients submit the same fast DSE sweep concurrently ...")
    alice, bob = await asyncio.gather(submit("alice"), submit("bob"))
    for name, result in (("alice", alice), ("bob", bob)):
        best = result.payload["selected"][0]
        print(
            f"  {name:<5}: deduplicated={result.deduplicated!s:<5} "
            f"progress events={progress_counts[name]:3d} "
            f"fom corner error={best['eps_mul_lsb']:.3f} LSB"
        )
    print(f"  engine after both: {engine.stats.describe()}")

    print("a third, later submission is served by the artifact cache ...")
    executed_before = engine.stats.jobs_executed
    async with ServiceClient(host, port) as client:
        warm = await client.submit("dse", {"fast": True})
    print(
        f"  warm run: {engine.stats.jobs_executed - executed_before} jobs executed, "
        f"{warm.elapsed_seconds * 1e3:.0f} ms"
    )
    await service.stop()


def _lru_eviction_demo(cache_dir: str) -> None:
    import os
    import time

    print("size-bounded LRU eviction:")
    cache = ArtifactCache(cache_dir, max_bytes=1)  # absurdly small: always evicts
    keys = [job_key("lru-demo", index) for index in range(3)]
    for age, key in zip((300, 200, 100), keys):
        path = cache.put(key, Artifact(arrays={"x": np.zeros(512)}))
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
    survivors = [key[:12] for key in cache.keys()]
    print(f"  3 artifacts written into a 1-byte-budget cache -> survivors: {survivors}")
    print(f"  (the just-written artifact is always protected; {cache.stats.evictions} evicted)")


def main() -> None:
    with tempfile.TemporaryDirectory() as service_cache:
        asyncio.run(asyncio.wait_for(_serve_two_clients(service_cache), 300))
    with tempfile.TemporaryDirectory() as lru_cache:
        _lru_eviction_demo(lru_cache)


if __name__ == "__main__":
    main()
