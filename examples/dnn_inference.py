#!/usr/bin/env python3
"""In-SRAM multipliers inside a quantised DNN (paper Section VI).

Trains a scaled-down VGG16-style network on the synthetic "imagenet-like"
dataset, quantises it to INT4, and evaluates its accuracy when every
multiplication runs through each of the three in-SRAM multiplier corners —
the single-model version of the Table II experiment.

Run with ``python examples/dnn_inference.py`` (takes a couple of minutes).
"""

from __future__ import annotations

from repro.analysis.dnn_tables import corner_backends
from repro.circuits import tsmc65_like
from repro.core.calibration import calibrated_suite
from repro.dnn import (
    TrainingConfig,
    build_vgg16_like,
    evaluate_backends,
    imagenet_like,
    quantize_network,
    train_network,
)


def main() -> None:
    technology = tsmc65_like()
    print("calibrating OPTIMA and selecting multiplier corners ...")
    suite = calibrated_suite(technology).suite
    backends = corner_backends(technology, suite=suite)
    for name, backend in backends.items():
        print(
            f"  corner {name:<10} mean LUT error "
            f"{backend.table.mean_error_lsb():5.2f} LSB, "
            f"small-operand error {backend.table.error_for_small_operands():5.2f} LSB"
        )
    print()

    print("building the synthetic imagenet-like dataset ...")
    dataset = imagenet_like()
    print("  " + dataset.describe())

    print("training a VGG16-style network (FLOAT32) ...")
    network = build_vgg16_like((dataset.image_shape[0], dataset.image_shape[1], 3), dataset.classes)
    history = train_network(
        network, dataset, TrainingConfig(epochs=10, learning_rate=0.08, verbose=True)
    )
    print(f"  final FLOAT32 test accuracy: {100 * history.final_test_accuracy:.1f} %")
    print()

    print("post-training INT4 quantisation ...")
    quantized = quantize_network(network, dataset.train_images[:128])

    print("evaluating all execution modes on the test split ...")
    reports = evaluate_backends(network, quantized, backends, dataset)
    print()
    print(f"{'mode':<12}{'top-1 [%]':>12}{'top-5 [%]':>12}")
    for mode, report in reports.items():
        print(f"{mode:<12}{100 * report.top1:>12.1f}{100 * report.top5:>12.1f}")
    print()
    print(
        "expected shape (paper Table II): float32 >= int4 >= fom >> power > variation,\n"
        "with the variation corner collapsing because of its error on small operands."
    )


if __name__ == "__main__":
    main()
