"""Event-driven simulation framework hosting the OPTIMA behavioural models.

The paper incorporates its behavioural models into a discrete-time simulation
framework written in SystemVerilog so that analogue bit-line voltages can be
simulated "in an event-based fashion, akin to digital simulation tools".
This package is the Python equivalent:

* :mod:`repro.eventsim.kernel` — a deterministic event queue with
  simulation time, scheduling and process registration.
* :mod:`repro.eventsim.signals` — named signals with value history and
  change callbacks (the waveform view a digital simulator would give you).
* :mod:`repro.eventsim.components` — the component library of the
  multiplier testbench: pre-charge unit, word-line DAC driver, bit-line
  models backed by the OPTIMA discharge model, sampling switches and the
  read-out ADC.
* :mod:`repro.eventsim.testbench` — the full multiply-sequence testbench
  (paper Fig. 3 / Section V) assembled from those components.
"""

from repro.eventsim.kernel import Event, SimulationKernel
from repro.eventsim.signals import AnalogSignal, DigitalSignal, Signal
from repro.eventsim.components import (
    AdcReadout,
    BitlineComponent,
    Component,
    PrechargeUnit,
    SamplingSwitch,
    WordlineDriver,
)
from repro.eventsim.testbench import MultiplierTestbench, TestbenchResult

__all__ = [
    "AdcReadout",
    "AnalogSignal",
    "BitlineComponent",
    "Component",
    "DigitalSignal",
    "Event",
    "MultiplierTestbench",
    "PrechargeUnit",
    "SamplingSwitch",
    "Signal",
    "SimulationKernel",
    "TestbenchResult",
    "WordlineDriver",
]
