"""Deterministic discrete-event simulation kernel.

The kernel keeps a priority queue of timed events.  Components schedule
callbacks at absolute or relative times; the kernel pops events in time order
(with a monotonically increasing sequence number breaking ties, so two events
scheduled for the same instant execute in scheduling order, which keeps runs
reproducible).  This is the same execution model as an HDL simulator's event
wheel, which is the point: the OPTIMA models replace the analogue solver, not
the digital scheduling.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, List, Optional


@dataclasses.dataclass(order=True)
class Event:
    """One scheduled event.

    Events order by time first and by scheduling sequence second; the
    callback and label do not participate in ordering.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    label: str = dataclasses.field(compare=False, default="")
    cancelled: bool = dataclasses.field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the kernel will skip it."""
        self.cancelled = True


class SimulationKernel:
    """Event queue with simulation time.

    Parameters
    ----------
    time_resolution:
        Smallest representable time step in seconds.  Scheduled times are
        quantised to this resolution, mirroring the timescale setting of an
        HDL simulator and avoiding float-comparison surprises in tests.
    """

    def __init__(self, time_resolution: float = 1e-15) -> None:
        if time_resolution <= 0.0:
            raise ValueError("time_resolution must be positive")
        self.time_resolution = time_resolution
        self._now = 0.0
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._executed_events = 0
        self._log: List[str] = []

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed_events

    def _quantise(self, time: float) -> float:
        return round(time / self.time_resolution) * self.time_resolution

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        time = self._quantise(time)
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time:.3e} s before current time "
                f"{self._now:.3e} s"
            )
        event = Event(
            time=time, sequence=next(self._sequence), callback=callback, label=label
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at ``delay`` seconds after the current time."""
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Execute the next pending event; return it, or ``None`` if idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._executed_events += 1
            if event.label:
                self._log.append(f"{event.time * 1e9:9.3f} ns  {event.label}")
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains or ``until`` is reached.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue and executed < max_events:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                break
            if self.step() is not None:
                executed += 1
        if until is not None and (not self._queue or self._queue[0].time > until):
            self._now = max(self._now, self._quantise(until))
        return executed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def event_log(self) -> List[str]:
        """Human-readable log of the labelled events executed so far."""
        return list(self._log)

    def reset(self) -> None:
        """Drop all pending events and rewind time to zero."""
        self._queue.clear()
        self._log.clear()
        self._now = 0.0
        self._executed_events = 0
