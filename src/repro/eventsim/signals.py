"""Signals for the event-driven simulation framework.

A signal is a named value with a change history and optional change
callbacks.  Components communicate exclusively through signals, which gives
the testbench a waveform-style view of the simulation (every transition is
timestamped) — the same observability an HDL simulator provides.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np


class Signal:
    """A named value with change history.

    Parameters
    ----------
    name:
        Signal name used in traces.
    initial:
        Initial value at time zero.
    """

    def __init__(self, name: str, initial: object = None) -> None:
        self.name = name
        self._value = initial
        self._history: List[Tuple[float, object]] = [(0.0, initial)]
        self._listeners: List[Callable[["Signal", float], None]] = []

    @property
    def value(self) -> object:
        """Current value of the signal."""
        return self._value

    def set(self, value: object, time: float) -> None:
        """Drive a new value at simulation time ``time``."""
        if time < self._history[-1][0]:
            raise ValueError(
                f"signal {self.name}: cannot drive value at {time:.3e} s, "
                f"earlier than last change {self._history[-1][0]:.3e} s"
            )
        self._value = value
        self._history.append((time, value))
        for listener in list(self._listeners):
            listener(self, time)

    def on_change(self, listener: Callable[["Signal", float], None]) -> None:
        """Register a callback invoked after every :meth:`set`."""
        self._listeners.append(listener)

    def history(self) -> List[Tuple[float, object]]:
        """All (time, value) transitions, including the initial value."""
        return list(self._history)

    def value_at(self, time: float) -> object:
        """Value the signal held at simulation time ``time``."""
        result = self._history[0][1]
        for change_time, value in self._history:
            if change_time <= time:
                result = value
            else:
                break
        return result

    def change_count(self) -> int:
        """Number of value changes after initialisation."""
        return len(self._history) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Signal({self.name!r}, value={self._value!r})"


class DigitalSignal(Signal):
    """Signal restricted to integer values (codes, flags, counters)."""

    def __init__(self, name: str, initial: int = 0) -> None:
        super().__init__(name, int(initial))

    def set(self, value: object, time: float) -> None:
        """Drive a new integer value at ``time``."""
        super().set(int(value), time)

    @property
    def value(self) -> int:
        """Current integer value."""
        return int(self._value)


class AnalogSignal(Signal):
    """Signal carrying a floating-point voltage."""

    def __init__(self, name: str, initial: float = 0.0) -> None:
        super().__init__(name, float(initial))

    def set(self, value: object, time: float) -> None:
        """Drive a new voltage at ``time``."""
        super().set(float(value), time)

    @property
    def value(self) -> float:
        """Current voltage."""
        return float(self._value)

    def as_waveform(self) -> Tuple[np.ndarray, np.ndarray]:
        """History as (times, values) arrays for plotting or assertions."""
        times = np.array([entry[0] for entry in self._history], dtype=float)
        values = np.array([entry[1] for entry in self._history], dtype=float)
        return times, values

    def max_value(self) -> float:
        """Largest voltage the signal ever held."""
        return float(max(entry[1] for entry in self._history))

    def min_value(self) -> float:
        """Smallest voltage the signal ever held."""
        return float(min(entry[1] for entry in self._history))
