"""Full multiply-sequence testbench on the event-driven framework.

The testbench executes the sequence of paper Fig. 3 / Section V with explicit
timing:

1. write the weight word into the array columns,
2. pre-charge all bit-line-bars,
3. settle the word-line DAC to the input voltage,
4. start all discharges simultaneously; sample bit-line ``i`` after
   ``2**i * tau0``,
5. charge-share the sampling capacitors,
6. convert the combined voltage with the ADC.

The digital result must agree with the vectorised
:class:`~repro.multiplier.imac.InSramMultiplier` model (the testbench uses
the same model suite and read-out calibration) — the integration tests assert
exactly that, which validates the event-based framework against the direct
evaluation path.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.core.model_suite import OptimaModelSuite
from repro.eventsim.components import (
    AdcReadout,
    BitlineComponent,
    PrechargeUnit,
    SamplingSwitch,
    WordlineDriver,
)
from repro.eventsim.kernel import SimulationKernel
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier


@dataclasses.dataclass
class TestbenchResult:
    """Outcome of one event-driven multiply."""

    x: int
    d: int
    product: int
    expected: int
    combined_discharge: float
    finish_time: float
    executed_events: int
    event_log: List[str]

    @property
    def error(self) -> int:
        """Signed error of the digital result."""
        return self.product - self.expected


class MultiplierTestbench:
    """Event-driven testbench of the IMAC-style multiplier.

    Parameters
    ----------
    suite:
        Calibrated OPTIMA model suite.
    config:
        Multiplier configuration to exercise.
    conditions:
        PVT conditions of the run.
    rng:
        Optional random generator; when provided, each discharge is
        perturbed with the Eq. 6 mismatch sigma.
    precharge_time, settle_time, adc_time:
        Phase durations of the controller sequence.
    """

    def __init__(
        self,
        suite: OptimaModelSuite,
        config: MultiplierConfig,
        conditions: Optional[OperatingConditions] = None,
        rng: Optional[np.random.Generator] = None,
        precharge_time: float = 0.5e-9,
        settle_time: float = 0.2e-9,
        adc_time: float = 1.0e-9,
    ) -> None:
        self.suite = suite
        self.config = config
        self.conditions = conditions or OperatingConditions(
            vdd=suite.vdd_nominal, temperature=suite.temperature_nominal
        )
        self.rng = rng
        self.precharge_time = precharge_time
        self.settle_time = settle_time
        self.adc_time = adc_time

        # Reuse the multiplier model for the DAC and the read-out
        # calibration, so the testbench and the direct model share one
        # transfer function by construction.
        self._model = InSramMultiplier(suite, config, conditions=self.conditions)

        self.kernel = SimulationKernel()
        self.bitlines = [
            BitlineComponent(self.kernel, suite, index, self.conditions, rng=rng)
            for index in range(config.bits)
        ]
        self.precharge = PrechargeUnit(
            self.kernel,
            [bitline.voltage for bitline in self.bitlines],
            vdd=self.conditions.vdd,
            duration=precharge_time,
        )
        self.wordline = WordlineDriver(self.kernel, self._model.dac, settle_time=settle_time)
        self.sampler = SamplingSwitch(self.kernel, branches=config.bits)
        self.readout = AdcReadout(
            self.kernel,
            adc=self._model.adc,
            scale=self._model._readout_scale,
            offset=self._model._readout_offset,
            product_levels=config.product_levels,
            conversion_time=adc_time,
        )

    # ------------------------------------------------------------------
    # Sequence
    # ------------------------------------------------------------------
    def run_multiply(self, x: int, d: int) -> TestbenchResult:
        """Execute one full multiply through the event queue."""
        if not 0 <= x <= self.config.max_operand:
            raise ValueError(f"x out of range 0..{self.config.max_operand}")
        if not 0 <= d <= self.config.max_operand:
            raise ValueError(f"d out of range 0..{self.config.max_operand}")

        kernel = self.kernel
        start = kernel.now
        self.sampler.clear()

        # Phase 1: write the weight into the columns (digital, immediate).
        for index, bitline in enumerate(self.bitlines):
            bitline.write_bit((d >> index) & 1)

        # Phase 2: pre-charge.
        self.precharge.start()

        # Phase 3: word-line settle after pre-charge completes.  The
        # discharge phase starts one picosecond after the settle event so
        # the word-line value is guaranteed to be up to date when the
        # bit-line components latch it.
        wordline_ready = start + self.precharge_time + self.settle_time
        discharge_start = wordline_ready + 1e-12
        kernel.schedule_at(
            start + self.precharge_time,
            lambda: self.wordline.apply(x),
            label="controller: apply input code",
        )

        # Phase 4: discharges start once the word line has settled; each
        # bit-line is sampled after its bit-weighted window.
        def start_discharges() -> None:
            wordline_voltage = self.wordline.wordline.value
            for bitline in self.bitlines:
                bitline.begin_discharge(wordline_voltage)

        kernel.schedule_at(discharge_start, start_discharges, label="controller: discharge start")

        for index, duration in enumerate(self.config.discharge_times()):
            def make_sampler(branch_index: int) -> object:
                def do_sample() -> None:
                    discharge = self.bitlines[branch_index].sample()
                    self.sampler.capture(branch_index, discharge)

                return do_sample

            kernel.schedule_at(
                discharge_start + duration,
                make_sampler(index),
                label=f"controller: sample blb{index}",
            )

        # Phase 5: charge sharing after the slowest sample, then ADC.
        share_time = discharge_start + self.config.max_discharge_time + 0.05e-9
        state: Dict[str, float] = {}

        def do_share() -> None:
            state["combined"] = self.sampler.share()
            self.wordline.release()
            self.readout.convert(state["combined"])

        kernel.schedule_at(share_time, do_share, label="controller: charge share")

        kernel.run()

        return TestbenchResult(
            x=x,
            d=d,
            product=self.readout.result.value,
            expected=x * d,
            combined_discharge=float(state.get("combined", 0.0)),
            finish_time=kernel.now,
            executed_events=kernel.executed_events,
            event_log=kernel.event_log(),
        )

    def run_sweep(self, pairs: List[tuple]) -> List[TestbenchResult]:
        """Run a list of (x, d) pairs and return one result per pair."""
        return [self.run_multiply(int(x), int(d)) for x, d in pairs]

    def model_result(self, x: int, d: int) -> int:
        """Result of the direct (non-event-driven) model for comparison."""
        return int(np.asarray(self._model.multiply(x, d)))
