"""Component library of the event-driven multiplier testbench.

Each component owns a handful of signals and schedules its behaviour on the
shared :class:`~repro.eventsim.kernel.SimulationKernel`.  The analogue
behaviour (how far a bit-line has discharged at its sampling instant) is
delegated to the calibrated OPTIMA model suite — the components only manage
*when* things happen, which is exactly the division of labour of the paper's
SystemVerilog framework.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.converters.adc import Adc
from repro.converters.dac import DacLike
from repro.core.model_suite import OptimaModelSuite
from repro.eventsim.kernel import SimulationKernel
from repro.eventsim.signals import AnalogSignal, DigitalSignal


class Component:
    """Base class wiring a component to the kernel."""

    def __init__(self, kernel: SimulationKernel, name: str) -> None:
        self.kernel = kernel
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class PrechargeUnit(Component):
    """Pre-charges a set of bit-lines to VDD.

    Parameters
    ----------
    kernel:
        Shared simulation kernel.
    bitlines:
        The analogue bit-line signals to pre-charge.
    vdd:
        Pre-charge target voltage.
    duration:
        Time the pre-charge phase takes.
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        bitlines: List[AnalogSignal],
        vdd: float,
        duration: float = 0.5e-9,
    ) -> None:
        super().__init__(kernel, "precharge")
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        self.bitlines = bitlines
        self.vdd = vdd
        self.duration = duration
        self.done = DigitalSignal("precharge_done", 0)

    def start(self) -> None:
        """Begin the pre-charge phase at the current simulation time."""
        self.done.set(0, self.kernel.now)

        def finish() -> None:
            for bitline in self.bitlines:
                bitline.set(self.vdd, self.kernel.now)
            self.done.set(1, self.kernel.now)

        self.kernel.schedule_after(self.duration, finish, label=f"{self.name}: done")


class WordlineDriver(Component):
    """Drives the word line with the DAC output for the applied input code."""

    def __init__(self, kernel: SimulationKernel, dac: DacLike, settle_time: float = 0.2e-9) -> None:
        super().__init__(kernel, "wordline_driver")
        if settle_time <= 0.0:
            raise ValueError("settle_time must be positive")
        self.dac = dac
        self.settle_time = settle_time
        self.input_code = DigitalSignal("input_code", 0)
        self.wordline = AnalogSignal("v_wl", 0.0)
        self.settled = DigitalSignal("wordline_settled", 0)

    def apply(self, code: int) -> None:
        """Apply an input code; the word line settles after ``settle_time``."""
        self.input_code.set(code, self.kernel.now)
        self.settled.set(0, self.kernel.now)
        target = float(np.asarray(self.dac.voltage(code)))

        def settle() -> None:
            self.wordline.set(target, self.kernel.now)
            self.settled.set(1, self.kernel.now)

        self.kernel.schedule_after(
            self.settle_time, settle, label=f"{self.name}: settle to {target:.3f} V"
        )

    def release(self) -> None:
        """Pull the word line back to ground immediately."""
        self.wordline.set(0.0, self.kernel.now)
        self.settled.set(0, self.kernel.now)


class BitlineComponent(Component):
    """One bit-line-bar column driven by the OPTIMA discharge model.

    The component does not integrate anything; when its sampling instant
    arrives it asks the model suite for the discharge reached after the
    elapsed discharge time and updates its analogue signal in one event —
    exactly the event-based analogue modelling the paper describes.
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        suite: OptimaModelSuite,
        index: int,
        conditions: OperatingConditions,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(kernel, f"blb{index}")
        self.suite = suite
        self.index = index
        self.conditions = conditions
        self.rng = rng
        self.stored_bit = DigitalSignal(f"stored_bit{index}", 0)
        self.voltage = AnalogSignal(f"v_blb{index}", conditions.vdd)
        self._discharge_start: Optional[float] = None
        self._wordline_voltage = 0.0

    def write_bit(self, bit: int) -> None:
        """Store a bit into the cell this column exposes to the multiplier."""
        self.stored_bit.set(bit, self.kernel.now)

    def begin_discharge(self, wordline_voltage: float) -> None:
        """Mark the start of the discharge window."""
        self._discharge_start = self.kernel.now
        self._wordline_voltage = wordline_voltage

    def sample(self) -> float:
        """Evaluate the discharge at the current time and update the signal."""
        if self._discharge_start is None:
            raise RuntimeError(f"{self.name}: sample() before begin_discharge()")
        elapsed = self.kernel.now - self._discharge_start
        if elapsed <= 0.0:
            discharge = 0.0
        elif self.rng is None:
            discharge = float(
                self.suite.discharge_voltage(
                    elapsed,
                    self._wordline_voltage,
                    self.conditions,
                    stored_bit=self.stored_bit.value,
                )
            )
        else:
            discharge = float(
                self.suite.sample_discharge_voltage(
                    elapsed,
                    self._wordline_voltage,
                    self.rng,
                    self.conditions,
                    stored_bit=self.stored_bit.value,
                )
            )
        voltage = self.conditions.vdd - discharge
        self.voltage.set(voltage, self.kernel.now)
        return discharge


class SamplingSwitch(Component):
    """Sampling capacitor bank plus charge-sharing switch."""

    def __init__(self, kernel: SimulationKernel, branches: int) -> None:
        super().__init__(kernel, "sampling_switch")
        if branches <= 0:
            raise ValueError("branches must be positive")
        self.branches = branches
        self.captured: List[Optional[float]] = [None] * branches
        self.combined = AnalogSignal("v_combined", 0.0)

    def capture(self, branch: int, discharge: float) -> None:
        """Capture the discharge of one branch on its sampling capacitor."""
        if not 0 <= branch < self.branches:
            raise IndexError(f"branch {branch} out of range (have {self.branches})")
        self.captured[branch] = float(discharge)

    def share(self) -> float:
        """Short all capacitors together and drive the combined signal."""
        if any(value is None for value in self.captured):
            missing = [i for i, value in enumerate(self.captured) if value is None]
            raise RuntimeError(f"{self.name}: branches {missing} not captured yet")
        combined = float(np.mean([float(v) for v in self.captured]))
        self.combined.set(combined, self.kernel.now)
        return combined

    def clear(self) -> None:
        """Discard all captured values (start of a new operation)."""
        self.captured = [None] * self.branches


class AdcReadout(Component):
    """ADC plus digital product calibration."""

    def __init__(
        self,
        kernel: SimulationKernel,
        adc: Adc,
        scale: float,
        offset: float,
        product_levels: int,
        conversion_time: float = 1.0e-9,
    ) -> None:
        super().__init__(kernel, "adc_readout")
        if conversion_time <= 0.0:
            raise ValueError("conversion_time must be positive")
        self.adc = adc
        self.scale = scale
        self.offset = offset
        self.product_levels = product_levels
        self.conversion_time = conversion_time
        self.result = DigitalSignal("product", 0)
        self.result_valid = DigitalSignal("product_valid", 0)

    def convert(self, voltage: float) -> None:
        """Start a conversion of ``voltage``; the result appears later."""
        self.result_valid.set(0, self.kernel.now)

        def finish() -> None:
            code = int(np.asarray(self.adc.quantize(voltage)))
            product = int(np.clip(round(self.scale * code + self.offset), 0, self.product_levels))
            self.result.set(product, self.kernel.now)
            self.result_valid.set(1, self.kernel.now)

        self.kernel.schedule_after(
            self.conversion_time, finish, label=f"{self.name}: conversion done"
        )
