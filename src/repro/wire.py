"""Shared newline-delimited-JSON wire framing.

One message per line, UTF-8 JSON objects, ``\\n`` terminated — trivially
debuggable with ``nc`` and language-agnostic on the peer side.  Both network
layers of the repository speak this framing:

* :mod:`repro.service` — the client-facing sweep service
  (``python -m repro serve``);
* :mod:`repro.cluster` — the coordinator/worker links of the distributed
  executor (``python -m repro worker``).

The framing is deliberately schema-light: :func:`read_message` enforces only
line length, valid JSON and a top-level object; per-op field validation
lives with each protocol's server, which answers violations with error
events instead of dropping the connection.

Everything here used to live in :mod:`repro.service.protocol`; it was
extracted so the service and the cluster share one tested implementation.
``repro.service.protocol`` re-exports these names for backwards
compatibility.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

#: Hard bound on one framed message.  Generous enough for corner tables and
#: pickled job chunks (the fast DSE payload is ~10 kB), small enough to stop
#: a rogue peer from ballooning server memory.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A peer violated the framing rules (oversized line, bad JSON, ...)."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (JSON + newline)."""
    data = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_MESSAGE_BYTES} byte limit"
        )
    return data + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"message is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


async def read_message(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on clean end-of-stream.

    The caller must have opened the stream with ``limit=MAX_MESSAGE_BYTES``
    (:func:`open_connection` and every server in the repository do), so an
    oversized line surfaces here as a :class:`ProtocolError` rather than
    unbounded buffering.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-message") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            f"message exceeds the {MAX_MESSAGE_BYTES} byte limit"
        ) from None
    return decode_message(line)


async def open_connection(
    host: str,
    port: int,
    timeout: Optional[float] = None,
    limit: int = MAX_MESSAGE_BYTES,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a framed stream, retrying with backoff while ``timeout`` lasts.

    With ``timeout=None`` this is a single connection attempt.  With a
    timeout, connection failures (typically ``ConnectionRefusedError`` from
    a server that is still binding its socket) are retried with exponential
    backoff until the deadline, then the last error propagates.  This is
    what lets a client start concurrently with the server it talks to —
    cluster workers racing their coordinator, test clients racing a
    subprocess ``python -m repro serve`` — without a flaky first connect.
    """
    if timeout is None:
        return await asyncio.open_connection(host, port, limit=limit)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    delay = 0.05
    while True:
        try:
            return await asyncio.open_connection(host, port, limit=limit)
        except OSError:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise
            await asyncio.sleep(min(delay, remaining))
            delay = min(delay * 2.0, 1.0)
