"""Shared newline-delimited-JSON wire framing.

One message per line, UTF-8 JSON objects, ``\\n`` terminated — trivially
debuggable with ``nc`` and language-agnostic on the peer side.  Both network
layers of the repository speak this framing:

* :mod:`repro.service` — the client-facing sweep service
  (``python -m repro serve``);
* :mod:`repro.cluster` — the coordinator/worker links of the distributed
  executor (``python -m repro worker``).

The framing is deliberately schema-light: :func:`read_message` enforces only
line length, valid JSON and a top-level object; per-op field validation
lives with each protocol's server, which answers violations with error
events instead of dropping the connection.

Binary frames
-------------
Large array payloads would suffer 4/3 inflation (plus two full copies) as
base64 text inside a JSON line, so the framing also supports
**length-prefixed binary frames**: a normal JSON header line that carries
the reserved key ``{"binary": N}``, followed immediately by exactly ``N``
raw payload bytes.  :func:`read_message` validates ``N`` against
:data:`MAX_BINARY_BYTES` *before* buffering a single payload byte, reads
the payload with ``readexactly`` (which is not subject to the line
``limit``), and attaches it to the decoded message under
:data:`PAYLOAD_KEY`.  A torn payload — the peer dies mid-transfer — raises
:class:`ProtocolError` promptly instead of hanging the reader.  The payload
bound is deliberately separate from :data:`MAX_MESSAGE_BYTES`: headers stay
small and debuggable while chunked NumPy results ride behind them.
:func:`pack_arrays` / :func:`unpack_arrays` are the canonical payload
codec — dtype/shape-tagged contiguous buffers, reconstructed zero-copy
with ``np.frombuffer`` (this module is the only place outside the cache
allowed to do that; the ``REPRO-WIRE01`` lint rule enforces it).

Everything here used to live in :mod:`repro.service.protocol`; it was
extracted so the service and the cluster share one tested implementation.
``repro.service.protocol`` re-exports these names for backwards
compatibility.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Hard bound on one framed message.  Generous enough for corner tables and
#: pickled job chunks (the fast DSE payload is ~10 kB), small enough to stop
#: a rogue peer from ballooning server memory.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

#: Hard bound on one binary payload (separate from the JSON-line bound:
#: headers stay small, bulk array data rides behind them).  Large enough
#: for any full-scale PVT / characterisation chunk, small enough that a
#: rogue peer cannot balloon memory with one declared length.
MAX_BINARY_BYTES = 256 * 1024 * 1024

#: Reserved header key announcing a binary frame: ``{"binary": N}`` means
#: "exactly N raw payload bytes follow this line".
BINARY_KEY = "binary"

#: Reserved key under which :func:`read_message` attaches a binary frame's
#: payload bytes to the decoded header.  Never travels inside the JSON
#: line itself — a peer that sends it literally is violating the framing.
PAYLOAD_KEY = "_payload"


class ProtocolError(ValueError):
    """A peer violated the framing rules (oversized line, bad JSON, ...)."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (JSON + newline)."""
    data = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_MESSAGE_BYTES} byte limit"
        )
    return data + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"message is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def encode_binary(message: Dict[str, Any], payload: bytes) -> bytes:
    """Serialise one binary frame: header line + raw payload bytes.

    ``message`` must not already carry the reserved :data:`BINARY_KEY` /
    :data:`PAYLOAD_KEY` keys; the payload length is declared for the
    reader.  The header line obeys :data:`MAX_MESSAGE_BYTES`, the payload
    obeys the separate :data:`MAX_BINARY_BYTES` bound.
    """
    if BINARY_KEY in message or PAYLOAD_KEY in message:
        raise ProtocolError(
            f"message must not carry the reserved {BINARY_KEY!r}/{PAYLOAD_KEY!r} keys"
        )
    payload = bytes(payload)
    if len(payload) > MAX_BINARY_BYTES:
        raise ProtocolError(
            f"binary payload of {len(payload)} bytes exceeds the "
            f"{MAX_BINARY_BYTES} byte limit"
        )
    header = encode_message({**message, BINARY_KEY: len(payload)})
    return header + payload


def _declared_payload_length(message: Dict[str, Any]) -> Optional[int]:
    """Validate and return a header's declared payload length (or None)."""
    if PAYLOAD_KEY in message:
        raise ProtocolError(f"reserved key {PAYLOAD_KEY!r} inside a wire message")
    if BINARY_KEY not in message:
        return None
    declared = message[BINARY_KEY]
    if isinstance(declared, bool) or not isinstance(declared, int):
        raise ProtocolError(f"binary length must be an integer, got {declared!r}")
    if declared < 0:
        raise ProtocolError(f"binary length must be non-negative, got {declared}")
    if declared > MAX_BINARY_BYTES:
        raise ProtocolError(
            f"binary payload of {declared} bytes exceeds the "
            f"{MAX_BINARY_BYTES} byte limit"
        )
    return declared


async def read_message(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on clean end-of-stream.

    The caller must have opened the stream with ``limit=MAX_MESSAGE_BYTES``
    (:func:`open_connection` and every server in the repository do), so an
    oversized line surfaces here as a :class:`ProtocolError` rather than
    unbounded buffering.

    A header declaring ``{"binary": N}`` is followed by exactly ``N`` raw
    payload bytes, attached to the returned message under
    :data:`PAYLOAD_KEY`.  The declared length is validated against
    :data:`MAX_BINARY_BYTES` *before* any payload byte is buffered, and a
    payload cut short by a dying peer raises :class:`ProtocolError`
    immediately — malformed binary frames can never hang the reader.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-message") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            f"message exceeds the {MAX_MESSAGE_BYTES} byte limit"
        ) from None
    message = decode_message(line)
    declared = _declared_payload_length(message)
    if declared is None:
        return message
    try:
        payload = await reader.readexactly(declared)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-payload") from None
    message[PAYLOAD_KEY] = payload
    return message


# ----------------------------------------------------------------------
# Array payload codec (the canonical binary-frame payload)
# ----------------------------------------------------------------------
def pack_arrays(arrays: Sequence[np.ndarray]) -> Tuple[List[Dict[str, Any]], bytes]:
    """Pack NumPy arrays into dtype/shape specs plus one contiguous payload.

    Returns ``(specs, payload)`` where ``specs`` is a JSON-safe list of
    ``{"dtype": ..., "shape": [...]}`` entries (rides in the binary-frame
    header) and ``payload`` is the arrays' raw bytes, concatenated in
    order.  Object dtypes are rejected — they would smuggle pickles past
    the framing's trust boundary.
    """
    specs: List[Dict[str, Any]] = []
    buffers: List[bytes] = []
    for array in arrays:
        if not isinstance(array, np.ndarray):
            raise ProtocolError(f"pack_arrays expects ndarrays, got {type(array).__name__}")
        if array.dtype.hasobject:
            raise ProtocolError("object dtypes cannot cross the wire as raw buffers")
        contiguous = np.ascontiguousarray(array)
        specs.append({"dtype": contiguous.dtype.str, "shape": list(contiguous.shape)})
        buffers.append(contiguous.tobytes())
    return specs, b"".join(buffers)


def unpack_arrays(specs: Sequence[Dict[str, Any]], payload: bytes) -> List[np.ndarray]:
    """Reconstruct :func:`pack_arrays` output zero-copy from the payload.

    The returned arrays are read-only views over ``payload``.  Any
    inconsistency — bad dtype string, negative shape, payload length not
    matching the specs — raises :class:`ProtocolError`.
    """
    arrays: List[np.ndarray] = []
    offset = 0
    for spec in specs:
        if not isinstance(spec, dict):
            raise ProtocolError("array spec must be an object")
        try:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(n) for n in spec["shape"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"bad array spec {spec!r}: {error}") from None
        if dtype.hasobject:
            raise ProtocolError("object dtypes cannot cross the wire as raw buffers")
        if any(n < 0 for n in shape):
            raise ProtocolError(f"bad array shape {shape}")
        count = 1
        for n in shape:
            count *= n
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"array payload of {len(payload)} bytes is shorter than its specs declare"
            )
        arrays.append(
            np.frombuffer(payload, dtype=dtype, count=count, offset=offset).reshape(shape)
        )
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"array payload carries {len(payload) - offset} undeclared trailing bytes"
        )
    return arrays


async def open_connection(
    host: str,
    port: int,
    timeout: Optional[float] = None,
    limit: int = MAX_MESSAGE_BYTES,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a framed stream, retrying with backoff while ``timeout`` lasts.

    With ``timeout=None`` this is a single connection attempt.  With a
    timeout, connection failures (typically ``ConnectionRefusedError`` from
    a server that is still binding its socket) are retried with exponential
    backoff until the deadline, then the last error propagates.  This is
    what lets a client start concurrently with the server it talks to —
    cluster workers racing their coordinator, test clients racing a
    subprocess ``python -m repro serve`` — without a flaky first connect.
    """
    if timeout is None:
        return await asyncio.open_connection(host, port, limit=limit)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    delay = 0.05
    while True:
        try:
            return await asyncio.open_connection(host, port, limit=limit)
        except OSError:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise
            await asyncio.sleep(min(delay, remaining))
            delay = min(delay * 2.0, 1.0)
