"""OPTIMA energy models (paper Eq. 7-8).

Two behavioural energy models complement the discharge model:

* Eq. 7 — write energy: ``E_wr(V_DD, T) = p2(V_DD) * p1(T)``.  The write is
  data-independent because the 6T layout is symmetric.
* Eq. 8 — discharge energy:
  ``E_dc(d, V_DD, V_WL, T) = p1(V_DD) * p3(dV_BL) * p1(T)`` where the
  bit-line swing ``dV_BL`` itself comes from the discharge model
  (Eq. 3-5), so the data and word-line dependence enter through it.

Both are thin wrappers around :class:`repro.core.polynomials.SeparableProductModel`
with domain-specific call signatures and serialisation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Union

import numpy as np

from repro.core.polynomials import SeparableProductModel

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass
class WriteEnergyModel:
    """Paper Eq. 7: ``E_wr(V_DD, T) = p2(V_DD) * p1(T)`` (per written bit)."""

    model: SeparableProductModel

    @classmethod
    def with_default_degrees(cls) -> "WriteEnergyModel":
        """Unfitted model with the paper's polynomial degrees (2 and 1)."""
        return cls(
            SeparableProductModel(degrees=(2, 1), variables=("vdd", "temperature"))
        )

    def energy(self, vdd: ArrayLike, temperature: ArrayLike) -> np.ndarray:
        """Write energy in joules per bit (non-negative)."""
        return np.maximum(
            np.asarray(self.model(vdd, temperature), dtype=float), 0.0
        )

    def word_energy(self, vdd: ArrayLike, temperature: ArrayLike, bits: int = 4) -> np.ndarray:
        """Write energy of a ``bits``-wide word."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        return bits * self.energy(vdd, temperature)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {"model": self.model.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WriteEnergyModel":
        """Inverse of :meth:`to_dict`."""
        return cls(model=SeparableProductModel.from_dict(data["model"]))


@dataclasses.dataclass
class DischargeEnergyModel:
    """Paper Eq. 8: ``E_dc = p1(V_DD) * p3(dV_BL) * p1(T)`` (per bit-line event)."""

    model: SeparableProductModel

    @classmethod
    def with_default_degrees(cls) -> "DischargeEnergyModel":
        """Unfitted model with the paper's polynomial degrees (1, 3 and 1)."""
        return cls(
            SeparableProductModel(
                degrees=(1, 3, 1), variables=("vdd", "delta_v_bl", "temperature")
            )
        )

    def energy(
        self,
        delta_v_bl: ArrayLike,
        vdd: ArrayLike,
        temperature: ArrayLike,
    ) -> np.ndarray:
        """Discharge-and-restore energy in joules for a given bit-line swing."""
        delta_v = np.maximum(np.asarray(delta_v_bl, dtype=float), 0.0)
        return np.maximum(
            np.asarray(self.model(vdd, delta_v, temperature), dtype=float), 0.0
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {"model": self.model.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DischargeEnergyModel":
        """Inverse of :meth:`to_dict`."""
        return cls(model=SeparableProductModel.from_dict(data["model"]))
