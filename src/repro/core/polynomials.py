"""Polynomial building blocks of the OPTIMA behavioural models.

The paper expresses every behavioural model (Eq. 3-8) in terms of low-degree
polynomials ``p_n(X)`` combined either as products (e.g.
``p4(V_od) * p2(t)``) or as additive correction terms.  Three fitting
primitives cover all of them:

* :class:`Polynomial1D` — a plain 1-D polynomial with linear least-squares
  fitting.
* :class:`SeparableProductModel` — a product of per-variable polynomials
  ``p_{n_1}(x_1) * p_{n_2}(x_2) * ...`` fitted with alternating least
  squares (each factor is linear in its own coefficients when the others are
  frozen).
* :class:`TensorPolynomialModel` — a full tensor-product polynomial with all
  cross terms, fitted directly; used for ablations against the paper's
  rank-1 separable form.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def vandermonde(values: ArrayLike, degree: int) -> np.ndarray:
    """Column-wise Vandermonde matrix ``[1, x, x^2, ..., x^degree]``."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    values = np.atleast_1d(np.asarray(values, dtype=float))
    return np.vander(values, degree + 1, increasing=True)


@dataclasses.dataclass
class Polynomial1D:
    """Polynomial ``p(x) = c_0 + c_1 x + ... + c_n x^n`` (ascending coefficients).

    This is the ``p_n(X)`` notation of the paper: a degree-``n`` polynomial
    has ``n + 1`` coefficients.
    """

    coefficients: np.ndarray
    variable: str = "x"

    def __post_init__(self) -> None:
        self.coefficients = np.atleast_1d(np.asarray(self.coefficients, dtype=float))
        if self.coefficients.ndim != 1:
            raise ValueError("coefficients must be one-dimensional")
        if self.coefficients.size == 0:
            raise ValueError("a polynomial needs at least one coefficient")

    @property
    def degree(self) -> int:
        """Polynomial degree ``n``."""
        return int(self.coefficients.size - 1)

    def __call__(self, values: ArrayLike) -> np.ndarray:
        """Evaluate the polynomial (broadcasts over array inputs)."""
        values = np.asarray(values, dtype=float)
        return np.polynomial.polynomial.polyval(values, self.coefficients)

    def derivative(self) -> "Polynomial1D":
        """Return the first derivative as a new polynomial."""
        if self.degree == 0:
            return Polynomial1D(np.zeros(1), variable=self.variable)
        deriv = np.polynomial.polynomial.polyder(self.coefficients)
        return Polynomial1D(deriv, variable=self.variable)

    def scaled(self, factor: float) -> "Polynomial1D":
        """Return ``factor * p(x)`` as a new polynomial."""
        return Polynomial1D(self.coefficients * factor, variable=self.variable)

    @classmethod
    def fit(
        cls,
        inputs: ArrayLike,
        targets: ArrayLike,
        degree: int,
        variable: str = "x",
    ) -> "Polynomial1D":
        """Least-squares fit of a degree-``degree`` polynomial."""
        inputs = np.asarray(inputs, dtype=float).ravel()
        targets = np.asarray(targets, dtype=float).ravel()
        if inputs.shape != targets.shape:
            raise ValueError("inputs and targets must have the same length")
        if inputs.size <= degree:
            raise ValueError(
                f"need more than {degree} samples to fit a degree-{degree} polynomial"
            )
        design = vandermonde(inputs, degree)
        coefficients, *_ = np.linalg.lstsq(design, targets, rcond=None)
        return cls(coefficients, variable=variable)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "variable": self.variable,
            "coefficients": self.coefficients.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Polynomial1D":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(data["coefficients"], dtype=float),
            variable=str(data.get("variable", "x")),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        terms = ", ".join(f"{c:.4g}" for c in self.coefficients)
        return f"Polynomial1D(degree={self.degree}, {self.variable}: [{terms}])"


class SeparableProductModel:
    """Product of per-variable polynomials fitted by alternating least squares.

    ``f(x_1, ..., x_k) = p_{n_1}(x_1) * p_{n_2}(x_2) * ... * p_{n_k}(x_k)``

    This is the exact functional form the paper uses for Eq. 3 (``p4 * p2``),
    Eq. 6 (``p3 * p3``), Eq. 7 (``p2 * p1``) and Eq. 8 (``p1 * p3 * p1``).
    The product form has a scale ambiguity (multiplying one factor by ``a``
    and another by ``1/a`` leaves the model unchanged); after fitting, all
    factors except the first are normalised to unit maximum absolute
    coefficient, which makes serialised models comparable across runs.

    Parameters
    ----------
    degrees:
        Polynomial degree for each input variable, in order.
    variables:
        Optional variable names used in reports and serialisation.
    """

    def __init__(
        self,
        degrees: Sequence[int],
        variables: Sequence[str] = (),
    ) -> None:
        if not degrees:
            raise ValueError("at least one factor is required")
        if any(degree < 0 for degree in degrees):
            raise ValueError("degrees must be non-negative")
        self.degrees = [int(d) for d in degrees]
        if variables and len(variables) != len(degrees):
            raise ValueError("variables must match the number of factors")
        self.variables = list(variables) or [f"x{i}" for i in range(len(degrees))]
        self.factors: List[Polynomial1D] = [
            Polynomial1D(np.ones(degree + 1), variable=name)
            for degree, name in zip(self.degrees, self.variables)
        ]
        self.fitted = False

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, *inputs: ArrayLike) -> np.ndarray:
        """Evaluate the product model; inputs broadcast against each other."""
        if len(inputs) != len(self.factors):
            raise ValueError(
                f"expected {len(self.factors)} inputs, got {len(inputs)}"
            )
        result: np.ndarray = np.asarray(1.0)
        for factor, values in zip(self.factors, inputs):
            result = result * factor(values)
        return result

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        inputs: Sequence[ArrayLike],
        targets: ArrayLike,
        iterations: int = 250,
        tolerance: float = 1e-14,
    ) -> "SeparableProductModel":
        """Alternating-least-squares fit.

        Parameters
        ----------
        inputs:
            One flat array per variable, all of the same length.
        targets:
            Observed values of the product.
        iterations:
            Maximum number of ALS sweeps.
        tolerance:
            Relative change of the residual sum of squares below which the
            iteration stops early.
        """
        if len(inputs) != len(self.factors):
            raise ValueError(
                f"expected {len(self.factors)} input arrays, got {len(inputs)}"
            )
        columns = [np.asarray(x, dtype=float).ravel() for x in inputs]
        targets = np.asarray(targets, dtype=float).ravel()
        length = targets.size
        if any(column.size != length for column in columns):
            raise ValueError("all inputs must have the same length as targets")
        max_coeffs = max(self.degrees) + 1
        if length <= max_coeffs:
            raise ValueError("not enough samples to fit the requested degrees")

        # Sensible initialisation: every factor starts as the identity-like
        # ramp 1 + x which avoids the all-zero fixed point of ALS.
        for index, factor in enumerate(self.factors):
            coeffs = np.zeros(self.degrees[index] + 1)
            coeffs[0] = 1.0
            if coeffs.size > 1:
                coeffs[1] = 1.0
            factor.coefficients = coeffs

        vandermondes = [
            vandermonde(column, degree)
            for column, degree in zip(columns, self.degrees)
        ]

        previous_rss = np.inf
        for _ in range(iterations):
            for index in range(len(self.factors)):
                others = np.ones(length)
                for other_index, factor in enumerate(self.factors):
                    if other_index == index:
                        continue
                    others = others * factor(columns[other_index])
                design = vandermondes[index] * others[:, np.newaxis]
                coeffs, *_ = np.linalg.lstsq(design, targets, rcond=None)
                self.factors[index].coefficients = coeffs
            residual = targets - self(*columns)
            rss = float(np.dot(residual, residual))
            if np.isfinite(previous_rss) and previous_rss - rss <= tolerance * max(
                previous_rss, 1e-30
            ):
                break
            previous_rss = rss

        self._normalise()
        self.fitted = True
        return self

    def _normalise(self) -> None:
        """Push the overall scale into the first factor."""
        scale = 1.0
        for factor in self.factors[1:]:
            peak = float(np.max(np.abs(factor.coefficients)))
            if peak > 0.0:
                factor.coefficients = factor.coefficients / peak
                scale *= peak
        self.factors[0].coefficients = self.factors[0].coefficients * scale

    def rms_residual(self, inputs: Sequence[ArrayLike], targets: ArrayLike) -> float:
        """Root-mean-square residual of the model on a dataset."""
        targets = np.asarray(targets, dtype=float).ravel()
        prediction = self(*[np.asarray(x, dtype=float).ravel() for x in inputs])
        return float(np.sqrt(np.mean((prediction - targets) ** 2)))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "degrees": list(self.degrees),
            "variables": list(self.variables),
            "factors": [factor.to_dict() for factor in self.factors],
            "fitted": self.fitted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SeparableProductModel":
        """Inverse of :meth:`to_dict`."""
        model = cls(degrees=list(data["degrees"]), variables=list(data["variables"]))
        model.factors = [Polynomial1D.from_dict(d) for d in data["factors"]]
        model.fitted = bool(data.get("fitted", False))
        return model

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        description = " * ".join(
            f"p{degree}({name})" for degree, name in zip(self.degrees, self.variables)
        )
        return f"SeparableProductModel({description}, fitted={self.fitted})"


class TensorPolynomialModel:
    """Bivariate polynomial with all cross terms, fitted by linear least squares.

    ``f(x, y) = sum_{i <= deg_x, j <= deg_y} c_{ij} x^i y^j``

    The separable (rank-1) form the paper uses is a constrained special case
    of this model; the ablation benchmark compares the two to quantify what
    the constraint costs in accuracy and what it saves in parameters.
    """

    def __init__(self, degree_x: int, degree_y: int, variables: Sequence[str] = ("x", "y")) -> None:
        if degree_x < 0 or degree_y < 0:
            raise ValueError("degrees must be non-negative")
        self.degree_x = int(degree_x)
        self.degree_y = int(degree_y)
        self.variables = tuple(variables)
        self.coefficients = np.zeros((degree_x + 1, degree_y + 1))
        self.fitted = False

    @property
    def parameter_count(self) -> int:
        """Number of free coefficients."""
        return (self.degree_x + 1) * (self.degree_y + 1)

    def _design(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        vx = vandermonde(x, self.degree_x)
        vy = vandermonde(y, self.degree_y)
        return (vx[:, :, np.newaxis] * vy[:, np.newaxis, :]).reshape(x.size, -1)

    def fit(self, x: ArrayLike, y: ArrayLike, targets: ArrayLike) -> "TensorPolynomialModel":
        """Direct least-squares fit of all cross-term coefficients."""
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        targets = np.asarray(targets, dtype=float).ravel()
        if not (x.size == y.size == targets.size):
            raise ValueError("x, y and targets must have the same length")
        if x.size <= self.parameter_count:
            raise ValueError("not enough samples for the requested degrees")
        design = self._design(x, y)
        coefficients, *_ = np.linalg.lstsq(design, targets, rcond=None)
        self.coefficients = coefficients.reshape(self.degree_x + 1, self.degree_y + 1)
        self.fitted = True
        return self

    def __call__(self, x: ArrayLike, y: ArrayLike) -> np.ndarray:
        """Evaluate the model; ``x`` and ``y`` broadcast against each other."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return np.polynomial.polynomial.polyval2d(x, y, self.coefficients)

    def rms_residual(self, x: ArrayLike, y: ArrayLike, targets: ArrayLike) -> float:
        """Root-mean-square residual of the model on a dataset."""
        targets = np.asarray(targets, dtype=float).ravel()
        prediction = self(np.asarray(x, dtype=float).ravel(), np.asarray(y, dtype=float).ravel())
        return float(np.sqrt(np.mean((prediction - targets) ** 2)))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "degree_x": self.degree_x,
            "degree_y": self.degree_y,
            "variables": list(self.variables),
            "coefficients": self.coefficients.tolist(),
            "fitted": self.fitted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TensorPolynomialModel":
        """Inverse of :meth:`to_dict`."""
        model = cls(
            degree_x=int(data["degree_x"]),
            degree_y=int(data["degree_y"]),
            variables=tuple(data.get("variables", ("x", "y"))),
        )
        model.coefficients = np.asarray(data["coefficients"], dtype=float)
        model.fitted = bool(data.get("fitted", False))
        return model
