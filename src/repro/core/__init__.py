"""OPTIMA core: behavioural models, calibration, and design-space exploration.

This package is the paper's primary contribution:

* :mod:`repro.core.polynomials` — 1-D and separable-product polynomial
  models with least-squares / alternating-least-squares fitting.
* :mod:`repro.core.discharge_model` — the bit-line discharge models of
  paper Eq. 3-6.
* :mod:`repro.core.energy_model` — the write / discharge energy models of
  paper Eq. 7-8.
* :mod:`repro.core.characterization` — reference-simulator sweeps that
  produce the fitting datasets (the "extensive simulation data" of
  Section IV-C).
* :mod:`repro.core.fitting` — least-squares calibration of every model.
* :mod:`repro.core.model_suite` — the bundle of fitted models plus
  serialisation.
* :mod:`repro.core.calibration` — one-call calibration flow producing the
  suite and the Fig. 6 RMS-error report.
* :mod:`repro.core.metrics` — RMS / LSB / speed-up metrics.
* :mod:`repro.core.dse` — multiplier design-space exploration (Section V).
* :mod:`repro.core.pvt` — PVT robustness and Monte-Carlo analysis of
  selected corners (Fig. 8).
* :mod:`repro.core.speedup` — OPTIMA-vs-reference runtime comparison.
"""

from repro.core.polynomials import (
    Polynomial1D,
    SeparableProductModel,
    TensorPolynomialModel,
)
from repro.core.discharge_model import DischargeModel
from repro.core.energy_model import DischargeEnergyModel, WriteEnergyModel
from repro.core.characterization import CharacterizationPlan, CharacterizationData
from repro.core.fitting import FitReport
from repro.core.model_suite import OptimaModelSuite
from repro.core.calibration import CalibrationResult, calibrate
from repro.core.metrics import lsb_voltage, rms_error, speedup_ratio
from repro.core.dse import (
    DesignCorner,
    DesignPoint,
    DesignSpace,
    ExplorationResult,
    explore_design_space,
    select_corners,
)
from repro.core.pvt import CornerRobustnessReport, analyze_corner_robustness
from repro.core.speedup import SpeedupReport, measure_speedup

__all__ = [
    "CalibrationResult",
    "CharacterizationData",
    "CharacterizationPlan",
    "CornerRobustnessReport",
    "DesignCorner",
    "DesignPoint",
    "DesignSpace",
    "DischargeEnergyModel",
    "DischargeModel",
    "ExplorationResult",
    "FitReport",
    "OptimaModelSuite",
    "Polynomial1D",
    "SeparableProductModel",
    "SpeedupReport",
    "TensorPolynomialModel",
    "WriteEnergyModel",
    "analyze_corner_robustness",
    "calibrate",
    "explore_design_space",
    "lsb_voltage",
    "measure_speedup",
    "rms_error",
    "select_corners",
    "speedup_ratio",
]
