"""OPTIMA bit-line discharge models (paper Eq. 3-6).

The paper models the bit-line-bar voltage iteratively:

* Eq. 3 — base model:  ``V_BL(t, V_WL) = V_DD + p4(V_od) * p2(t)`` with the
  overdrive ``V_od = V_WL - V_th``.  The product term is negative (it is the
  discharge), and the polynomial in ``V_od`` captures the alpha-power
  nonlinearity plus the sub-threshold residual conduction.
* Eq. 4 — supply extension:
  ``V_BL(t, V_WL, V_DD) = V_BL(t, V_WL) * p2(dV_DD)`` with
  ``dV_DD = V_DD - V_DD,nom``.  Two flavours are supported: the literal
  paper form (``supply_mode="voltage"``, the polynomial multiplies the whole
  bit-line voltage) and the default ``supply_mode="discharge"`` form where
  the polynomial multiplies only the discharge term while the pre-charge
  level tracks the actual supply exactly.  The second form removes the
  systematic offset error of the literal form (the pre-charge level is known
  exactly, only the discharge current needs a fitted correction); the
  ablation benchmark quantifies the difference.
* Eq. 5 — temperature extension (additive):
  ``+ t * (T - T_nom) * p3(V_WL)``.
* Eq. 6 — mismatch sigma: ``sigma(t, V_WL) = p3(t) * p3(V_WL)``; the actual
  mismatch deviation is drawn from a Gaussian with this sigma per discharge.

The class below evaluates the composed model and also supports stochastic
sampling, which is what the discrete-time simulation framework and the
multiplier model consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.polynomials import Polynomial1D, SeparableProductModel

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass
class DischargeModel:
    """Composed OPTIMA discharge model.

    Attributes
    ----------
    base:
        The Eq. 3 product model ``p4(V_od) * p2(t)``; called with
        ``(V_od, t)`` and returning the (negative) voltage deviation from
        the pre-charge level.
    supply:
        The Eq. 4 correction polynomial ``p2(dV_DD)``.
    temperature_coefficient:
        The Eq. 5 polynomial ``p3(V_WL)`` multiplying ``t * (T - T_nom)``.
    mismatch_sigma_model:
        The Eq. 6 product model ``p3(t) * p3(V_WL)``; called with
        ``(t, V_WL)``.
    threshold_voltage:
        ``V_th`` used to convert word-line voltage to overdrive.
    vdd_nominal:
        Nominal supply the base model was fitted at.
    temperature_nominal:
        Nominal temperature in kelvin.
    supply_mode:
        ``"discharge"`` (default) applies the Eq. 4 polynomial to the
        discharge term only; ``"voltage"`` reproduces the literal paper
        form that multiplies the whole bit-line voltage.
    """

    base: SeparableProductModel
    supply: Polynomial1D
    temperature_coefficient: Polynomial1D
    mismatch_sigma_model: SeparableProductModel
    threshold_voltage: float
    vdd_nominal: float
    temperature_nominal: float
    supply_mode: str = "discharge"

    def __post_init__(self) -> None:
        if self.supply_mode not in ("discharge", "voltage"):
            raise ValueError("supply_mode must be 'discharge' or 'voltage'")

    # ------------------------------------------------------------------
    # Deterministic evaluation
    # ------------------------------------------------------------------
    def overdrive(self, wordline_voltage: ArrayLike) -> np.ndarray:
        """Gate overdrive ``V_od = V_WL - V_th`` (may be negative)."""
        return np.asarray(wordline_voltage, dtype=float) - self.threshold_voltage

    def bitline_voltage(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        vdd: Optional[ArrayLike] = None,
        temperature: Optional[ArrayLike] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Bit-line-bar voltage at ``time`` seconds after the discharge starts.

        Arguments broadcast against each other.  A stored '0' keeps the line
        at the pre-charge level (the data dependence of paper Eq. 1).
        """
        time = np.asarray(time, dtype=float)
        wordline_voltage = np.asarray(wordline_voltage, dtype=float)
        vdd_value = self.vdd_nominal if vdd is None else np.asarray(vdd, dtype=float)
        temperature_value = (
            self.temperature_nominal
            if temperature is None
            else np.asarray(temperature, dtype=float)
        )
        if stored_bit not in (0, 1):
            raise ValueError("stored_bit must be 0 or 1")
        if stored_bit == 0:
            shape = np.broadcast_shapes(
                time.shape, wordline_voltage.shape, np.shape(vdd_value), np.shape(temperature_value)
            )
            return np.broadcast_to(np.asarray(vdd_value, dtype=float), shape).copy()

        # Eq. 3 discharge term (negative) and Eq. 4 supply correction.
        discharge_term = self.base(self.overdrive(wordline_voltage), time)
        delta_vdd = np.asarray(vdd_value, dtype=float) - self.vdd_nominal
        if self.supply_mode == "voltage":
            # Literal paper form: the polynomial scales the whole voltage.
            voltage = (self.vdd_nominal + discharge_term) * self.supply(delta_vdd)
        else:
            # Default form: exact pre-charge level, corrected discharge.
            voltage = vdd_value + discharge_term * self.supply(delta_vdd)
        # Eq. 5
        delta_t = np.asarray(temperature_value, dtype=float) - self.temperature_nominal
        voltage = voltage + time * delta_t * self.temperature_coefficient(wordline_voltage)
        return np.asarray(voltage, dtype=float)

    def discharge(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        vdd: Optional[ArrayLike] = None,
        temperature: Optional[ArrayLike] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Discharge ``V_DD - V_BLB`` (clipped at zero)."""
        vdd_value = self.vdd_nominal if vdd is None else np.asarray(vdd, dtype=float)
        voltage = self.bitline_voltage(
            time, wordline_voltage, vdd=vdd_value, temperature=temperature, stored_bit=stored_bit
        )
        return np.maximum(np.asarray(vdd_value, dtype=float) - voltage, 0.0)

    # ------------------------------------------------------------------
    # Stochastic evaluation (mismatch)
    # ------------------------------------------------------------------
    def mismatch_sigma(self, time: ArrayLike, wordline_voltage: ArrayLike) -> np.ndarray:
        """Gaussian sigma of the mismatch-induced voltage deviation (Eq. 6)."""
        sigma = self.mismatch_sigma_model(
            np.asarray(time, dtype=float), np.asarray(wordline_voltage, dtype=float)
        )
        return np.maximum(np.asarray(sigma, dtype=float), 0.0)

    def sample_bitline_voltage(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        rng: np.random.Generator,
        vdd: Optional[ArrayLike] = None,
        temperature: Optional[ArrayLike] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Draw one mismatch-perturbed bit-line voltage per broadcast element."""
        mean = self.bitline_voltage(
            time, wordline_voltage, vdd=vdd, temperature=temperature, stored_bit=stored_bit
        )
        if stored_bit == 0:
            return mean
        sigma = self.mismatch_sigma(time, wordline_voltage)
        sigma = np.broadcast_to(sigma, np.shape(mean))
        return mean + rng.normal(0.0, 1.0, size=np.shape(mean)) * sigma

    def sample_discharge(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        rng: np.random.Generator,
        vdd: Optional[ArrayLike] = None,
        temperature: Optional[ArrayLike] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Draw one mismatch-perturbed discharge value per broadcast element."""
        vdd_value = self.vdd_nominal if vdd is None else np.asarray(vdd, dtype=float)
        voltage = self.sample_bitline_voltage(
            time,
            wordline_voltage,
            rng,
            vdd=vdd_value,
            temperature=temperature,
            stored_bit=stored_bit,
        )
        return np.maximum(np.asarray(vdd_value, dtype=float) - voltage, 0.0)

    def sample_discharge_stack(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        rngs: Sequence[np.random.Generator],
        vdd: Optional[ArrayLike] = None,
        temperature: Optional[ArrayLike] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Mismatch-perturbed discharges for a stack of generators.

        The deterministic mean and sigma are evaluated **once** and shared
        by every generator; each generator then contributes one perturbed
        draw on a new leading axis.  Row ``i`` of the result is bit-identical
        to ``sample_discharge(time, wordline_voltage, rngs[i], ...)`` because
        the per-generator work is exactly the same ``rng.normal`` call and
        the same elementwise arithmetic — only the (expensive) polynomial
        evaluations are hoisted out of the loop.  This is the whole-chunk
        inner loop of the Monte-Carlo hot path.
        """
        vdd_value = self.vdd_nominal if vdd is None else np.asarray(vdd, dtype=float)
        mean = self.bitline_voltage(
            time, wordline_voltage, vdd=vdd_value, temperature=temperature, stored_bit=stored_bit
        )
        if stored_bit == 0:
            stacked = np.broadcast_to(mean, (len(rngs),) + np.shape(mean)).copy()
        else:
            sigma = np.broadcast_to(
                self.mismatch_sigma(time, wordline_voltage), np.shape(mean)
            )
            stacked = np.stack(
                [mean + rng.normal(0.0, 1.0, size=np.shape(mean)) * sigma for rng in rngs]
            )
        return np.maximum(np.asarray(vdd_value, dtype=float) - stacked, 0.0)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "base": self.base.to_dict(),
            "supply": self.supply.to_dict(),
            "temperature_coefficient": self.temperature_coefficient.to_dict(),
            "mismatch_sigma_model": self.mismatch_sigma_model.to_dict(),
            "threshold_voltage": self.threshold_voltage,
            "vdd_nominal": self.vdd_nominal,
            "temperature_nominal": self.temperature_nominal,
            "supply_mode": self.supply_mode,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DischargeModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            base=SeparableProductModel.from_dict(data["base"]),
            supply=Polynomial1D.from_dict(data["supply"]),
            temperature_coefficient=Polynomial1D.from_dict(data["temperature_coefficient"]),
            mismatch_sigma_model=SeparableProductModel.from_dict(data["mismatch_sigma_model"]),
            threshold_voltage=float(data["threshold_voltage"]),
            vdd_nominal=float(data["vdd_nominal"]),
            temperature_nominal=float(data["temperature_nominal"]),
            supply_mode=str(data.get("supply_mode", "discharge")),
        )
