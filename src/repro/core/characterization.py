"""Reference-simulator characterisation sweeps.

OPTIMA's behavioural models are fitted against "extensive simulation data"
(paper Section IV-C).  This module defines which sweeps make up that data and
runs them on the transistor-level reference simulator:

* a base discharge sweep over (time, word-line voltage) at nominal PVT,
* a supply sweep adding a V_DD axis,
* a temperature sweep adding a temperature axis,
* a mismatch Monte-Carlo sweep measuring the discharge sigma over
  (time, word-line voltage),
* write-energy and discharge-energy tables.

Every sweep is returned as flat, column-oriented NumPy arrays so the fitting
code can feed them straight into least-squares solvers.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.circuits.conditions import OperatingConditions, celsius_to_kelvin
from repro.circuits.energy import EnergyModelReference
from repro.circuits.mismatch import MismatchParameters, MismatchSampler
from repro.circuits.technology import TechnologyCard
from repro.circuits.transient import TransientSolver


@dataclasses.dataclass(frozen=True)
class CharacterizationPlan:
    """Definition of the characterisation sweeps.

    Attributes
    ----------
    times:
        Sampling instants of the discharge waveforms, in seconds.
    wordline_voltages:
        Word-line (DAC output) voltages to sweep.
    supply_voltages:
        Supply voltages of the V_DD sweep.
    temperatures_celsius:
        Junction temperatures of the temperature sweep, in degrees Celsius.
    mismatch_wordline_voltages:
        Word-line voltages at which the mismatch sigma is measured.
    mismatch_samples:
        Monte-Carlo sample count per mismatch measurement point.
    mismatch_seed:
        Seed of the mismatch sampler (keeps calibration deterministic).
    """

    times: tuple = tuple(np.linspace(0.1e-9, 2.0e-9, 12))
    wordline_voltages: tuple = tuple(np.linspace(0.25, 1.05, 13))
    supply_voltages: tuple = (0.90, 0.95, 1.00, 1.05, 1.10)
    temperatures_celsius: tuple = (0.0, 27.0, 50.0, 75.0)
    mismatch_wordline_voltages: tuple = (0.35, 0.5, 0.65, 0.8, 0.9, 1.0)
    mismatch_samples: int = 250
    mismatch_seed: int = 2024

    def __post_init__(self) -> None:
        if len(self.times) < 3:
            raise ValueError("need at least three sampling times")
        if len(self.wordline_voltages) < 4:
            raise ValueError("need at least four word-line voltages")
        if self.mismatch_samples < 10:
            raise ValueError("mismatch_samples must be at least 10")

    @classmethod
    def quick(cls) -> "CharacterizationPlan":
        """A reduced plan for unit tests (seconds instead of tens of seconds)."""
        return cls(
            times=tuple(np.linspace(0.2e-9, 2.0e-9, 6)),
            wordline_voltages=tuple(np.linspace(0.3, 1.0, 7)),
            supply_voltages=(0.9, 1.0, 1.1),
            temperatures_celsius=(0.0, 27.0, 70.0),
            mismatch_wordline_voltages=(0.5, 0.8, 1.0),
            mismatch_samples=60,
        )


@dataclasses.dataclass
class DischargeSweep:
    """Flat table of one bit-line discharge sweep."""

    time: np.ndarray
    wordline_voltage: np.ndarray
    vdd: np.ndarray
    temperature: np.ndarray
    bitline_voltage: np.ndarray

    def __len__(self) -> int:
        return int(self.time.size)

    def discharge(self) -> np.ndarray:
        """Discharge ``V_DD - V_BLB`` of every record."""
        return self.vdd - self.bitline_voltage


@dataclasses.dataclass
class MismatchSweep:
    """Flat table of the mismatch-sigma measurement."""

    time: np.ndarray
    wordline_voltage: np.ndarray
    sigma: np.ndarray

    def __len__(self) -> int:
        return int(self.time.size)


@dataclasses.dataclass
class WriteEnergySweep:
    """Flat table of the write-energy measurement."""

    vdd: np.ndarray
    temperature: np.ndarray
    energy: np.ndarray

    def __len__(self) -> int:
        return int(self.vdd.size)


@dataclasses.dataclass
class DischargeEnergySweep:
    """Flat table of the discharge-energy measurement."""

    vdd: np.ndarray
    temperature: np.ndarray
    delta_v_bl: np.ndarray
    wordline_voltage: np.ndarray
    energy: np.ndarray

    def __len__(self) -> int:
        return int(self.vdd.size)


@dataclasses.dataclass
class CharacterizationData:
    """All sweeps needed to fit the OPTIMA models."""

    base: DischargeSweep
    supply: DischargeSweep
    temperature: DischargeSweep
    mismatch: MismatchSweep
    write_energy: WriteEnergySweep
    discharge_energy: DischargeEnergySweep
    technology: TechnologyCard
    plan: CharacterizationPlan

    def record_count(self) -> int:
        """Total number of reference-simulation records across all sweeps."""
        return (
            len(self.base)
            + len(self.supply)
            + len(self.temperature)
            + len(self.mismatch)
            + len(self.write_energy)
            + len(self.discharge_energy)
        )


def _sample_waveforms(
    solver: TransientSolver,
    wordline_voltages: np.ndarray,
    times: np.ndarray,
    conditions: OperatingConditions,
) -> np.ndarray:
    """Run one transient per word-line voltage and sample it at ``times``.

    Returns an array of shape ``(len(wordline_voltages), len(times))``.
    """
    duration = float(times.max())
    result = solver.simulate_discharge(wordline_voltages, duration, conditions)
    sampled = np.empty((wordline_voltages.size, times.size))
    for column, time in enumerate(times):
        sampled[:, column] = np.atleast_1d(result.voltage_at(float(time)))
    return sampled


def characterize(
    technology: TechnologyCard,
    plan: Optional[CharacterizationPlan] = None,
    solver: Optional[TransientSolver] = None,
    energy_reference: Optional[EnergyModelReference] = None,
) -> CharacterizationData:
    """Run every characterisation sweep on the reference simulator.

    Parameters
    ----------
    technology:
        Technology card to characterise.
    plan:
        Sweep definition; the default plan matches the fitting ranges used
        for the paper-scale experiments, :meth:`CharacterizationPlan.quick`
        is for tests.
    solver, energy_reference:
        Optional pre-built reference engines (injected by tests).
    """
    plan = plan or CharacterizationPlan()
    solver = solver or TransientSolver(technology)
    energy_reference = energy_reference or EnergyModelReference(technology)

    times = np.asarray(plan.times, dtype=float)
    v_wl = np.asarray(plan.wordline_voltages, dtype=float)
    vdd_values = np.asarray(plan.supply_voltages, dtype=float)
    temperatures = np.asarray(
        [celsius_to_kelvin(t) for t in plan.temperatures_celsius], dtype=float
    )
    nominal = OperatingConditions.nominal(technology)

    # ------------------------------------------------------------------
    # Base sweep (nominal PVT)
    # ------------------------------------------------------------------
    base_voltages = _sample_waveforms(solver, v_wl, times, nominal)
    grid_wl, grid_t = np.meshgrid(v_wl, times, indexing="ij")
    base = DischargeSweep(
        time=grid_t.ravel(),
        wordline_voltage=grid_wl.ravel(),
        vdd=np.full(grid_t.size, nominal.vdd),
        temperature=np.full(grid_t.size, nominal.temperature),
        bitline_voltage=base_voltages.ravel(),
    )

    # ------------------------------------------------------------------
    # Supply sweep
    # ------------------------------------------------------------------
    supply_rows: List[np.ndarray] = []
    for vdd in vdd_values:
        conditions = nominal.with_vdd(float(vdd))
        sampled = _sample_waveforms(solver, v_wl, times, conditions)
        supply_rows.append(
            np.column_stack(
                [
                    grid_t.ravel(),
                    grid_wl.ravel(),
                    np.full(grid_t.size, vdd),
                    np.full(grid_t.size, nominal.temperature),
                    sampled.ravel(),
                ]
            )
        )
    supply_table = np.vstack(supply_rows)
    supply = DischargeSweep(
        time=supply_table[:, 0],
        wordline_voltage=supply_table[:, 1],
        vdd=supply_table[:, 2],
        temperature=supply_table[:, 3],
        bitline_voltage=supply_table[:, 4],
    )

    # ------------------------------------------------------------------
    # Temperature sweep
    # ------------------------------------------------------------------
    temperature_rows: List[np.ndarray] = []
    for temperature in temperatures:
        conditions = nominal.with_temperature(float(temperature))
        sampled = _sample_waveforms(solver, v_wl, times, conditions)
        temperature_rows.append(
            np.column_stack(
                [
                    grid_t.ravel(),
                    grid_wl.ravel(),
                    np.full(grid_t.size, nominal.vdd),
                    np.full(grid_t.size, temperature),
                    sampled.ravel(),
                ]
            )
        )
    temperature_table = np.vstack(temperature_rows)
    temperature_sweep = DischargeSweep(
        time=temperature_table[:, 0],
        wordline_voltage=temperature_table[:, 1],
        vdd=temperature_table[:, 2],
        temperature=temperature_table[:, 3],
        bitline_voltage=temperature_table[:, 4],
    )

    # ------------------------------------------------------------------
    # Mismatch Monte-Carlo sweep
    # ------------------------------------------------------------------
    sampler = MismatchSampler(
        MismatchParameters.from_technology(technology), seed=plan.mismatch_seed
    )
    mismatch_arrays = sampler.sample_arrays(plan.mismatch_samples)
    mc_v_wl = np.asarray(plan.mismatch_wordline_voltages, dtype=float)
    duration = float(times.max())
    mc_result = solver.simulate_discharge(
        mc_v_wl[:, np.newaxis], duration, nominal, mismatch=mismatch_arrays
    )
    sigma_table = np.empty((mc_v_wl.size, times.size))
    for column, time in enumerate(times):
        voltages = mc_result.voltage_at(float(time))
        sigma_table[:, column] = np.std(voltages, axis=1)
    mc_grid_wl, mc_grid_t = np.meshgrid(mc_v_wl, times, indexing="ij")
    mismatch = MismatchSweep(
        time=mc_grid_t.ravel(),
        wordline_voltage=mc_grid_wl.ravel(),
        sigma=sigma_table.ravel(),
    )

    # ------------------------------------------------------------------
    # Write-energy table
    # ------------------------------------------------------------------
    write_vdd, write_temp = np.meshgrid(vdd_values, temperatures, indexing="ij")
    write_energy_values = np.array(
        [
            energy_reference.write_energy(
                OperatingConditions(vdd=float(v), temperature=float(t), corner=nominal.corner)
            )
            for v, t in zip(write_vdd.ravel(), write_temp.ravel())
        ]
    )
    write_energy = WriteEnergySweep(
        vdd=write_vdd.ravel(),
        temperature=write_temp.ravel(),
        energy=write_energy_values,
    )

    # ------------------------------------------------------------------
    # Discharge-energy table (derived from the supply / temperature sweeps)
    # ------------------------------------------------------------------
    energy_sources = [supply, temperature_sweep]
    vdd_column = np.concatenate([sweep.vdd for sweep in energy_sources])
    temp_column = np.concatenate([sweep.temperature for sweep in energy_sources])
    delta_column = np.concatenate([sweep.discharge() for sweep in energy_sources])
    wl_column = np.concatenate([sweep.wordline_voltage for sweep in energy_sources])
    energy_column = np.array(
        [
            energy_reference.discharge_energy(
                float(delta),
                float(wl),
                OperatingConditions(vdd=float(v), temperature=float(t), corner=nominal.corner),
            )
            for delta, wl, v, t in zip(delta_column, wl_column, vdd_column, temp_column)
        ],
        dtype=float,
    )
    discharge_energy = DischargeEnergySweep(
        vdd=vdd_column,
        temperature=temp_column,
        delta_v_bl=delta_column,
        wordline_voltage=wl_column,
        energy=energy_column,
    )

    return CharacterizationData(
        base=base,
        supply=supply,
        temperature=temperature_sweep,
        mismatch=mismatch,
        write_energy=write_energy,
        discharge_energy=discharge_energy,
        technology=technology,
        plan=plan,
    )
