"""Reference-simulator characterisation sweeps.

OPTIMA's behavioural models are fitted against "extensive simulation data"
(paper Section IV-C).  This module defines which sweeps make up that data and
runs them on the transistor-level reference simulator:

* a base discharge sweep over (time, word-line voltage) at nominal PVT,
* a supply sweep adding a V_DD axis,
* a temperature sweep adding a temperature axis,
* a mismatch Monte-Carlo sweep measuring the discharge sigma over
  (time, word-line voltage),
* write-energy and discharge-energy tables.

Every sweep is returned as flat, column-oriented NumPy arrays so the fitting
code can feed them straight into least-squares solvers.

The sweeps are submitted to a :class:`repro.runtime.SweepEngine` as
independent jobs (one per operating point / table), so a parallel executor
runs the per-V_DD and per-temperature reference simulations concurrently and
an attached artifact cache makes warm re-runs skip the reference solver
entirely.  The default engine is serial and cache-less, which reproduces the
historical inline behaviour bit-for-bit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.conditions import OperatingConditions, celsius_to_kelvin
from repro.circuits.energy import EnergyModelReference
from repro.circuits.mismatch import MismatchParameters, MismatchSampler
from repro.circuits.technology import TechnologyCard
from repro.circuits.transient import TransientSolver
from repro.runtime import Artifact, Job, SweepEngine, SweepSpec, job_key


@dataclasses.dataclass(frozen=True)
class CharacterizationPlan:
    """Definition of the characterisation sweeps.

    Attributes
    ----------
    times:
        Sampling instants of the discharge waveforms, in seconds.
    wordline_voltages:
        Word-line (DAC output) voltages to sweep.
    supply_voltages:
        Supply voltages of the V_DD sweep.
    temperatures_celsius:
        Junction temperatures of the temperature sweep, in degrees Celsius.
    mismatch_wordline_voltages:
        Word-line voltages at which the mismatch sigma is measured.
    mismatch_samples:
        Monte-Carlo sample count per mismatch measurement point.
    mismatch_seed:
        Seed of the mismatch sampler (keeps calibration deterministic).
    """

    times: tuple = tuple(np.linspace(0.1e-9, 2.0e-9, 12))
    wordline_voltages: tuple = tuple(np.linspace(0.25, 1.05, 13))
    supply_voltages: tuple = (0.90, 0.95, 1.00, 1.05, 1.10)
    temperatures_celsius: tuple = (0.0, 27.0, 50.0, 75.0)
    mismatch_wordline_voltages: tuple = (0.35, 0.5, 0.65, 0.8, 0.9, 1.0)
    mismatch_samples: int = 250
    mismatch_seed: int = 2024

    def __post_init__(self) -> None:
        if len(self.times) < 3:
            raise ValueError("need at least three sampling times")
        if len(self.wordline_voltages) < 4:
            raise ValueError("need at least four word-line voltages")
        if self.mismatch_samples < 10:
            raise ValueError("mismatch_samples must be at least 10")

    @classmethod
    def quick(cls) -> "CharacterizationPlan":
        """A reduced plan for unit tests (seconds instead of tens of seconds)."""
        return cls(
            times=tuple(np.linspace(0.2e-9, 2.0e-9, 6)),
            wordline_voltages=tuple(np.linspace(0.3, 1.0, 7)),
            supply_voltages=(0.9, 1.0, 1.1),
            temperatures_celsius=(0.0, 27.0, 70.0),
            mismatch_wordline_voltages=(0.5, 0.8, 1.0),
            mismatch_samples=60,
        )


@dataclasses.dataclass
class DischargeSweep:
    """Flat table of one bit-line discharge sweep."""

    time: np.ndarray
    wordline_voltage: np.ndarray
    vdd: np.ndarray
    temperature: np.ndarray
    bitline_voltage: np.ndarray

    def __len__(self) -> int:
        return int(self.time.size)

    def discharge(self) -> np.ndarray:
        """Discharge ``V_DD - V_BLB`` of every record."""
        return self.vdd - self.bitline_voltage


@dataclasses.dataclass
class MismatchSweep:
    """Flat table of the mismatch-sigma measurement."""

    time: np.ndarray
    wordline_voltage: np.ndarray
    sigma: np.ndarray

    def __len__(self) -> int:
        return int(self.time.size)


@dataclasses.dataclass
class WriteEnergySweep:
    """Flat table of the write-energy measurement."""

    vdd: np.ndarray
    temperature: np.ndarray
    energy: np.ndarray

    def __len__(self) -> int:
        return int(self.vdd.size)


@dataclasses.dataclass
class DischargeEnergySweep:
    """Flat table of the discharge-energy measurement."""

    vdd: np.ndarray
    temperature: np.ndarray
    delta_v_bl: np.ndarray
    wordline_voltage: np.ndarray
    energy: np.ndarray

    def __len__(self) -> int:
        return int(self.vdd.size)


@dataclasses.dataclass
class CharacterizationData:
    """All sweeps needed to fit the OPTIMA models."""

    base: DischargeSweep
    supply: DischargeSweep
    temperature: DischargeSweep
    mismatch: MismatchSweep
    write_energy: WriteEnergySweep
    discharge_energy: DischargeEnergySweep
    technology: TechnologyCard
    plan: CharacterizationPlan

    def record_count(self) -> int:
        """Total number of reference-simulation records across all sweeps."""
        return (
            len(self.base)
            + len(self.supply)
            + len(self.temperature)
            + len(self.mismatch)
            + len(self.write_energy)
            + len(self.discharge_energy)
        )


def _sample_waveforms(
    solver: TransientSolver,
    wordline_voltages: np.ndarray,
    times: np.ndarray,
    conditions: OperatingConditions,
) -> np.ndarray:
    """Run one transient per word-line voltage and sample it at ``times``.

    Returns an array of shape ``(len(wordline_voltages), len(times))``.
    """
    duration = float(times.max())
    result = solver.simulate_discharge(wordline_voltages, duration, conditions)
    sampled = np.empty((wordline_voltages.size, times.size))
    for column, time in enumerate(times):
        sampled[:, column] = np.atleast_1d(result.voltage_at(float(time)))
    return sampled


# ----------------------------------------------------------------------
# Sweep jobs (module-level so the process-pool executor can pickle them)
# ----------------------------------------------------------------------
def _discharge_rows_job(
    technology: TechnologyCard,
    plan: CharacterizationPlan,
    conditions: OperatingConditions,
    solver: Optional[TransientSolver] = None,
) -> np.ndarray:
    """One (time x V_WL) discharge sweep at fixed conditions, as a (n, 5) table."""
    solver = solver or TransientSolver(technology)
    times = np.asarray(plan.times, dtype=float)
    v_wl = np.asarray(plan.wordline_voltages, dtype=float)
    sampled = _sample_waveforms(solver, v_wl, times, conditions)
    grid_wl, grid_t = np.meshgrid(v_wl, times, indexing="ij")
    return np.column_stack(
        [
            grid_t.ravel(),
            grid_wl.ravel(),
            np.full(grid_t.size, conditions.vdd),
            np.full(grid_t.size, conditions.temperature),
            sampled.ravel(),
        ]
    )


def _mismatch_rows_job(
    technology: TechnologyCard,
    plan: CharacterizationPlan,
    conditions: OperatingConditions,
    solver: Optional[TransientSolver] = None,
) -> np.ndarray:
    """The mismatch Monte-Carlo sigma sweep, as a (n, 3) table."""
    solver = solver or TransientSolver(technology)
    times = np.asarray(plan.times, dtype=float)
    sampler = MismatchSampler(
        MismatchParameters.from_technology(technology), seed=plan.mismatch_seed
    )
    mismatch_arrays = sampler.sample_arrays(plan.mismatch_samples)
    mc_v_wl = np.asarray(plan.mismatch_wordline_voltages, dtype=float)
    duration = float(times.max())
    mc_result = solver.simulate_discharge(
        mc_v_wl[:, np.newaxis], duration, conditions, mismatch=mismatch_arrays
    )
    sigma_table = np.empty((mc_v_wl.size, times.size))
    for column, time in enumerate(times):
        voltages = mc_result.voltage_at(float(time))
        sigma_table[:, column] = np.std(voltages, axis=1)
    mc_grid_wl, mc_grid_t = np.meshgrid(mc_v_wl, times, indexing="ij")
    return np.column_stack(
        [mc_grid_t.ravel(), mc_grid_wl.ravel(), sigma_table.ravel()]
    )


def _write_energy_rows_job(
    technology: TechnologyCard,
    plan: CharacterizationPlan,
    conditions: OperatingConditions,
    energy_reference: Optional[EnergyModelReference] = None,
) -> np.ndarray:
    """The (V_DD x temperature) write-energy table, as a (n, 3) table."""
    energy_reference = energy_reference or EnergyModelReference(technology)
    vdd_values = np.asarray(plan.supply_voltages, dtype=float)
    temperatures = np.asarray(
        [celsius_to_kelvin(t) for t in plan.temperatures_celsius], dtype=float
    )
    write_vdd, write_temp = np.meshgrid(vdd_values, temperatures, indexing="ij")
    # One NumPy pass over the whole (V_DD x T) grid; elementwise identical
    # to the historical per-point ``write_energy`` loop.
    energies = np.asarray(
        energy_reference.write_energy_table(write_vdd.ravel(), write_temp.ravel()),
        dtype=float,
    )
    return np.column_stack([write_vdd.ravel(), write_temp.ravel(), energies])


def _discharge_energy_rows_job(
    technology: TechnologyCard,
    plan: CharacterizationPlan,
    conditions: OperatingConditions,
    energy_reference: Optional[EnergyModelReference] = None,
    sources: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The discharge-energy table derived from the supply / temperature rows.

    ``sources`` is the stacked (n, 5) discharge table of the supply and
    temperature sweeps; the result appends the reference energy of every
    record as a (n, 5) table ``[vdd, temperature, delta_v, v_wl, energy]``.
    """
    if sources is None:
        raise ValueError("discharge-energy job needs the source discharge rows")
    energy_reference = energy_reference or EnergyModelReference(technology)
    vdd_column = sources[:, 2]
    temp_column = sources[:, 3]
    delta_column = sources[:, 2] - sources[:, 4]
    wl_column = sources[:, 1]
    # One NumPy pass over every record; elementwise identical to the
    # historical per-record ``discharge_energy`` loop.
    energy_column = np.asarray(
        energy_reference.discharge_energy_table(
            delta_column, wl_column, vdd_column, temp_column
        ),
        dtype=float,
    )
    return np.column_stack(
        [vdd_column, temp_column, delta_column, wl_column, energy_column]
    )


def _characterization_batch(jobs: Sequence[Job]) -> List[np.ndarray]:
    """Whole-group evaluator for the characterisation sweeps.

    Every characterisation job historically constructed its own
    :class:`~repro.circuits.transient.TransientSolver` /
    :class:`~repro.circuits.energy.EnergyModelReference`; a batch shares
    one per technology card instead, amortising the construction across
    the group.  Both reference engines are deterministic pure functions of
    the technology card (the mismatch Monte-Carlo seeds its own sampler
    per job), so sharing them is bit-identical to per-job construction —
    the same sharing :func:`characterize` already sanctions by accepting
    injected engines.  Jobs with an injected engine, and jobs this module
    does not recognise, run unchanged.
    """
    solvers: Dict[int, TransientSolver] = {}
    references: Dict[int, EnergyModelReference] = {}
    results: List[np.ndarray] = []
    for job in jobs:
        kwargs = dict(job.kwargs)
        technology = job.args[0] if job.args else None
        if (
            job.fn in (_discharge_rows_job, _mismatch_rows_job)
            and kwargs.get("solver") is None
        ):
            key = id(technology)
            if key not in solvers:
                solvers[key] = TransientSolver(technology)
            kwargs["solver"] = solvers[key]
        elif (
            job.fn in (_write_energy_rows_job, _discharge_energy_rows_job)
            and kwargs.get("energy_reference") is None
        ):
            key = id(technology)
            if key not in references:
                references[key] = EnergyModelReference(technology)
            kwargs["energy_reference"] = references[key]
        else:
            results.append(job.run())
            continue
        results.append(job.fn(*job.args, **kwargs))
    return results


def _encode_rows(rows: np.ndarray) -> Artifact:
    """Cache codec: one sweep table as a single-array artifact."""
    return Artifact(arrays={"rows": np.asarray(rows, dtype=float)})


def _decode_rows(artifact: Artifact) -> np.ndarray:
    """Inverse of :func:`_encode_rows`."""
    return np.asarray(artifact.arrays["rows"], dtype=float)


def _discharge_sweep_from_rows(table: np.ndarray) -> DischargeSweep:
    return DischargeSweep(
        time=table[:, 0],
        wordline_voltage=table[:, 1],
        vdd=table[:, 2],
        temperature=table[:, 3],
        bitline_voltage=table[:, 4],
    )


def characterize(
    technology: TechnologyCard,
    plan: Optional[CharacterizationPlan] = None,
    solver: Optional[TransientSolver] = None,
    energy_reference: Optional[EnergyModelReference] = None,
    engine: Optional[SweepEngine] = None,
) -> CharacterizationData:
    """Run every characterisation sweep on the reference simulator.

    Parameters
    ----------
    technology:
        Technology card to characterise.
    plan:
        Sweep definition; the default plan matches the fitting ranges used
        for the paper-scale experiments, :meth:`CharacterizationPlan.quick`
        is for tests.
    solver, energy_reference:
        Optional pre-built reference engines (injected by tests).  When
        either is injected, artifact caching is disabled — the cache key
        cannot see inside a custom engine, so serving cached rows for it
        would be wrong.
    engine:
        Sweep-execution engine.  The default is a serial, cache-less
        :class:`~repro.runtime.SweepEngine`, which reproduces the historical
        inline behaviour exactly; a parallel executor runs the per-V_DD /
        per-temperature sweeps concurrently and an attached cache makes warm
        re-runs skip the reference solver entirely.
    """
    plan = plan or CharacterizationPlan()
    engine = engine or SweepEngine()
    injected = solver is not None or energy_reference is not None
    # Keys are only worth hashing when a cache can use them; injected
    # engines disable caching because the key cannot see inside them.
    cacheable = engine.cache is not None and not injected

    def sweep_job(tag: str, fn, conditions: OperatingConditions, **kwargs) -> Job:
        return Job(
            fn=fn,
            args=(technology, plan, conditions),
            kwargs=kwargs,
            name=f"characterize:{tag}",
            key=job_key(f"char-{tag}", technology, plan, conditions) if cacheable else None,
            encode=_encode_rows,
            decode=_decode_rows,
        )

    nominal = OperatingConditions.nominal(technology)
    vdd_values = [float(v) for v in plan.supply_voltages]
    temperatures = [celsius_to_kelvin(float(t)) for t in plan.temperatures_celsius]

    jobs = [sweep_job("base", _discharge_rows_job, nominal, solver=solver)]
    for vdd in vdd_values:
        jobs.append(
            sweep_job("supply", _discharge_rows_job, nominal.with_vdd(vdd), solver=solver)
        )
    for temperature in temperatures:
        jobs.append(
            sweep_job(
                "temperature",
                _discharge_rows_job,
                nominal.with_temperature(temperature),
                solver=solver,
            )
        )
    jobs.append(sweep_job("mismatch", _mismatch_rows_job, nominal, solver=solver))
    jobs.append(
        sweep_job(
            "write-energy", _write_energy_rows_job, nominal, energy_reference=energy_reference
        )
    )
    tables = engine.run(
        SweepSpec("characterization", jobs, batch_fn=_characterization_batch)
    )

    base = _discharge_sweep_from_rows(tables[0])
    supply_tables = tables[1 : 1 + len(vdd_values)]
    temperature_tables = tables[1 + len(vdd_values) : 1 + len(vdd_values) + len(temperatures)]
    supply = _discharge_sweep_from_rows(np.vstack(supply_tables))
    temperature_sweep = _discharge_sweep_from_rows(np.vstack(temperature_tables))

    mismatch_table = tables[-2]
    mismatch = MismatchSweep(
        time=mismatch_table[:, 0],
        wordline_voltage=mismatch_table[:, 1],
        sigma=mismatch_table[:, 2],
    )

    write_table = tables[-1]
    write_energy = WriteEnergySweep(
        vdd=write_table[:, 0],
        temperature=write_table[:, 1],
        energy=write_table[:, 2],
    )

    # Second phase: the discharge-energy table is derived from the supply /
    # temperature sweep outputs.  Its inputs are a pure function of
    # (technology, plan), so the cache key does not need to hash the rows.
    sources = np.vstack([np.vstack(supply_tables), np.vstack(temperature_tables)])
    energy_job = Job(
        fn=_discharge_energy_rows_job,
        args=(technology, plan, nominal),
        kwargs={"energy_reference": energy_reference, "sources": sources},
        name="characterize:discharge-energy",
        key=job_key("char-discharge-energy", technology, plan) if cacheable else None,
        encode=_encode_rows,
        decode=_decode_rows,
    )
    energy_table = engine.run(
        SweepSpec(
            "characterization-energy",
            [energy_job],
            batch_fn=_characterization_batch,
        )
    )[0]
    discharge_energy = DischargeEnergySweep(
        vdd=energy_table[:, 0],
        temperature=energy_table[:, 1],
        delta_v_bl=energy_table[:, 2],
        wordline_voltage=energy_table[:, 3],
        energy=energy_table[:, 4],
    )

    return CharacterizationData(
        base=base,
        supply=supply,
        temperature=temperature_sweep,
        mismatch=mismatch,
        write_energy=write_energy,
        discharge_energy=discharge_energy,
        technology=technology,
        plan=plan,
    )
