"""Design-space exploration of the in-SRAM multiplier (paper Section V).

The exploration sweeps the three circuit parameters ``tau0``, ``V_DAC,0`` and
``V_DAC,FS`` over a grid of corners (48 in the paper), evaluates every corner
with the fast OPTIMA-backed multiplier, and selects three corners of
interest:

* ``fom`` — maximises the figure of merit ``1 / (eps_mul * E_mul)`` (Eq. 9),
* ``power`` — minimises the energy per multiplication,
* ``variation`` — minimises the analogue standard deviation at the maximum
  discharge (least impacted by process variation).

The result object also exposes the Pareto front and the slices plotted in
paper Fig. 7 (error / energy versus ``V_DAC,FS`` and versus ``tau0``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.core.model_suite import OptimaModelSuite
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.error_analysis import InputSpaceAnalysis, analyze_input_space
from repro.multiplier.imac import InSramMultiplier
from repro.runtime import Artifact, Job, SweepEngine, SweepSpec, job_key


@dataclasses.dataclass(frozen=True)
class DesignSpace:
    """Grid of circuit parameters to explore.

    The default grid reproduces the paper's 48 corners: four ``tau0``
    values, three ``V_DAC,0`` values and four ``V_DAC,FS`` values.
    """

    tau0_values: Tuple[float, ...] = (0.16e-9, 0.19e-9, 0.22e-9, 0.25e-9)
    v_dac_zero_values: Tuple[float, ...] = (0.3, 0.4, 0.5)
    v_dac_full_scale_values: Tuple[float, ...] = (0.7, 0.8, 0.9, 1.0)
    bits: int = 4

    def __post_init__(self) -> None:
        if not self.tau0_values or not self.v_dac_zero_values or not self.v_dac_full_scale_values:
            raise ValueError("every parameter axis needs at least one value")
        if any(t <= 0.0 for t in self.tau0_values):
            raise ValueError("tau0 values must be positive")

    @property
    def corner_count(self) -> int:
        """Number of design corners in the grid."""
        return (
            len(self.tau0_values)
            * len(self.v_dac_zero_values)
            * len(self.v_dac_full_scale_values)
        )

    def configurations(self) -> Iterable[MultiplierConfig]:
        """Yield one :class:`MultiplierConfig` per corner.

        Corners whose DAC range would be empty or inverted (``V_DAC,FS <=
        V_DAC,0``) are skipped; the default grid contains none.
        """
        index = 0
        for tau0 in self.tau0_values:
            for v_zero in self.v_dac_zero_values:
                for v_full_scale in self.v_dac_full_scale_values:
                    if v_full_scale <= v_zero:
                        continue
                    yield MultiplierConfig(
                        tau0=tau0,
                        v_dac_zero=v_zero,
                        v_dac_full_scale=v_full_scale,
                        bits=self.bits,
                        name=f"corner-{index:02d}",
                    )
                    index += 1

    @classmethod
    def quick(cls) -> "DesignSpace":
        """A reduced grid for unit tests."""
        return cls(
            tau0_values=(0.16e-9, 0.24e-9),
            v_dac_zero_values=(0.3, 0.4),
            v_dac_full_scale_values=(0.7, 1.0),
        )


@dataclasses.dataclass
class DesignPoint:
    """One evaluated corner of the design space."""

    config: MultiplierConfig
    analysis: InputSpaceAnalysis

    @property
    def mean_error_lsb(self) -> float:
        """Average multiplication error in LSB (``eps_mul``)."""
        return self.analysis.mean_error_lsb

    @property
    def energy_per_multiplication(self) -> float:
        """Average multiply energy in joules (``E_mul``)."""
        return self.analysis.energy_per_multiplication

    @property
    def figure_of_merit(self) -> float:
        """Paper Eq. 9 figure of merit."""
        return self.analysis.figure_of_merit

    @property
    def sigma_at_max_discharge_lsb(self) -> float:
        """Analogue sigma at the maximum discharge, in LSB."""
        return self.analysis.sigma_at_max_discharge_lsb

    @property
    def relative_sigma_at_max_discharge(self) -> float:
        """Sigma at the maximum discharge relative to the full-scale signal."""
        return self.analysis.relative_sigma_at_max_discharge

    def row(self) -> Dict[str, float]:
        """Tabular representation used by reports and benchmarks."""
        return {
            "tau0_ns": self.config.tau0 * 1e9,
            "v_dac_zero": self.config.v_dac_zero,
            "v_dac_full_scale": self.config.v_dac_full_scale,
            "eps_mul_lsb": self.mean_error_lsb,
            "energy_fj": self.energy_per_multiplication * 1e15,
            "fom": self.figure_of_merit,
            "sigma_max_lsb": self.sigma_at_max_discharge_lsb,
        }


@dataclasses.dataclass(frozen=True)
class DesignCorner:
    """A named, selected corner (Table I row)."""

    name: str
    point: DesignPoint

    @property
    def config(self) -> MultiplierConfig:
        """The selected configuration, renamed after the corner."""
        return self.point.config.renamed(self.name)

    def table_row(self) -> Dict[str, object]:
        """Row of the Table I reproduction."""
        return {
            "corner": self.name,
            "tau0_ns": self.point.config.tau0 * 1e9,
            "v_dac_zero": self.point.config.v_dac_zero,
            "v_dac_full_scale": self.point.config.v_dac_full_scale,
            "eps_mul_lsb": self.point.mean_error_lsb,
            "energy_fj": self.point.energy_per_multiplication * 1e15,
        }


@dataclasses.dataclass
class ExplorationResult:
    """Outcome of one full design-space exploration."""

    points: List[DesignPoint]
    space: DesignSpace
    conditions: OperatingConditions

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("an exploration needs at least one evaluated corner")

    # ------------------------------------------------------------------
    # Corner selection (paper Section V)
    # ------------------------------------------------------------------
    def best_fom(self) -> DesignPoint:
        """Corner maximising the Eq. 9 figure of merit."""
        return max(self.points, key=lambda point: point.figure_of_merit)

    def lowest_energy(self) -> DesignPoint:
        """Corner with the minimum energy per multiplication."""
        return min(self.points, key=lambda point: point.energy_per_multiplication)

    def lowest_variation(self) -> DesignPoint:
        """Corner least impacted by process variation.

        Selected as the smallest mismatch sigma at the maximum discharge
        relative to the corner's full-scale signal (paper Section V's
        "smallest standard deviation at the maximum discharge").
        """
        return min(
            self.points, key=lambda point: point.relative_sigma_at_max_discharge
        )

    def selected_corners(self) -> List[DesignCorner]:
        """The three corners of paper Table I (fom, power, variation)."""
        return [
            DesignCorner("fom", self.best_fom()),
            DesignCorner("power", self.lowest_energy()),
            DesignCorner("variation", self.lowest_variation()),
        ]

    # ------------------------------------------------------------------
    # Pareto front and slices
    # ------------------------------------------------------------------
    def pareto_front(self) -> List[DesignPoint]:
        """Non-dominated corners in the (error, energy) plane."""
        front: List[DesignPoint] = []
        for candidate in self.points:
            dominated = False
            for other in self.points:
                if other is candidate:
                    continue
                better_or_equal = (
                    other.mean_error_lsb <= candidate.mean_error_lsb
                    and other.energy_per_multiplication
                    <= candidate.energy_per_multiplication
                )
                strictly_better = (
                    other.mean_error_lsb < candidate.mean_error_lsb
                    or other.energy_per_multiplication
                    < candidate.energy_per_multiplication
                )
                if better_or_equal and strictly_better:
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        front.sort(key=lambda point: point.energy_per_multiplication)
        return front

    def slice_by_full_scale(
        self, tau0: float, v_dac_zero: float
    ) -> List[DesignPoint]:
        """Corners sharing ``tau0`` and ``V_DAC,0`` (Fig. 7 left sweep)."""
        matches = [
            point
            for point in self.points
            if np.isclose(point.config.tau0, tau0, rtol=1e-6, atol=1e-15)
            and np.isclose(point.config.v_dac_zero, v_dac_zero, rtol=1e-6, atol=1e-12)
        ]
        matches.sort(key=lambda point: point.config.v_dac_full_scale)
        return matches

    def slice_by_tau0(
        self, v_dac_zero: float, v_dac_full_scale: float
    ) -> List[DesignPoint]:
        """Corners sharing the DAC voltages (Fig. 7 right sweep)."""
        matches = [
            point
            for point in self.points
            if np.isclose(point.config.v_dac_zero, v_dac_zero, rtol=1e-6, atol=1e-12)
            and np.isclose(
                point.config.v_dac_full_scale, v_dac_full_scale, rtol=1e-6, atol=1e-12
            )
        ]
        matches.sort(key=lambda point: point.config.tau0)
        return matches

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def table(self) -> List[Dict[str, float]]:
        """All corner rows (one dictionary per corner)."""
        return [point.row() for point in self.points]

    def describe(self) -> str:
        """Human-readable summary of the selected corners."""
        lines = [f"design-space exploration: {len(self.points)} corners evaluated"]
        for corner in self.selected_corners():
            row = corner.table_row()
            lines.append(
                f"  {row['corner']:<10} tau0={row['tau0_ns']:.2f} ns "
                f"V0={row['v_dac_zero']:.2f} V FS={row['v_dac_full_scale']:.2f} V "
                f"eps={row['eps_mul_lsb']:.2f} LSB E={row['energy_fj']:.1f} fJ"
            )
        return "\n".join(lines)


def _evaluate_corner(
    suite: OptimaModelSuite,
    config: MultiplierConfig,
    conditions: OperatingConditions,
) -> DesignPoint:
    """Evaluate one design corner (module-level so executors can pickle it)."""
    multiplier = InSramMultiplier(suite, config, conditions=conditions)
    analysis = analyze_input_space(multiplier, conditions=conditions)
    return DesignPoint(config=config, analysis=analysis)


def _evaluate_corner_batch(jobs: Sequence[Job]) -> List[DesignPoint]:
    """Vectorised batch evaluator for the batch executor.

    All corners of one batch share the suite and operating conditions, so
    the batch reuses a single conditions/suite reference instead of
    re-pickling them per job; the evaluation itself is already fully
    vectorised over the 256-point input space inside each corner.
    """
    return [_evaluate_corner(*job.args) for job in jobs]


def _encode_design_point(point: DesignPoint) -> Artifact:
    """Cache codec: one evaluated corner as arrays + config metadata."""
    analysis = point.analysis
    return Artifact(
        arrays={
            "expected": analysis.expected,
            "results": analysis.results,
            "errors": analysis.errors,
            "analog_sigma": analysis.analog_sigma,
        },
        meta={
            "config": point.config.to_dict(),
            "energy_per_multiplication": analysis.energy_per_multiplication,
            "energy_per_operation": analysis.energy_per_operation,
            "adc_lsb": analysis.adc_lsb,
        },
    )


def _decode_design_point(artifact: Artifact) -> DesignPoint:
    """Inverse of :func:`_encode_design_point`."""
    config = MultiplierConfig.from_dict(artifact.meta["config"])
    analysis = InputSpaceAnalysis(
        config=config,
        expected=artifact.arrays["expected"],
        results=artifact.arrays["results"],
        errors=artifact.arrays["errors"],
        analog_sigma=artifact.arrays["analog_sigma"],
        energy_per_multiplication=float(artifact.meta["energy_per_multiplication"]),
        energy_per_operation=float(artifact.meta["energy_per_operation"]),
        adc_lsb=float(artifact.meta["adc_lsb"]),
    )
    return DesignPoint(config=config, analysis=analysis)


def explore_design_space(
    suite: OptimaModelSuite,
    space: Optional[DesignSpace] = None,
    conditions: Optional[OperatingConditions] = None,
    engine: Optional[SweepEngine] = None,
) -> ExplorationResult:
    """Evaluate every corner of ``space`` with the OPTIMA-backed multiplier.

    Each corner is one independent job submitted through ``engine``; the
    default serial engine reproduces the historical inline loop exactly,
    while a parallel executor evaluates corners concurrently (bit-identical
    results) and an attached artifact cache makes repeated explorations of
    the same suite near-instant.
    """
    space = space or DesignSpace()
    conditions = conditions or OperatingConditions(
        vdd=suite.vdd_nominal, temperature=suite.temperature_nominal
    )
    engine = engine or SweepEngine()
    # Content hashes are only worth computing when a cache can use them;
    # hoist the suite serialisation out of the per-corner loop either way.
    suite_dict = suite.to_dict() if engine.cache is not None else None
    jobs = [
        Job(
            fn=_evaluate_corner,
            args=(suite, config, conditions),
            name=f"dse:{config.name}",
            key=(
                job_key("dse-corner", suite_dict, config, conditions)
                if suite_dict is not None
                else None
            ),
            encode=_encode_design_point,
            decode=_decode_design_point,
        )
        for config in space.configurations()
    ]
    points = engine.run(SweepSpec("design-space", jobs, batch_fn=_evaluate_corner_batch))
    return ExplorationResult(points=list(points), space=space, conditions=conditions)


def select_corners(
    result: ExplorationResult,
) -> Dict[str, MultiplierConfig]:
    """Convenience mapping from corner name to selected configuration."""
    return {corner.name: corner.config for corner in result.selected_corners()}
