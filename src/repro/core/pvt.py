"""PVT robustness analysis of selected multiplier corners (paper Fig. 8).

For each selected corner the paper reports:

* the average multiplication result and its analogue standard deviation as a
  function of the expected result (Fig. 8, left column), and
* the average error as a function of supply voltage and temperature
  (Fig. 8, right column).

Both analyses run on the fast OPTIMA-backed multiplier, which is the whole
point of the framework: a PVT sweep over three corners finishes in
milliseconds instead of the hours a transistor-level corner sweep costs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.conditions import OperatingConditions, celsius_to_kelvin
from repro.core.model_suite import OptimaModelSuite
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.error_analysis import analyze_input_space, group_by_expected_product
from repro.multiplier.imac import InSramMultiplier
from repro.runtime import Job, SweepEngine, SweepSpec


@dataclasses.dataclass
class TransferCurve:
    """Average result / sigma versus expected product (Fig. 8 left)."""

    expected: np.ndarray
    mean_result: np.ndarray
    result_sigma_lsb: np.ndarray
    mean_error: np.ndarray

    def max_deviation(self) -> float:
        """Largest deviation of the mean result from the ideal transfer."""
        return float(np.max(np.abs(self.mean_result - self.expected)))

    def worst_sigma_lsb(self) -> float:
        """Largest analogue sigma along the transfer curve, in LSB."""
        return float(np.max(self.result_sigma_lsb))


@dataclasses.dataclass
class SensitivitySweep:
    """Average error versus one operating-condition axis (Fig. 8 right)."""

    values: np.ndarray
    mean_error_lsb: np.ndarray
    axis: str

    def error_span(self) -> float:
        """Spread of the mean error across the sweep."""
        return float(np.max(self.mean_error_lsb) - np.min(self.mean_error_lsb))

    def worst_case(self) -> Tuple[float, float]:
        """(axis value, error) of the worst point of the sweep."""
        index = int(np.argmax(self.mean_error_lsb))
        return float(self.values[index]), float(self.mean_error_lsb[index])


@dataclasses.dataclass
class CornerRobustnessReport:
    """Full Fig. 8 data set for one corner."""

    config: MultiplierConfig
    transfer: TransferCurve
    supply_sweep: SensitivitySweep
    temperature_sweep: SensitivitySweep
    nominal_error_lsb: float
    nominal_energy_per_multiplication: float
    small_operand_error_lsb: float

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        vdd_worst = self.supply_sweep.worst_case()
        temp_worst = self.temperature_sweep.worst_case()
        return (
            f"{self.config.name}: nominal eps={self.nominal_error_lsb:.2f} LSB, "
            f"sigma_max={self.transfer.worst_sigma_lsb():.2f} LSB, "
            f"worst VDD error {vdd_worst[1]:.2f} LSB @ {vdd_worst[0]:.2f} V, "
            f"worst T error {temp_worst[1]:.2f} LSB @ {temp_worst[0]:.0f} degC"
        )


def _mean_error_at_conditions(
    multiplier: InSramMultiplier,
    conditions: OperatingConditions,
) -> float:
    """Mean error of a nominally-calibrated multiplier at off-nominal conditions.

    Module-level so the process-pool executor can pickle it; the multiplier
    is built once (calibrated at nominal) and shared by every sweep point,
    reproducing the "ADC calibrated once at nominal, then swept" protocol.
    """
    return float(analyze_input_space(multiplier, conditions=conditions).mean_error_lsb)


def _sensitivity_batch(jobs: Sequence[Job]) -> List[float]:
    """Whole-chunk evaluator for :func:`_mean_error_at_conditions` jobs.

    The sweep shares one nominally-calibrated multiplier across every
    operating point, so the whole group of points can be evaluated as one
    NumPy pass with the supply / temperature values stacked on a leading
    axis (:meth:`InSramMultiplier.multiply_at_conditions`).  Per-point
    results are bit-identical to the per-job path; a chunk that is not the
    expected homogeneous shape (mixed functions, different multipliers)
    falls back to running each job individually rather than risking the
    identity guarantee.
    """
    if not jobs:
        return []
    first = jobs[0]
    if any(
        job.fn is not _mean_error_at_conditions
        or job.kwargs
        or len(job.args) != 2
        or job.args[0] is not first.args[0]
        for job in jobs
    ):
        return [job.run() for job in jobs]
    multiplier = first.args[0]
    points = [job.args[1] for job in jobs]
    x_grid, d_grid = multiplier.input_space()
    expected = (x_grid * d_grid).astype(float)
    results = multiplier.multiply_at_conditions(x_grid, d_grid, points).astype(float)
    return [float(np.mean(np.abs(sample - expected))) for sample in results]


def analyze_corner_robustness(
    suite: OptimaModelSuite,
    config: MultiplierConfig,
    supply_voltages: Sequence[float] = (0.90, 0.95, 1.00, 1.05, 1.10),
    temperatures_celsius: Sequence[float] = (0.0, 15.0, 27.0, 45.0, 60.0, 70.0),
    conditions: Optional[OperatingConditions] = None,
    engine: Optional[SweepEngine] = None,
) -> CornerRobustnessReport:
    """Run the full Fig. 8 analysis for one corner.

    The read-out ADC is calibrated once at nominal conditions and then kept
    fixed across the PVT sweep — exactly the situation a deployed circuit
    faces, and the reason supply/temperature variations translate into
    multiplication errors at all.

    Every point of the supply / temperature sweeps is one independent job
    submitted through ``engine`` (default: serial, bit-identical to the
    historical inline loop).
    """
    nominal = conditions or OperatingConditions(
        vdd=suite.vdd_nominal, temperature=suite.temperature_nominal
    )
    engine = engine or SweepEngine()
    multiplier = InSramMultiplier(suite, config, conditions=nominal)

    nominal_analysis = analyze_input_space(multiplier, conditions=nominal)
    expected, mean_result, sigma_lsb, mean_error = group_by_expected_product(
        nominal_analysis
    )
    transfer = TransferCurve(
        expected=expected,
        mean_result=mean_result,
        result_sigma_lsb=sigma_lsb,
        mean_error=mean_error,
    )

    sweep_points = [nominal.with_vdd(float(vdd)) for vdd in supply_voltages] + [
        nominal.with_temperature(celsius_to_kelvin(float(t)))
        for t in temperatures_celsius
    ]
    errors = engine.map(
        _mean_error_at_conditions,
        [(multiplier, point) for point in sweep_points],
        name=f"robustness:{config.name}",
        batch_fn=_sensitivity_batch,
    )
    supply_errors = errors[: len(supply_voltages)]
    temperature_errors = errors[len(supply_voltages) :]
    supply_sweep = SensitivitySweep(
        values=np.asarray(supply_voltages, dtype=float),
        mean_error_lsb=np.asarray(supply_errors, dtype=float),
        axis="vdd",
    )
    temperature_sweep = SensitivitySweep(
        values=np.asarray(temperatures_celsius, dtype=float),
        mean_error_lsb=np.asarray(temperature_errors, dtype=float),
        axis="temperature_celsius",
    )

    return CornerRobustnessReport(
        config=config,
        transfer=transfer,
        supply_sweep=supply_sweep,
        temperature_sweep=temperature_sweep,
        nominal_error_lsb=nominal_analysis.mean_error_lsb,
        nominal_energy_per_multiplication=nominal_analysis.energy_per_multiplication,
        small_operand_error_lsb=nominal_analysis.small_operand_error(),
    )


def analyze_corners(
    suite: OptimaModelSuite,
    configs: Dict[str, MultiplierConfig],
    **kwargs: object,
) -> Dict[str, CornerRobustnessReport]:
    """Run :func:`analyze_corner_robustness` for every named corner."""
    return {
        name: analyze_corner_robustness(suite, config, **kwargs)
        for name, config in configs.items()
    }


def _monte_carlo_sample(
    multiplier: InSramMultiplier,
    conditions: OperatingConditions,
    seed_sequence: np.random.SeedSequence,
) -> float:
    """One Monte-Carlo sample of the mean multiplication error.

    The sample owns a dedicated :class:`numpy.random.SeedSequence` child, so
    its draws are independent of every other sample and of the execution
    schedule — serial and parallel runs produce bit-identical values.  The
    multiplier is built once by the caller and shared across samples.
    """
    x_grid, d_grid = multiplier.input_space()
    expected = (x_grid * d_grid).astype(float)
    rng = np.random.default_rng(seed_sequence)
    result = multiplier.multiply(x_grid, d_grid, conditions=conditions, rng=rng)
    return float(np.mean(np.abs(result - expected)))


def _monte_carlo_batch(jobs: Sequence[Job]) -> List[float]:
    """Whole-chunk evaluator for :func:`_monte_carlo_sample` jobs.

    Every sample of a Monte-Carlo sweep shares the multiplier and the
    operating point and differs only in its :class:`~numpy.random.SeedSequence`
    child, so a whole group of samples is one stacked NumPy pass
    (:meth:`InSramMultiplier.multiply_mc_samples`): the deterministic mean
    discharge and the mismatch sigma are evaluated once per group instead
    of once per sample, while each sample keeps its own generator and its
    own ``rng.normal`` draw — bit-identical to the per-job path.  A chunk
    that is not the homogeneous Monte-Carlo shape falls back to per-job
    execution.
    """
    if not jobs:
        return []
    first = jobs[0]
    if any(
        job.fn is not _monte_carlo_sample
        or job.kwargs
        or len(job.args) != 3
        or job.args[0] is not first.args[0]
        or job.args[1] is not first.args[1]
        for job in jobs
    ):
        return [job.run() for job in jobs]
    multiplier, conditions, _ = first.args
    rngs = [np.random.default_rng(job.args[2]) for job in jobs]
    x_grid, d_grid = multiplier.input_space()
    expected = (x_grid * d_grid).astype(float)
    results = multiplier.multiply_mc_samples(x_grid, d_grid, rngs, conditions=conditions)
    return [float(np.mean(np.abs(sample - expected))) for sample in results]


def monte_carlo_error_distribution(
    suite: OptimaModelSuite,
    config: MultiplierConfig,
    samples: int = 200,
    seed: int = 0,
    conditions: Optional[OperatingConditions] = None,
    engine: Optional[SweepEngine] = None,
) -> np.ndarray:
    """Monte-Carlo distribution of the mean multiplication error.

    Each sample perturbs every discharge with the Eq. 6 mismatch sigma and
    evaluates the full input space, returning one mean-error value per
    sample.  This is the fast-model counterpart of the reference
    Monte-Carlo runs used in the speed-up comparison.

    Per-sample seeds are derived with ``np.random.SeedSequence(seed).spawn``
    rather than by drawing from one sequential generator, so the estimate is
    independent of how the samples are scheduled: a parallel engine returns
    bit-identical sigma estimates to the serial one (asserted in
    ``tests/test_runtime_engine.py``).
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    nominal = conditions or OperatingConditions(
        vdd=suite.vdd_nominal, temperature=suite.temperature_nominal
    )
    engine = engine or SweepEngine()
    multiplier = InSramMultiplier(suite, config, conditions=nominal)
    children = np.random.SeedSequence(seed).spawn(samples)
    jobs = [
        Job(
            fn=_monte_carlo_sample,
            args=(multiplier, nominal, child),
            name=f"monte-carlo[{index}]",
        )
        for index, child in enumerate(children)
    ]
    errors = engine.run(
        SweepSpec(f"monte-carlo:{config.name}", jobs, batch_fn=_monte_carlo_batch)
    )
    return np.asarray(errors, dtype=float)
