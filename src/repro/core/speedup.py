"""Runtime comparison between OPTIMA and the reference circuit simulator.

Paper Section V reports a ~101x speed-up for iterating over the multiplier
input space and design corners and a 28.1x speed-up for mismatch Monte-Carlo
sampling, comparing the OPTIMA (SystemVerilog) flow against Cadence Virtuoso.
The equivalent comparison here pits the polynomial model suite against the
ODE-based transient solver.  Absolute factors depend on the host machine and
on how heavily the reference solver is vectorised, so the benchmark reports
the measured factor alongside the paper's.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.circuits.technology import TechnologyCard
from repro.core.model_suite import OptimaModelSuite
from repro.core.metrics import speedup_ratio
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier
from repro.multiplier.reference import ReferenceMultiplier


@dataclasses.dataclass
class SpeedupReport:
    """Measured runtimes and speed-up factors."""

    reference_input_space_seconds: float
    optima_input_space_seconds: float
    reference_monte_carlo_seconds: float
    optima_monte_carlo_seconds: float
    input_space_repetitions: int
    monte_carlo_samples: int

    @property
    def input_space_speedup(self) -> float:
        """Speed-up for iterating the multiplier input space."""
        return speedup_ratio(
            self.reference_input_space_seconds, self.optima_input_space_seconds
        )

    @property
    def monte_carlo_speedup(self) -> float:
        """Speed-up for mismatch Monte-Carlo sampling."""
        return speedup_ratio(
            self.reference_monte_carlo_seconds, self.optima_monte_carlo_seconds
        )

    def describe(self) -> str:
        """Human-readable summary of the comparison."""
        return (
            f"input-space iteration: reference {self.reference_input_space_seconds:.3f} s, "
            f"OPTIMA {self.optima_input_space_seconds:.3f} s "
            f"-> {self.input_space_speedup:.1f}x\n"
            f"mismatch Monte-Carlo : reference {self.reference_monte_carlo_seconds:.3f} s, "
            f"OPTIMA {self.optima_monte_carlo_seconds:.3f} s "
            f"-> {self.monte_carlo_speedup:.1f}x"
        )


def measure_speedup(
    technology: TechnologyCard,
    suite: OptimaModelSuite,
    config: Optional[MultiplierConfig] = None,
    input_space_repetitions: int = 3,
    monte_carlo_samples: int = 200,
    conditions: Optional[OperatingConditions] = None,
    seed: int = 0,
) -> SpeedupReport:
    """Time the reference and OPTIMA evaluations of the same workload.

    Parameters
    ----------
    technology:
        Technology card of the reference simulator.
    suite:
        Calibrated OPTIMA model suite.
    config:
        Multiplier configuration to evaluate; defaults to the paper's
        ``fom`` corner parameters.
    input_space_repetitions:
        How many times the full 256-entry input space is evaluated (stands
        in for iterating over design corners).
    monte_carlo_samples:
        Mismatch Monte-Carlo sample count.
    """
    if input_space_repetitions <= 0:
        raise ValueError("input_space_repetitions must be positive")
    if monte_carlo_samples <= 0:
        raise ValueError("monte_carlo_samples must be positive")
    config = config or MultiplierConfig(name="fom")
    conditions = conditions or OperatingConditions.nominal(technology)

    reference = ReferenceMultiplier(technology, config, conditions=conditions)
    fast = InSramMultiplier(suite, config, conditions=conditions)
    x_grid, d_grid = fast.input_space()

    # --- input-space iteration ----------------------------------------
    start = time.perf_counter()
    for _ in range(input_space_repetitions):
        reference.characterize_input_space(conditions)
    reference_input_space = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(input_space_repetitions):
        fast.multiply(x_grid, d_grid, conditions=conditions)
    optima_input_space = time.perf_counter() - start

    # --- mismatch Monte-Carlo ------------------------------------------
    start = time.perf_counter()
    reference.characterize_monte_carlo(
        monte_carlo_samples, conditions=conditions, seed=seed
    )
    reference_monte_carlo = time.perf_counter() - start

    rng = np.random.default_rng(seed)
    wordline_voltage = fast.wordline_voltage(config.max_operand)
    start = time.perf_counter()
    suite.sample_discharge_voltage(
        np.full(monte_carlo_samples, config.max_discharge_time),
        np.full(monte_carlo_samples, float(np.asarray(wordline_voltage))),
        rng,
        conditions=conditions,
    )
    optima_monte_carlo = time.perf_counter() - start

    # Guard against zero-duration timings on very fast machines.
    epsilon = 1e-9
    return SpeedupReport(
        reference_input_space_seconds=max(reference_input_space, epsilon),
        optima_input_space_seconds=max(optima_input_space, epsilon),
        reference_monte_carlo_seconds=max(reference_monte_carlo, epsilon),
        optima_monte_carlo_seconds=max(optima_monte_carlo, epsilon),
        input_space_repetitions=input_space_repetitions,
        monte_carlo_samples=monte_carlo_samples,
    )
