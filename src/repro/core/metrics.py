"""Error and performance metrics used throughout the OPTIMA flow.

The paper quantifies model quality as RMS voltage / energy error (Fig. 6),
multiplier quality as average error in ADC least-significant bits (Table I,
Fig. 7/8) and framework performance as a speed-up factor over circuit
simulation (Section V).  This module collects those conversions so every
experiment reports them identically.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]


def rms_error(predicted: ArrayLike, reference: ArrayLike) -> float:
    """Root-mean-square error between two arrays (broadcasting allowed)."""
    predicted = np.asarray(predicted, dtype=float)
    reference = np.asarray(reference, dtype=float)
    difference = predicted - reference
    return float(np.sqrt(np.mean(difference**2)))


def mean_absolute_error(predicted: ArrayLike, reference: ArrayLike) -> float:
    """Mean absolute error between two arrays."""
    predicted = np.asarray(predicted, dtype=float)
    reference = np.asarray(reference, dtype=float)
    return float(np.mean(np.abs(predicted - reference)))


def max_absolute_error(predicted: ArrayLike, reference: ArrayLike) -> float:
    """Worst-case absolute error between two arrays."""
    predicted = np.asarray(predicted, dtype=float)
    reference = np.asarray(reference, dtype=float)
    return float(np.max(np.abs(predicted - reference)))


def lsb_voltage(full_scale_voltage: float, levels: int) -> float:
    """Voltage of one ADC least-significant bit.

    Parameters
    ----------
    full_scale_voltage:
        Analogue full-scale range captured by the converter, in volts.
    levels:
        Number of quantisation *steps* (e.g. ``2**bits - 1`` for a classic
        ADC, or 225 for the multiplier's 0..15*15 product range).
    """
    if full_scale_voltage <= 0.0:
        raise ValueError("full_scale_voltage must be positive")
    if levels <= 0:
        raise ValueError("levels must be positive")
    return full_scale_voltage / levels


def voltage_to_lsb(voltage: ArrayLike, lsb: float) -> np.ndarray:
    """Convert a voltage (or voltage error) to LSB units."""
    if lsb <= 0.0:
        raise ValueError("lsb must be positive")
    return np.asarray(voltage, dtype=float) / lsb


def error_in_lsb(measured_codes: ArrayLike, expected_codes: ArrayLike) -> np.ndarray:
    """Absolute code error in LSB units (codes are already integers)."""
    measured = np.asarray(measured_codes, dtype=float)
    expected = np.asarray(expected_codes, dtype=float)
    return np.abs(measured - expected)


def speedup_ratio(reference_runtime: float, fast_runtime: float) -> float:
    """Speed-up of the fast flow over the reference flow.

    Mirrors the paper's Section V claim (about 100x for input-space and
    design-corner iteration, 28.1x for mismatch Monte-Carlo).
    """
    if reference_runtime <= 0.0:
        raise ValueError("reference_runtime must be positive")
    if fast_runtime <= 0.0:
        raise ValueError("fast_runtime must be positive")
    return reference_runtime / fast_runtime


def signal_to_noise_ratio_db(signal_rms: float, noise_rms: float) -> float:
    """SNR in decibels for a given signal and noise RMS amplitude."""
    if signal_rms <= 0.0:
        raise ValueError("signal_rms must be positive")
    if noise_rms <= 0.0:
        raise ValueError("noise_rms must be positive")
    return 20.0 * float(np.log10(signal_rms / noise_rms))


def figure_of_merit(mean_error_lsb: float, energy_per_op: float) -> float:
    """Paper Eq. 9: ``FOM = 1 / (eps_mul * E_mul)``.

    Larger is better; the ``fom`` design corner of Table I maximises this.
    """
    if mean_error_lsb <= 0.0:
        raise ValueError("mean_error_lsb must be positive")
    if energy_per_op <= 0.0:
        raise ValueError("energy_per_op must be positive")
    return 1.0 / (mean_error_lsb * energy_per_op)


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Top-``k`` classification accuracy.

    Parameters
    ----------
    scores:
        Class scores of shape ``(samples, classes)``.
    labels:
        Integer ground-truth labels of shape ``(samples,)``.
    k:
        How many of the highest-scoring classes count as a hit.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels)
    if scores.ndim != 2:
        raise ValueError("scores must be a (samples, classes) matrix")
    if labels.shape[0] != scores.shape[0]:
        raise ValueError("labels must have one entry per score row")
    if not 1 <= k <= scores.shape[1]:
        raise ValueError("k must lie in [1, number of classes]")
    top_k = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    hits = np.any(top_k == labels[:, np.newaxis], axis=1)
    return float(np.mean(hits))
