"""The bundle of fitted OPTIMA models.

:class:`OptimaModelSuite` is what the fast simulation layers consume: the
event-driven testbench, the in-SRAM multiplier model, the design-space
exploration and the DNN injection all query discharges, sigmas and energies
exclusively through this object, never through the slow reference simulator.
The suite is JSON-serialisable so a calibration can be stored next to the
technology it was fitted for and reloaded without re-running the sweeps.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.core.discharge_model import DischargeModel
from repro.core.energy_model import DischargeEnergyModel, WriteEnergyModel

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass
class OptimaModelSuite:
    """Fitted OPTIMA discharge and energy models plus calibration metadata.

    Attributes
    ----------
    discharge:
        The composed discharge model (paper Eq. 3-6).
    write_energy:
        The write energy model (paper Eq. 7).
    discharge_energy:
        The discharge energy model (paper Eq. 8).
    technology_name:
        Name of the technology card the suite was calibrated against.
    metadata:
        Free-form calibration metadata (fit ranges, record counts, RMS
        errors) carried along for reporting.
    """

    discharge: DischargeModel
    write_energy: WriteEnergyModel
    discharge_energy: DischargeEnergyModel
    technology_name: str = "unknown"
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # Convenience queries (conditions-based signatures)
    # ------------------------------------------------------------------
    @property
    def vdd_nominal(self) -> float:
        """Nominal supply voltage of the calibration."""
        return self.discharge.vdd_nominal

    @property
    def temperature_nominal(self) -> float:
        """Nominal temperature of the calibration in kelvin."""
        return self.discharge.temperature_nominal

    @property
    def threshold_voltage(self) -> float:
        """Threshold voltage used for the overdrive transformation."""
        return self.discharge.threshold_voltage

    def bitline_voltage(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Deterministic bit-line voltage under the given conditions."""
        vdd, temperature = self._split_conditions(conditions)
        return self.discharge.bitline_voltage(
            time, wordline_voltage, vdd=vdd, temperature=temperature, stored_bit=stored_bit
        )

    def discharge_voltage(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Deterministic discharge ``V_DD - V_BLB`` under the given conditions."""
        vdd, temperature = self._split_conditions(conditions)
        return self.discharge.discharge(
            time, wordline_voltage, vdd=vdd, temperature=temperature, stored_bit=stored_bit
        )

    def sample_discharge_voltage(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        rng: np.random.Generator,
        conditions: Optional[OperatingConditions] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Mismatch-sampled discharge under the given conditions."""
        vdd, temperature = self._split_conditions(conditions)
        return self.discharge.sample_discharge(
            time,
            wordline_voltage,
            rng,
            vdd=vdd,
            temperature=temperature,
            stored_bit=stored_bit,
        )

    def sample_discharge_voltage_stack(
        self,
        time: ArrayLike,
        wordline_voltage: ArrayLike,
        rngs: Sequence[np.random.Generator],
        conditions: Optional[OperatingConditions] = None,
        stored_bit: int = 1,
    ) -> np.ndarray:
        """Mismatch-sampled discharges for a stack of generators.

        One leading axis per generator; row ``i`` is bit-identical to
        :meth:`sample_discharge_voltage` with ``rngs[i]`` (the vectorised
        Monte-Carlo inner loop — mean and sigma evaluated once, not per
        sample).
        """
        vdd, temperature = self._split_conditions(conditions)
        return self.discharge.sample_discharge_stack(
            time,
            wordline_voltage,
            rngs,
            vdd=vdd,
            temperature=temperature,
            stored_bit=stored_bit,
        )

    def mismatch_sigma(self, time: ArrayLike, wordline_voltage: ArrayLike) -> np.ndarray:
        """Mismatch sigma of the discharge (paper Eq. 6)."""
        return self.discharge.mismatch_sigma(time, wordline_voltage)

    def write_energy_per_bit(
        self, conditions: Optional[OperatingConditions] = None
    ) -> float:
        """Write energy per bit under the given conditions."""
        vdd, temperature = self._split_conditions(conditions)
        return float(self.write_energy.energy(vdd, temperature))

    def word_write_energy(
        self, conditions: Optional[OperatingConditions] = None, bits: int = 4
    ) -> float:
        """Write energy of a ``bits``-wide word."""
        vdd, temperature = self._split_conditions(conditions)
        return float(self.write_energy.word_energy(vdd, temperature, bits=bits))

    def discharge_event_energy(
        self,
        delta_v_bl: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Energy of one discharge-and-restore event for a given swing."""
        vdd, temperature = self._split_conditions(conditions)
        return self.discharge_energy.energy(delta_v_bl, vdd, temperature)

    def _split_conditions(
        self, conditions: Optional[OperatingConditions]
    ) -> tuple:
        if conditions is None:
            return self.vdd_nominal, self.temperature_nominal
        return conditions.vdd, conditions.temperature

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "discharge": self.discharge.to_dict(),
            "write_energy": self.write_energy.to_dict(),
            "discharge_energy": self.discharge_energy.to_dict(),
            "technology_name": self.technology_name,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OptimaModelSuite":
        """Inverse of :meth:`to_dict`."""
        return cls(
            discharge=DischargeModel.from_dict(data["discharge"]),
            write_energy=WriteEnergyModel.from_dict(data["write_energy"]),
            discharge_energy=DischargeEnergyModel.from_dict(data["discharge_energy"]),
            technology_name=str(data.get("technology_name", "unknown")),
            metadata=dict(data.get("metadata", {})),
        )

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the suite to a JSON file and return the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "OptimaModelSuite":
        """Load a suite previously written with :meth:`save`."""
        path = pathlib.Path(path)
        return cls.from_dict(json.loads(path.read_text()))
