"""One-call OPTIMA calibration flow.

``calibrate()`` chains the three steps of paper Section IV:

1. run the multi-corner characterisation sweeps on the reference simulator,
2. fit the polynomial behavioural models by (alternating) least squares,
3. bundle the fitted models into an :class:`~repro.core.model_suite.OptimaModelSuite`
   together with the residual report (the Fig. 6 RMS numbers).

Because the full characterisation takes a couple of seconds, the module also
provides a process-wide cache keyed by technology name and plan, which the
benchmarks and examples share.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.circuits.technology import TechnologyCard
from repro.core.characterization import (
    CharacterizationData,
    CharacterizationPlan,
    characterize,
)
from repro.core.fitting import FitReport, ModelDegrees, fit_all_models
from repro.core.model_suite import OptimaModelSuite
from repro.runtime import SweepEngine


@dataclasses.dataclass
class CalibrationResult:
    """Outcome of one calibration run."""

    suite: OptimaModelSuite
    report: FitReport
    data: CharacterizationData

    def describe(self) -> str:
        """Human-readable summary of the calibration quality."""
        header = (
            f"OPTIMA calibration for {self.suite.technology_name} "
            f"({self.data.record_count()} reference records)"
        )
        return f"{header}\n{self.report.describe()}"


def calibrate(
    technology: TechnologyCard,
    plan: Optional[CharacterizationPlan] = None,
    degrees: Optional[ModelDegrees] = None,
    engine: Optional[SweepEngine] = None,
) -> CalibrationResult:
    """Characterise ``technology`` and fit the full OPTIMA model suite.

    ``engine`` routes the characterisation sweeps through the runtime layer
    (parallel executors, artifact cache); the default stays serial.
    """
    plan = plan or CharacterizationPlan()
    degrees = degrees or ModelDegrees()
    data = characterize(technology, plan, engine=engine)
    fitted = fit_all_models(data, degrees)
    suite = OptimaModelSuite(
        discharge=fitted.discharge,
        write_energy=fitted.write_energy,
        discharge_energy=fitted.discharge_energy,
        technology_name=technology.name,
        metadata={
            "record_count": data.record_count(),
            "rms_errors": fitted.report.as_dict(),
            "times_ns": [t * 1e9 for t in plan.times],
            "wordline_voltages": list(plan.wordline_voltages),
            "supply_voltages": list(plan.supply_voltages),
            "temperatures_celsius": list(plan.temperatures_celsius),
        },
    )
    return CalibrationResult(suite=suite, report=fitted.report, data=data)


# ----------------------------------------------------------------------
# Shared cache
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple[str, int], CalibrationResult] = {}


def calibrated_suite(
    technology: TechnologyCard,
    plan: Optional[CharacterizationPlan] = None,
    degrees: Optional[ModelDegrees] = None,
    engine: Optional[SweepEngine] = None,
) -> CalibrationResult:
    """Cached variant of :func:`calibrate`.

    The in-process cache key combines the technology name and the plan
    contents, so asking for the same calibration twice (as the benchmark
    suite does) re-uses the result instead of re-running the reference
    sweeps.  On top of that, passing an ``engine`` with an attached
    :class:`repro.runtime.ArtifactCache` persists the characterisation
    sweeps on disk, so even a *fresh process* skips the reference solver.
    """
    plan = plan or CharacterizationPlan()
    key = (technology.name, hash((plan, degrees)))
    if key not in _CACHE:
        _CACHE[key] = calibrate(technology, plan, degrees, engine=engine)
    return _CACHE[key]


def clear_calibration_cache() -> None:
    """Drop every cached calibration (used by tests)."""
    _CACHE.clear()
