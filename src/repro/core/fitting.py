"""Least-squares fitting of the OPTIMA behavioural models.

Each function below fits one of the paper's model equations against the
reference characterisation sweeps and reports its RMS residual — the same
numbers the paper quotes in Section IV-C (0.76 mV basic discharge, 0.88 mV
supply, 0.76 mV temperature, 0.59 mV mismatch sigma, 0.15 fJ write energy and
0.74 fJ discharge energy for their 65 nm data).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.characterization import CharacterizationData
from repro.core.discharge_model import DischargeModel
from repro.core.energy_model import DischargeEnergyModel, WriteEnergyModel
from repro.core.metrics import rms_error
from repro.core.polynomials import Polynomial1D, SeparableProductModel, vandermonde


@dataclasses.dataclass(frozen=True)
class ModelDegrees:
    """Polynomial degrees of every OPTIMA sub-model.

    The defaults are the degrees the paper states in Eq. 3-8; the ablation
    benchmark sweeps them to quantify the accuracy / parameter-count
    trade-off.
    """

    base_overdrive: int = 4
    base_time: int = 2
    supply: int = 2
    temperature_wordline: int = 3
    mismatch_time: int = 3
    mismatch_wordline: int = 3
    write_vdd: int = 2
    write_temperature: int = 1
    discharge_vdd: int = 1
    discharge_delta_v: int = 3
    discharge_temperature: int = 1
    supply_mode: str = "discharge"


@dataclasses.dataclass
class FitReport:
    """RMS residuals of every fitted model (the Fig. 6 numbers).

    Voltage residuals are in volts, energy residuals in joules; the
    ``describe`` method converts to the paper's mV / fJ units.
    """

    rms_base_discharge: float
    rms_supply: float
    rms_temperature: float
    rms_mismatch_sigma: float
    rms_write_energy: float
    rms_discharge_energy: float

    def as_dict(self) -> Dict[str, float]:
        """Residuals as a plain dictionary."""
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """Multi-line human-readable report in paper units."""
        lines = [
            f"basic discharge : {self.rms_base_discharge * 1e3:7.3f} mV RMS",
            f"supply voltage  : {self.rms_supply * 1e3:7.3f} mV RMS",
            f"temperature     : {self.rms_temperature * 1e3:7.3f} mV RMS",
            f"mismatch sigma  : {self.rms_mismatch_sigma * 1e3:7.3f} mV RMS",
            f"write energy    : {self.rms_write_energy * 1e15:7.3f} fJ RMS",
            f"discharge energy: {self.rms_discharge_energy * 1e15:7.3f} fJ RMS",
        ]
        return "\n".join(lines)

    @property
    def worst_voltage_rms(self) -> float:
        """Largest voltage-model residual (the paper's headline 0.88 mV)."""
        return max(
            self.rms_base_discharge,
            self.rms_supply,
            self.rms_temperature,
            self.rms_mismatch_sigma,
        )


# ----------------------------------------------------------------------
# Individual model fits
# ----------------------------------------------------------------------
def fit_base_discharge(
    data: CharacterizationData,
    threshold_voltage: float,
    degrees: ModelDegrees,
) -> SeparableProductModel:
    """Fit paper Eq. 3: ``V_BL - V_DD,nom = p4(V_od) * p2(t)``."""
    sweep = data.base
    overdrive = sweep.wordline_voltage - threshold_voltage
    target = sweep.bitline_voltage - sweep.vdd
    model = SeparableProductModel(
        degrees=(degrees.base_overdrive, degrees.base_time),
        variables=("overdrive", "time"),
    )
    model.fit([overdrive, sweep.time], target)
    return model


def fit_supply_correction(
    data: CharacterizationData,
    base: SeparableProductModel,
    threshold_voltage: float,
    vdd_nominal: float,
    degree: int,
    supply_mode: str = "discharge",
) -> Polynomial1D:
    """Fit paper Eq. 4: the multiplicative supply polynomial ``p2(dV_DD)``.

    Given the frozen base model, the target voltage is linear in the supply
    coefficients, so this is a direct least-squares solve.  The design
    matrix depends on the supply mode:

    * ``"voltage"`` — literal paper form; the polynomial multiplies the
      whole base voltage and the target is the observed bit-line voltage.
    * ``"discharge"`` — the polynomial multiplies only the discharge term
      and the target is the observed discharge below the actual supply.
    """
    if supply_mode not in ("discharge", "voltage"):
        raise ValueError("supply_mode must be 'discharge' or 'voltage'")
    sweep = data.supply
    overdrive = sweep.wordline_voltage - threshold_voltage
    discharge_term = base(overdrive, sweep.time)
    delta_vdd = sweep.vdd - vdd_nominal
    if supply_mode == "voltage":
        design = vandermonde(delta_vdd, degree) * (
            vdd_nominal + discharge_term
        )[:, np.newaxis]
        target = sweep.bitline_voltage
    else:
        design = vandermonde(delta_vdd, degree) * discharge_term[:, np.newaxis]
        target = sweep.bitline_voltage - sweep.vdd
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    return Polynomial1D(coefficients, variable="delta_vdd")


def fit_temperature_correction(
    data: CharacterizationData,
    base: SeparableProductModel,
    supply: Polynomial1D,
    threshold_voltage: float,
    vdd_nominal: float,
    temperature_nominal: float,
    degree: int,
    supply_mode: str = "discharge",
) -> Polynomial1D:
    """Fit paper Eq. 5: the additive term ``t * (T - T_nom) * p3(V_WL)``."""
    sweep = data.temperature
    overdrive = sweep.wordline_voltage - threshold_voltage
    discharge_term = base(overdrive, sweep.time)
    delta_vdd = sweep.vdd - vdd_nominal
    if supply_mode == "voltage":
        predicted = (vdd_nominal + discharge_term) * supply(delta_vdd)
    else:
        predicted = sweep.vdd + discharge_term * supply(delta_vdd)
    residual = sweep.bitline_voltage - predicted
    scale = sweep.time * (sweep.temperature - temperature_nominal)
    design = vandermonde(sweep.wordline_voltage, degree) * scale[:, np.newaxis]
    # Records at the nominal temperature carry no information about the
    # coefficient (their scale factor is zero); excluding them keeps the
    # least-squares problem well conditioned.
    informative = np.abs(scale) > 0.0
    if np.count_nonzero(informative) <= degree + 1:
        raise ValueError("temperature sweep contains no off-nominal records")
    coefficients, *_ = np.linalg.lstsq(
        design[informative], residual[informative], rcond=None
    )
    return Polynomial1D(coefficients, variable="v_wl")


def fit_mismatch_sigma(
    data: CharacterizationData, degrees: ModelDegrees
) -> SeparableProductModel:
    """Fit paper Eq. 6: ``sigma(t, V_WL) = p3(t) * p3(V_WL)``."""
    sweep = data.mismatch
    model = SeparableProductModel(
        degrees=(degrees.mismatch_time, degrees.mismatch_wordline),
        variables=("time", "v_wl"),
    )
    model.fit([sweep.time, sweep.wordline_voltage], sweep.sigma)
    return model


def fit_write_energy(
    data: CharacterizationData, degrees: ModelDegrees
) -> WriteEnergyModel:
    """Fit paper Eq. 7: ``E_wr = p2(V_DD) * p1(T)``."""
    sweep = data.write_energy
    model = SeparableProductModel(
        degrees=(degrees.write_vdd, degrees.write_temperature),
        variables=("vdd", "temperature"),
    )
    model.fit([sweep.vdd, sweep.temperature], sweep.energy)
    return WriteEnergyModel(model)


def fit_discharge_energy(
    data: CharacterizationData, degrees: ModelDegrees
) -> DischargeEnergyModel:
    """Fit paper Eq. 8: ``E_dc = p1(V_DD) * p3(dV_BL) * p1(T)``."""
    sweep = data.discharge_energy
    model = SeparableProductModel(
        degrees=(
            degrees.discharge_vdd,
            degrees.discharge_delta_v,
            degrees.discharge_temperature,
        ),
        variables=("vdd", "delta_v_bl", "temperature"),
    )
    model.fit([sweep.vdd, sweep.delta_v_bl, sweep.temperature], sweep.energy)
    return DischargeEnergyModel(model)


# ----------------------------------------------------------------------
# Full fit
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FittedModels:
    """Bundle of the fitted models plus their residual report."""

    discharge: DischargeModel
    write_energy: WriteEnergyModel
    discharge_energy: DischargeEnergyModel
    report: FitReport


def fit_all_models(
    data: CharacterizationData,
    degrees: Optional[ModelDegrees] = None,
) -> FittedModels:
    """Fit every OPTIMA model against one characterisation dataset."""
    degrees = degrees or ModelDegrees()
    technology = data.technology
    threshold_voltage = technology.vth_nominal
    vdd_nominal = technology.vdd_nominal
    temperature_nominal = technology.temperature_nominal

    base = fit_base_discharge(data, threshold_voltage, degrees)
    supply = fit_supply_correction(
        data,
        base,
        threshold_voltage,
        vdd_nominal,
        degrees.supply,
        supply_mode=degrees.supply_mode,
    )
    temperature = fit_temperature_correction(
        data,
        base,
        supply,
        threshold_voltage,
        vdd_nominal,
        temperature_nominal,
        degrees.temperature_wordline,
        supply_mode=degrees.supply_mode,
    )
    mismatch = fit_mismatch_sigma(data, degrees)
    write_energy = fit_write_energy(data, degrees)
    discharge_energy = fit_discharge_energy(data, degrees)

    discharge_model = DischargeModel(
        base=base,
        supply=supply,
        temperature_coefficient=temperature,
        mismatch_sigma_model=mismatch,
        threshold_voltage=threshold_voltage,
        vdd_nominal=vdd_nominal,
        temperature_nominal=temperature_nominal,
        supply_mode=degrees.supply_mode,
    )

    report = FitReport(
        rms_base_discharge=rms_error(
            discharge_model.bitline_voltage(
                data.base.time, data.base.wordline_voltage
            ),
            data.base.bitline_voltage,
        ),
        rms_supply=rms_error(
            discharge_model.bitline_voltage(
                data.supply.time, data.supply.wordline_voltage, vdd=data.supply.vdd
            ),
            data.supply.bitline_voltage,
        ),
        rms_temperature=rms_error(
            discharge_model.bitline_voltage(
                data.temperature.time,
                data.temperature.wordline_voltage,
                temperature=data.temperature.temperature,
            ),
            data.temperature.bitline_voltage,
        ),
        rms_mismatch_sigma=rms_error(
            discharge_model.mismatch_sigma(
                data.mismatch.time, data.mismatch.wordline_voltage
            ),
            data.mismatch.sigma,
        ),
        rms_write_energy=rms_error(
            write_energy.energy(data.write_energy.vdd, data.write_energy.temperature),
            data.write_energy.energy,
        ),
        rms_discharge_energy=rms_error(
            discharge_energy.energy(
                data.discharge_energy.delta_v_bl,
                data.discharge_energy.vdd,
                data.discharge_energy.temperature,
            ),
            data.discharge_energy.energy,
        ),
    )

    return FittedModels(
        discharge=discharge_model,
        write_energy=write_energy,
        discharge_energy=discharge_energy,
        report=report,
    )
