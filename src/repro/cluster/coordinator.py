"""The cluster coordinator: shard content-hashed jobs across workers.

:class:`Coordinator` is the asyncio server at the heart of the distributed
executor.  Long-lived :class:`~repro.cluster.worker.Worker` processes
connect to it over the shared NDJSON framing (:mod:`repro.wire`), register
with a ``hello`` (checked for protocol *and* code version — a worker running
different code must never compute shards) and then receive chunks of pickled
:class:`~repro.runtime.jobs.Job` units.

Scheduling model (the ARTIQ-style long-lived-worker pattern, adapted to
sweeps):

* every :meth:`run` shards its job list into contiguous chunks, which are
  dealt round-robin into per-worker queues;
* each worker holds at most ``slots`` chunks in flight; the scheduler tops
  it up from its own queue first and otherwise **steals half of the longest
  queue** in the cluster, so a fast (or late-joining) worker drains the
  backlog of a slow one;
* a worker that dies — its connection drops or its heartbeat goes silent —
  has its queued *and* in-flight chunks reassigned to the survivors, with a
  bounded retry count so a chunk that kills every worker cannot loop
  forever;
* results are merged **by global job index**, so whatever the dispatch
  schedule, chunk sizing or steal pattern, the returned list is bit-identical
  to a serial run (the same guarantee every in-process executor gives);
* a run whose ``cancel_event`` fires is **revoked**: queued chunks are
  purged, workers holding in-flight chunks receive ``cancel`` events and
  stop at their next job boundary, and the run fails with
  :class:`~repro.runtime.SweepCancelled` at the submitting call site.

A job that *raises* on a worker is a run failure, not a worker failure: the
original exception travels back pickled and re-raises at the submitting
call site, exactly as under the serial executor.

The coordinator never sees the artifact cache: :class:`repro.runtime.SweepEngine`
resolves cache hits *before* handing jobs to any executor, so warm shards
never leave the host and only genuine misses cross the wire.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro import wire
from repro.cluster import protocol
from repro.runtime.executors import CancelEvent, ProgressCallback, SweepCancelled
from repro.runtime.jobs import Job, code_version


class ClusterError(RuntimeError):
    """The cluster could not complete a sweep (no workers, retries spent)."""


@dataclasses.dataclass
class WorkerInfo:
    """Snapshot of one registered worker, as reported by ``status``."""

    id: str
    name: str
    pid: int
    slots: int
    alive: bool
    connected_at: float
    last_seen: float
    queued_chunks: int
    inflight_chunks: int
    chunks_done: int
    jobs_done: int

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class _Run:
    """One :meth:`Coordinator.run` call: results, progress, completion."""

    _ids = itertools.count(1)

    def __init__(self, jobs: Sequence[Job], progress: Optional[ProgressCallback]):
        self.id = f"run-{next(self._ids)}"
        self.total = len(jobs)
        self.results: List[Any] = [None] * len(jobs)
        self.remaining = len(jobs)
        self.progress = progress
        self.future: "asyncio.Future[List[Any]]" = asyncio.get_running_loop().create_future()

    @property
    def done(self) -> bool:
        return self.future.done()

    def fail(self, error: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(error)

    def complete_chunk(self, chunk: "_Chunk", results: List[Any], label: str) -> None:
        if self.done:
            return
        for index, value in zip(chunk.indices, results):
            self.results[index] = value
        self.remaining -= len(chunk.indices)
        if self.progress is not None:
            self.progress(self.total - self.remaining, self.total, label)
        if self.remaining == 0:
            self.future.set_result(self.results)


class _Chunk:
    """A contiguous slice of one run's jobs, dispatched as a unit."""

    def __init__(self, run: _Run, chunk_id: str, jobs: List[Job], indices: List[int]):
        self.run = run
        self.id = chunk_id
        self.jobs = jobs
        self.indices = indices
        self.attempts = 0


class _WorkerLink:
    """Coordinator-side state of one connected worker."""

    def __init__(
        self,
        worker_id: str,
        name: str,
        pid: int,
        slots: int,
        writer: asyncio.StreamWriter,
    ):
        self.id = worker_id
        self.name = name
        self.pid = pid
        self.slots = max(1, slots)
        self.writer = writer
        self.alive = True
        self.connected_at = time.time()
        self.last_seen = time.time()
        self.queue: Deque[_Chunk] = deque()
        self.inflight: Dict[str, _Chunk] = {}
        self.chunks_done = 0
        self.jobs_done = 0
        self._send_lock = asyncio.Lock()

    async def send(self, message: Dict[str, Any]) -> bool:
        """Write one message; ``False`` once the peer is gone."""
        return await self.send_bytes(wire.encode_message(message))

    async def send_bytes(self, data: bytes) -> bool:
        """Write one pre-encoded frame; ``False`` once the peer is gone."""
        if not self.alive:
            return False
        async with self._send_lock:
            if not self.alive:
                return False
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                return False
        return True

    def info(self) -> WorkerInfo:
        return WorkerInfo(
            id=self.id,
            name=self.name,
            pid=self.pid,
            slots=self.slots,
            alive=self.alive,
            connected_at=self.connected_at,
            last_seen=self.last_seen,
            queued_chunks=len(self.queue),
            inflight_chunks=len(self.inflight),
            chunks_done=self.chunks_done,
            jobs_done=self.jobs_done,
        )


class Coordinator:
    """Shard sweeps across long-lived worker processes over TCP.

    Parameters
    ----------
    host, port:
        Bind address of the cluster endpoint; ``port=0`` picks a free port
        (see :attr:`address` after :meth:`start`).  Workers *and* control
        clients (``python -m repro cluster status``) connect here.
    heartbeat_interval:
        Interval workers are told to beacon at.
    heartbeat_timeout:
        Silence threshold after which a worker is declared dead and its
        chunks are reassigned.
    max_chunk_retries:
        How many times one chunk may be reassigned after worker deaths
        before the run fails (guards against a poison chunk that crashes
        every worker it lands on).
    worker_wait_timeout:
        How long dispatched work may sit orphaned with *no* connected
        worker before the owning runs fail (covers workers that never
        start, e.g. a typo'd ``--connect`` address).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        max_chunk_retries: int = 3,
        worker_wait_timeout: float = 30.0,
    ):
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        self._host = host
        self._port = port
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_chunk_retries = max_chunk_retries
        self.worker_wait_timeout = worker_wait_timeout
        self._links: Dict[str, _WorkerLink] = {}
        self._orphans: Deque[_Chunk] = deque()
        self._orphaned_since: Optional[float] = None
        self._runs: Dict[str, _Run] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List["asyncio.Task"] = []
        self._kick = asyncio.Event()
        self._worker_ids = itertools.count(1)
        self._chunk_ids = itertools.count(1)
        self._code_version = code_version()
        self._stopping = False
        self.stats: Dict[str, int] = {
            "runs": 0,
            "runs_cancelled": 0,
            "chunks_dispatched": 0,
            "chunks_completed": 0,
            "chunks_stolen": 0,
            "chunks_retried": 0,
            "chunks_cancelled": 0,
            "jobs_done": 0,
            "workers_lost": 0,
            "duplicate_results": 0,
            "scheduler_errors": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound; valid after :meth:`start`."""
        return self._host, self._port

    async def start(self) -> Tuple[str, int]:
        """Bind the cluster endpoint; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=wire.MAX_MESSAGE_BYTES,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._tasks.append(asyncio.ensure_future(self._scheduler_loop()))
        self._tasks.append(asyncio.ensure_future(self._reaper_loop()))
        return self.address

    async def stop(self) -> None:
        """Shut down: tell workers to exit, fail pending runs, close up."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._links.values()):
            if link.alive:
                await link.send(protocol.shutdown_event())
                link.alive = False
                try:
                    link.writer.close()
                except (ConnectionError, OSError):
                    pass
        for run in list(self._runs.values()):
            run.fail(ClusterError("coordinator stopped"))
        self._runs.clear()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    # ------------------------------------------------------------------
    # Submitting work
    # ------------------------------------------------------------------
    def worker_count(self) -> int:
        """Number of currently alive, registered workers."""
        return sum(1 for link in self._links.values() if link.alive)

    def total_slots(self) -> int:
        """Aggregate chunk slots across alive workers."""
        return sum(link.slots for link in self._links.values() if link.alive)

    async def run(
        self,
        jobs: Sequence[Job],
        chunksize: int,
        progress: Optional[ProgressCallback] = None,
        cancel_event: Optional[CancelEvent] = None,
    ) -> List[Any]:
        """Execute ``jobs`` across the cluster; results in submission order.

        ``progress`` fires on the coordinator's event loop as chunks
        complete, reporting ``(jobs done, jobs total, last job label)`` —
        callers bridging to other threads must pass a thread-safe callback
        (the distributed executor and the service broadcaster both do).

        ``cancel_event`` (a :class:`threading.Event`, settable from any
        thread) enables cooperative cancellation: a watcher polls it and,
        once set, revokes the run's queued chunks, tells workers to drop
        its in-flight ones (``cancel`` events) and fails the run with
        :class:`~repro.runtime.SweepCancelled`.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        chunksize = max(1, int(chunksize))
        run = _Run(jobs, progress)
        self._runs[run.id] = run
        self.stats["runs"] += 1
        chunks = [
            _Chunk(
                run,
                f"{run.id}/c{next(self._chunk_ids)}",
                jobs[start : start + chunksize],
                list(range(start, min(start + chunksize, len(jobs)))),
            )
            for start in range(0, len(jobs), chunksize)
        ]
        self._distribute(chunks)
        self._kick.set()
        watcher: Optional["asyncio.Task"] = None
        if cancel_event is not None:
            watcher = asyncio.ensure_future(self._watch_cancel(run, cancel_event))
        try:
            return await run.future
        finally:
            if watcher is not None:
                watcher.cancel()
                await asyncio.gather(watcher, return_exceptions=True)
            self._runs.pop(run.id, None)
            self._drop_run_chunks(run)

    async def _watch_cancel(self, run: _Run, cancel_event: CancelEvent) -> None:
        """Poll ``cancel_event``; revoke the run's work once it fires."""
        while not run.done:
            if cancel_event.is_set():
                await self.cancel_run(run)
                return
            await asyncio.sleep(min(0.05, self.heartbeat_interval))

    async def cancel_run(self, run: _Run) -> None:
        """Abort one run: revoke queued chunks, drop in-flight ones.

        Queued chunks (per-worker backlogs and the orphan pool) are purged;
        every worker holding an in-flight chunk of this run receives a
        ``cancel`` event and stops at its next job boundary.  The run's
        future fails with :class:`~repro.runtime.SweepCancelled`, which
        propagates to the submitting call site.
        """
        if run.done:
            return
        self.stats["runs_cancelled"] += 1
        self._drop_run_chunks(run)
        for link in self._alive_links():
            doomed = [
                chunk_id
                for chunk_id, chunk in link.inflight.items()
                if chunk.run is run
            ]
            for chunk_id in doomed:
                link.inflight.pop(chunk_id, None)
                self.stats["chunks_cancelled"] += 1
                await link.send(protocol.cancel_event(chunk_id))
        run.fail(SweepCancelled(f"run {run.id} cancelled"))
        self._kick.set()

    # ------------------------------------------------------------------
    # Scheduling: per-worker queues + work stealing
    # ------------------------------------------------------------------
    def _alive_links(self) -> List[_WorkerLink]:
        return [link for link in self._links.values() if link.alive]

    def _distribute(self, chunks: Sequence[_Chunk]) -> None:
        """Deal chunks round-robin into the shortest worker queues."""
        links = self._alive_links()
        if not links:
            self._orphans.extend(chunks)
            if self._orphans and self._orphaned_since is None:
                self._orphaned_since = time.time()
            return
        for chunk in chunks:
            target = min(links, key=lambda link: len(link.queue) + len(link.inflight))
            target.queue.append(chunk)

    def _steal_for(self, thief: _WorkerLink) -> Optional[_Chunk]:
        """Steal half the longest queue in the cluster for an idle worker."""
        if self._orphans:
            self._orphaned_since = None
            return self._orphans.popleft()
        victim = max(
            (link for link in self._alive_links() if link is not thief and link.queue),
            key=lambda link: len(link.queue),
            default=None,
        )
        if victim is None:
            return None
        # Move the *tail* half of the victim's backlog: the victim keeps the
        # chunks it would reach next, the thief takes the far end.
        take = max(1, len(victim.queue) // 2)
        stolen = [victim.queue.pop() for _ in range(take)]
        self.stats["chunks_stolen"] += len(stolen)
        first, rest = stolen[0], stolen[1:]
        thief.queue.extend(reversed(rest))
        return first

    def _next_chunk(self, link: _WorkerLink) -> Optional[_Chunk]:
        while True:
            if link.queue:
                chunk = link.queue.popleft()
            else:
                chunk = self._steal_for(link)
            if chunk is None:
                return None
            if chunk.run.done:
                continue  # run already failed/finished; drop silently
            return chunk

    async def _pump(self, link: _WorkerLink) -> None:
        """Top the worker up to its slot count with dispatchable chunks."""
        while link.alive and len(link.inflight) < link.slots:
            chunk = self._next_chunk(link)
            if chunk is None:
                return
            try:
                frame = wire.encode_message(protocol.chunk_event(chunk.id, chunk.jobs))
            except Exception as error:
                # Undispatchable chunk (unpicklable job, frame over the
                # limit): that is the *sweep's* failure, not the worker's —
                # fail the run and keep the scheduler alive.
                chunk.run.fail(
                    ClusterError(
                        f"cannot dispatch chunk {chunk.id}: {error} "
                        "(unpicklable job or chunk too large for one frame)"
                    )
                )
                continue
            link.inflight[chunk.id] = chunk
            self.stats["chunks_dispatched"] += 1
            if not await link.send_bytes(frame):
                self._on_worker_death(link)
                return

    async def _scheduler_loop(self) -> None:
        while True:
            await self._kick.wait()
            self._kick.clear()
            try:
                for link in self._alive_links():
                    await self._pump(link)
            except asyncio.CancelledError:
                raise
            except Exception:
                # A scheduling bug must degrade to a retry on the next kick,
                # never to a dead scheduler silently freezing every run.
                self.stats["scheduler_errors"] += 1
                self._kick.set()
                await asyncio.sleep(self.heartbeat_interval)

    async def _reaper_loop(self) -> None:
        """Declare silent workers dead; time out permanently orphaned work."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.time()
            for link in self._alive_links():
                if now - link.last_seen > self.heartbeat_timeout:
                    try:
                        link.writer.close()
                    except (ConnectionError, OSError):
                        pass
                    self._on_worker_death(link)
            if (
                self._orphans
                and not self._alive_links()
                and self._orphaned_since is not None
                and now - self._orphaned_since > self.worker_wait_timeout
            ):
                failed = {chunk.run for chunk in self._orphans}
                self._orphans.clear()
                self._orphaned_since = None
                for run in failed:
                    run.fail(
                        ClusterError(
                            "no workers joined within "
                            f"{self.worker_wait_timeout:.0f} s; sweep abandoned"
                        )
                    )

    def _on_worker_death(self, link: _WorkerLink) -> None:
        """Reassign a dead worker's queued and in-flight chunks."""
        if not link.alive:
            return
        link.alive = False
        self.stats["workers_lost"] += 1
        stranded = list(link.inflight.values()) + list(link.queue)
        link.inflight.clear()
        link.queue.clear()
        reassign: List[_Chunk] = []
        for chunk in stranded:
            if chunk.run.done:
                continue
            chunk.attempts += 1
            if chunk.attempts > self.max_chunk_retries:
                chunk.run.fail(
                    ClusterError(
                        f"chunk {chunk.id} lost {chunk.attempts} workers "
                        f"(retry limit {self.max_chunk_retries}); sweep abandoned"
                    )
                )
                continue
            self.stats["chunks_retried"] += 1
            reassign.append(chunk)
        if reassign:
            self._distribute(reassign)
        self._kick.set()

    def _drop_run_chunks(self, run: _Run) -> None:
        """Purge a finished/failed run's chunks from every queue."""
        self._orphans = deque(chunk for chunk in self._orphans if chunk.run is not run)
        if not self._orphans:
            self._orphaned_since = None
        for link in self._links.values():
            link.queue = deque(chunk for chunk in link.queue if chunk.run is not run)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        link: Optional[_WorkerLink] = None
        try:
            while True:
                try:
                    message = await wire.read_message(reader)
                except wire.ProtocolError as error:
                    await self._send_raw(writer, protocol.error_event(str(error)))
                    break
                except (ConnectionError, OSError):
                    break
                if message is None:
                    break
                op = message.get("op")
                if link is None and op == "hello":
                    link = await self._handle_hello(message, writer)
                    if link is None:
                        break
                elif op == "heartbeat":
                    if link is not None:
                        link.last_seen = time.time()
                elif op == "chunk_done" and link is not None:
                    link.last_seen = time.time()
                    self._handle_chunk_done(link, message)
                elif op == "chunk_failed" and link is not None:
                    link.last_seen = time.time()
                    self._handle_chunk_failed(link, message)
                elif op == "status":
                    await self._send_raw(writer, self.status_event(message.get("id")))
                elif op == "ping":
                    await self._send_raw(writer, {"event": "pong", "id": message.get("id")})
                else:
                    await self._send_raw(
                        writer, protocol.error_event(f"unexpected op {op!r}")
                    )
        finally:
            if link is not None:
                self._on_worker_death(link)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send_raw(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        try:
            writer.write(wire.encode_message(message))
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass

    async def _handle_hello(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> Optional[_WorkerLink]:
        if message.get("protocol") != protocol.CLUSTER_PROTOCOL_VERSION:
            await self._send_raw(
                writer,
                protocol.error_event(
                    f"cluster protocol mismatch: coordinator speaks "
                    f"{protocol.CLUSTER_PROTOCOL_VERSION}, worker {message.get('protocol')!r}"
                ),
            )
            return None
        worker_version = message.get("code_version")
        if worker_version != self._code_version:
            # Mixed-version clusters would silently break bit-identical
            # results (and the content-addressed cache keys): refuse.
            await self._send_raw(
                writer,
                protocol.error_event(
                    f"code version mismatch: coordinator {self._code_version}, "
                    f"worker {worker_version}"
                ),
            )
            return None
        worker_id = f"w{next(self._worker_ids)}"
        link = _WorkerLink(
            worker_id,
            name=str(message.get("name", worker_id)),
            pid=int(message.get("pid", 0)),
            slots=int(message.get("slots", 1)),
            writer=writer,
        )
        self._links[worker_id] = link
        await link.send(protocol.welcome_event(worker_id, self.heartbeat_interval))
        self._kick.set()  # a fresh worker immediately steals backlog
        return link

    def _handle_chunk_done(self, link: _WorkerLink, message: Dict[str, Any]) -> None:
        chunk = link.inflight.pop(str(message.get("chunk")), None)
        if chunk is None:
            # Completion for a chunk this worker no longer owns (it was
            # presumed dead and the chunk reassigned).  Results are
            # deterministic, so dropping the duplicate is safe.
            self.stats["duplicate_results"] += 1
            return
        try:
            results = protocol.unpack_results(str(message.get("results", "")))
        except Exception as error:
            chunk.run.fail(ClusterError(f"undecodable results for {chunk.id}: {error}"))
            return
        if len(results) != len(chunk.jobs):
            chunk.run.fail(
                ClusterError(
                    f"chunk {chunk.id} returned {len(results)} results "
                    f"for {len(chunk.jobs)} jobs"
                )
            )
            return
        link.chunks_done += 1
        link.jobs_done += len(results)
        self.stats["chunks_completed"] += 1
        self.stats["jobs_done"] += len(results)
        chunk.run.complete_chunk(chunk, results, chunk.jobs[-1].name)
        self._kick.set()

    def _handle_chunk_failed(self, link: _WorkerLink, message: Dict[str, Any]) -> None:
        chunk = link.inflight.pop(str(message.get("chunk")), None)
        if chunk is None:
            self.stats["duplicate_results"] += 1
            return
        error = protocol.unpack_exception(
            message.get("exception"), str(message.get("error", "job failed on worker"))
        )
        chunk.run.fail(error)
        self._kick.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status_event(self, request_id: Any = None) -> Dict[str, Any]:
        """The ``status`` reply document (also used by ``cluster status``)."""
        import repro

        return {
            "event": "status",
            "id": request_id,
            "protocol": protocol.CLUSTER_PROTOCOL_VERSION,
            "version": repro.__version__,
            "code_version": self._code_version,
            "address": list(self.address),
            "workers": [link.info().to_dict() for link in self._links.values()],
            "alive_workers": self.worker_count(),
            "total_slots": self.total_slots(),
            "runs_in_flight": len(self._runs),
            "orphaned_chunks": len(self._orphans),
            "stats": dict(self.stats),
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
        }

    def describe(self) -> str:
        """Short human-readable summary."""
        host, port = self.address
        return (
            f"Coordinator[{host}:{port}] — {self.worker_count()} workers, "
            f"{self.stats['jobs_done']} jobs done, "
            f"{self.stats['chunks_stolen']} chunks stolen, "
            f"{self.stats['chunks_retried']} retried"
        )
