"""The cluster coordinator: shard content-hashed jobs across workers.

:class:`Coordinator` is the asyncio server at the heart of the distributed
executor.  Long-lived :class:`~repro.cluster.worker.Worker` processes
connect to it over the shared NDJSON framing (:mod:`repro.wire`), register
with a ``hello`` (checked for protocol *and* code version — a worker running
different code must never compute shards) and then receive chunks of pickled
:class:`~repro.runtime.jobs.Job` units.

Scheduling model (the ARTIQ-style long-lived-worker pattern, adapted to
sweeps; the full design rationale lives in ``docs/scheduling.md``):

* every :meth:`run` splits its job list into contiguous **spans** of
  undispatched work, dealt into per-worker queues; chunks are cut from a
  span's front only *at dispatch time*, which is what lets the adaptive
  policy size them per worker;
* with a ``chunk_window`` configured, each worker's next chunk is sized to
  ``EWMA throughput x window`` (:mod:`repro.telemetry`) — a fast worker
  gets big chunks, a slow one small chunks, and both come back for more on
  the same wall-time cadence.  Without a window, chunks are the static
  ``chunksize`` the run was submitted with (the pre-v3 behaviour);
* each worker holds at most ``slots`` chunks in flight; the scheduler tops
  it up from its own queue first and otherwise **steals half of the
  longest backlog** (by job count) in the cluster, so a fast (or
  late-joining) worker drains the queue of a slow one;
* a **straggler** — a worker whose in-flight chunk has aged past the split
  threshold while other workers sit idle — is sent a ``split`` frame
  (protocol v3): it keeps the jobs it already started, acks the kept count
  (``split_ack``), and the coordinator reassigns the unstarted tail to the
  idle workers.  The straggler's eventual ``chunk_done`` is a
  partial-completion ack covering only the kept prefix;
* every run carries a :class:`repro.sched.SchedPolicy` (job class +
  integer priority, larger wins): backlogs are priority queues, dispatch
  is globally highest-priority-first, and when a higher-priority sweep
  arrives while every slot is busy the coordinator **preempts** — the
  lowest-priority in-flight chunks receive the same ``split``/``keep=0``
  frame as a straggler, their unstarted tails are requeued (``preempted``
  event), and the paused run is ``resumed`` once its spans dispatch
  again.  Preempted partial completions are telemetry-exempt, so a
  healthy worker is never mistaken for a straggler;
* a worker that dies — its connection drops or its heartbeat goes silent —
  has its queued *and* in-flight work reassigned to the survivors, with a
  bounded retry count so a chunk that kills every worker cannot loop
  forever;
* results are merged **by global job index**, so whatever the dispatch
  schedule, chunk sizing, split or steal history, the returned list is
  bit-identical to a serial run (the same guarantee every in-process
  executor gives);
* a run whose ``cancel_event`` fires is **revoked**: queued spans are
  purged, workers holding in-flight chunks receive ``cancel`` events and
  stop at their next job boundary, and the run fails with
  :class:`~repro.runtime.SweepCancelled` at the submitting call site.

A job that *raises* on a worker is a run failure, not a worker failure: the
original exception travels back pickled and re-raises at the submitting
call site, exactly as under the serial executor.

The coordinator never sees the artifact cache: :class:`repro.runtime.SweepEngine`
resolves cache hits *before* handing jobs to any executor, so warm shards
never leave the host and only genuine misses cross the wire.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import itertools
import time
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs, wire
from repro.cluster import protocol
from repro.runtime.executors import CancelEvent, ProgressCallback, SweepCancelled
from repro.runtime.jobs import Job, code_version
from repro.sched import JOB_CLASSES, PriorityQueue, SchedPolicy
from repro.telemetry import TelemetryBook, WorkerStats

#: Age multiplier before an in-flight chunk is split: a chunk sized to the
#: window that is still running after ``SPLIT_AGE_FACTOR x window`` seconds
#: while other workers idle marks its worker as a straggler.
SPLIT_AGE_FACTOR = 1.5

#: Help strings of the coordinator counters; each backs a registry metric
#: ``repro_cluster_<key>_total`` *and* the per-instance ``stats`` view the
#: ``status`` op reports (see :class:`repro.obs.CounterGroup`).
_STAT_HELP = {
    "runs": "Runs submitted to the coordinator.",
    "runs_cancelled": "Runs revoked by cooperative cancellation.",
    "chunks_dispatched": "Chunks sent to workers.",
    "chunks_completed": "Chunks completed by workers.",
    "chunks_stolen": "Spans moved by work stealing.",
    "chunks_retried": "Spans reassigned after a worker death.",
    "chunks_cancelled": "In-flight chunks revoked by run cancellation.",
    "chunks_split": "Granted straggler splits (tail reassigned).",
    "splits_requested": "Straggler split requests sent.",
    "chunks_refitted": "Chunks halved to fit the wire frame limit.",
    "jobs_done": "Jobs completed across all runs.",
    "workers_lost": "Workers declared dead.",
    "duplicate_results": "Duplicate chunk results discarded.",
    "scheduler_errors": "Scheduler/reaper iterations that raised.",
}

#: Help strings of the multi-tenant scheduler counters (:mod:`repro.sched`);
#: each backs a registry metric ``repro_sched_<key>_total`` *and* the
#: ``sched`` section of the ``status`` document.
_SCHED_STAT_HELP = {
    "preempt_requests": "Preemption requests (split keep=0) sent to workers.",
    "preemptions": "Granted preemptions: unstarted tails revoked and requeued.",
    "resumes": "Preempted runs whose spans were dispatched again.",
    "jobs_requeued": "Jobs handed back to the queues by preemption.",
}

_WORKERS_ALIVE = obs.gauge(
    "repro_cluster_workers_alive_total", "Registered workers currently alive."
)
_CHUNK_SECONDS = obs.histogram(
    "repro_cluster_chunk_seconds",
    "Dispatch-to-completion wall time of cluster chunks.",
)


def _consume_shm_payload(message: Dict[str, Any]) -> bytes:
    """Copy a shared-memory completion's payload out and free the segment.

    Attaches the worker-created segment named in the frame, verifies the
    declared SHA-256 digest over the declared ``size`` bytes, then closes
    *and unlinks* it — unlink-after-copy is the coordinator's half of the
    cleanup contract (the worker tolerates the resulting
    ``FileNotFoundError`` at its own teardown).  Any mismatch raises
    :class:`ClusterError` after the segment has still been released, so a
    corrupt handoff cannot leak /dev/shm space.
    """
    name = str(message.get("shm"))
    declared_digest = str(message.get("digest", ""))
    size = int(message.get("size", -1))
    if size < 0 or size > wire.MAX_BINARY_BYTES:
        raise ClusterError(f"shared-memory completion declares bad size {size}")
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError) as error:
        raise ClusterError(f"cannot attach shared memory {name!r}: {error}") from None
    try:
        if segment.size < size:
            raise ClusterError(
                f"shared memory {name!r} holds {segment.size} bytes, "
                f"{size} declared"
            )
        payload = bytes(segment.buf[:size])
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # repro: ignore[REPRO-ERR01] -- the worker already unlinked; nothing left to release
            pass
    if hashlib.sha256(payload).hexdigest() != declared_digest:
        raise ClusterError(f"shared memory {name!r} failed digest verification")
    return payload


def _decode_chunk_results(message: Dict[str, Any]) -> List[Any]:
    """Decode a ``chunk_done`` frame's results, whatever their transport.

    Protocol v5 binary completions carry ``arrays`` specs plus either an
    attached socket payload or a shared-memory reference; anything else is
    the legacy pickled ``results`` field.  Raises :class:`ClusterError` or
    :class:`repro.wire.ProtocolError` on any inconsistency.
    """
    if "arrays" in message:
        if "shm" in message:
            payload = _consume_shm_payload(message)
        else:
            payload = message.get(wire.PAYLOAD_KEY)
            if not isinstance(payload, (bytes, bytearray, memoryview)):
                raise ClusterError("binary completion without an attached payload")
        return list(wire.unpack_arrays(message["arrays"], bytes(payload)))
    return protocol.unpack_results(str(message.get("results", "")))


class ClusterError(RuntimeError):
    """The cluster could not complete a sweep (no workers, retries spent)."""


@dataclasses.dataclass
class WorkerInfo:
    """Snapshot of one registered worker, as reported by ``status``."""

    id: str
    name: str
    pid: int
    slots: int
    alive: bool
    connected_at: float
    last_seen: float
    #: Spans (re-chunkable job ranges) in this worker's queue.  Protocol
    #: v3 renamed the old ``queued_chunks`` field: queues no longer hold
    #: chunks, and a span count says nothing about backlog — read
    #: ``queued_jobs`` for load.
    queued_spans: int
    inflight_chunks: int
    chunks_done: int
    jobs_done: int
    #: Undispatched jobs waiting in this worker's queue — the load signal.
    queued_jobs: int = 0
    #: Jobs currently dispatched to the worker (in-flight chunks).
    inflight_jobs: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class _Run:
    """One :meth:`Coordinator.run` call: results, progress, completion."""

    _ids = itertools.count(1)

    def __init__(
        self,
        jobs: Sequence[Job],
        progress: Optional[ProgressCallback],
        chunksize: int,
        trace: Optional[str] = None,
        policy: Optional[SchedPolicy] = None,
    ):
        self.id = f"run-{next(self._ids)}"
        self.jobs: List[Job] = list(jobs)
        self.total = len(self.jobs)
        self.chunksize = max(1, int(chunksize))
        #: Observability id of the originating request; stamped on every
        #: chunk frame and event this run produces (``None`` = untraced).
        self.trace = trace
        #: Scheduling class + priority (:mod:`repro.sched`); the batch
        #: default keeps untagged runs exactly where FIFO put them.
        self.policy = policy if policy is not None else SchedPolicy()
        #: ``True`` between a granted preemption and the next dispatch of
        #: this run's work — the coordinator emits ``resumed`` (and counts
        #: the resume) when a paused run's chunk goes out again.
        self.paused = False
        self.results: List[Any] = [None] * self.total
        self.remaining = self.total
        self.progress = progress
        #: Frame-limit cap on this run's chunk sizes, learned when a cut
        #: has to be refitted (halved).  Per-run: the limit is a property
        #: of this run's job payload size, so one fat-job sweep must not
        #: cap a later tiny-job sweep on the same coordinator.
        self.max_chunk_jobs: Optional[int] = None
        self.future: "asyncio.Future[List[Any]]" = asyncio.get_running_loop().create_future()

    @property
    def done(self) -> bool:
        return self.future.done()

    def fail(self, error: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(error)

    def complete_chunk(self, chunk: "_Chunk", results: List[Any]) -> None:
        if self.done:
            return
        for index, value in zip(chunk.indices, results):
            self.results[index] = value
        self.remaining -= len(results)
        if results and self.progress is not None:
            # Label by index, not chunk.jobs[-1]: the property would copy
            # the whole (possibly huge, window-sized) job slice per tick.
            self.progress(
                self.total - self.remaining, self.total, self.jobs[chunk.stop - 1].name
            )
        if self.remaining == 0:
            self.future.set_result(self.results)


class _Span:
    """A contiguous, undispatched slice ``[start, stop)`` of one run's jobs.

    Queues hold spans, not chunks: the chunk a worker actually receives is
    cut from a span's front at dispatch time, sized by the scheduling
    policy in force at that moment.
    """

    __slots__ = ("run", "start", "stop", "attempts")

    def __init__(self, run: _Run, start: int, stop: int, attempts: int = 0):
        self.run = run
        self.start = start
        self.stop = stop
        self.attempts = attempts

    def __len__(self) -> int:
        return self.stop - self.start


def _span_priority(span: _Span) -> int:
    """Priority key the span queues order by (the owning run's policy)."""
    return span.run.policy.priority


class _Chunk:
    """A dispatched slice of one run's jobs, in flight on one worker."""

    __slots__ = (
        "run",
        "id",
        "start",
        "stop",
        "attempts",
        "dispatched_at",
        "split_requested",
        "preempt_requested",
        "busy_marker",
    )

    def __init__(self, run: _Run, chunk_id: str, start: int, stop: int, attempts: int):
        self.run = run
        self.id = chunk_id
        self.start = start
        self.stop = stop
        self.attempts = attempts
        self.dispatched_at = 0.0
        self.split_requested = False
        # A preemption is a split with different bookkeeping: the flag
        # routes the eventual split_ack to the sched counters and keeps
        # the partial chunk_done out of the straggler telemetry.
        self.preempt_requested = False
        # Busy-integral marker taken at dispatch; the settle-time delta
        # over wall time is this chunk's mean worker occupancy (how many
        # chunks ran concurrently), which de-biases EWMA throughput on
        # multi-slot workers.
        self.busy_marker = 0.0

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def jobs(self) -> List[Job]:
        return self.run.jobs[self.start : self.stop]

    @property
    def indices(self) -> range:
        return range(self.start, self.stop)

    def to_span(self) -> _Span:
        return _Span(self.run, self.start, self.stop, self.attempts)


class _WorkerLink:
    """Coordinator-side state of one connected worker."""

    def __init__(
        self,
        worker_id: str,
        name: str,
        pid: int,
        slots: int,
        writer: asyncio.StreamWriter,
    ):
        self.id = worker_id
        self.name = name
        self.pid = pid
        self.slots = max(1, slots)
        self.writer = writer
        self.alive = True
        self.connected_at = time.time()
        self.last_seen = time.time()
        self.queue: PriorityQueue = PriorityQueue(key=_span_priority)
        self.inflight: Dict[str, _Chunk] = {}
        self.chunks_done = 0
        self.jobs_done = 0
        self._send_lock = asyncio.Lock()

    def queued_jobs(self) -> int:
        return sum(len(span) for span in self.queue)

    def inflight_jobs(self) -> int:
        return sum(len(chunk) for chunk in self.inflight.values())

    def load(self) -> int:
        """Jobs this worker is responsible for (queued + in flight)."""
        return self.queued_jobs() + self.inflight_jobs()

    async def send(self, message: Dict[str, Any]) -> bool:
        """Write one message; ``False`` once the peer is gone."""
        return await self.send_bytes(wire.encode_message(message))

    async def send_bytes(self, data: bytes) -> bool:
        """Write one pre-encoded frame; ``False`` once the peer is gone."""
        if not self.alive:
            return False
        async with self._send_lock:
            if not self.alive:
                return False
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                return False
        return True

    def info(self) -> WorkerInfo:
        return WorkerInfo(
            id=self.id,
            name=self.name,
            pid=self.pid,
            slots=self.slots,
            alive=self.alive,
            connected_at=self.connected_at,
            last_seen=self.last_seen,
            queued_spans=len(self.queue),
            inflight_chunks=len(self.inflight),
            chunks_done=self.chunks_done,
            jobs_done=self.jobs_done,
            queued_jobs=self.queued_jobs(),
            inflight_jobs=self.inflight_jobs(),
        )


class Coordinator:
    """Shard sweeps across long-lived worker processes over TCP.

    Parameters
    ----------
    host, port:
        Bind address of the cluster endpoint; ``port=0`` picks a free port
        (see :attr:`address` after :meth:`start`).  Workers *and* control
        clients (``python -m repro cluster status``) connect here.
    heartbeat_interval:
        Interval workers are told to beacon at.
    heartbeat_timeout:
        Silence threshold after which a worker is declared dead and its
        chunks are reassigned.
    max_chunk_retries:
        How many times one chunk may be reassigned after worker deaths
        before the run fails (guards against a poison chunk that crashes
        every worker it lands on).
    worker_wait_timeout:
        How long dispatched work may sit orphaned with *no* connected
        worker before the owning runs fail (covers workers that never
        start, e.g. a typo'd ``--connect`` address).
    chunk_window:
        Target wall-time per dispatched chunk, in seconds — enabling the
        **adaptive scheduler**: each worker's next chunk is sized to its
        measured EWMA throughput times this window, and in-flight chunks
        of detected stragglers are split so idle workers pick up the
        unstarted tail.  ``None`` (default) keeps static per-run
        chunksizes and disables splitting (pre-v3 behaviour).  See
        ``docs/scheduling.md`` for tuning guidance.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        max_chunk_retries: int = 3,
        worker_wait_timeout: float = 30.0,
        chunk_window: Optional[float] = None,
    ):
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if chunk_window is not None and chunk_window <= 0:
            raise ValueError("chunk_window must be positive (or None for static chunks)")
        self._host = host
        self._port = port
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_chunk_retries = max_chunk_retries
        self.worker_wait_timeout = worker_wait_timeout
        self.chunk_window = chunk_window
        self.telemetry = TelemetryBook()
        self._links: Dict[str, _WorkerLink] = {}
        self._orphans: PriorityQueue = PriorityQueue(key=_span_priority)
        self._orphaned_since: Optional[float] = None
        self._runs: Dict[str, _Run] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List["asyncio.Task"] = []
        self._kick = asyncio.Event()
        self._worker_ids = itertools.count(1)
        self._chunk_ids = itertools.count(1)
        self._code_version = code_version()
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._watch_tasks: "set[asyncio.Task]" = set()
        # Per-instance view over process-wide registry counters: ``status``
        # reports this coordinator's own counts (zero at birth) while the
        # Prometheus endpoint scrapes the process-lifetime totals.
        self.stats = obs.CounterGroup(
            {
                key: obs.counter(f"repro_cluster_{key}_total", help_text)
                for key, help_text in _STAT_HELP.items()
            }
        )
        # Preemption counters live in their own group so the ``status``
        # document (and docs/scheduling.md) can present the multi-tenant
        # scheduler as one coherent section.
        self.sched_stats = obs.CounterGroup(
            {
                key: obs.counter(f"repro_sched_{key}_total", help_text)
                for key, help_text in _SCHED_STAT_HELP.items()
            }
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound; valid after :meth:`start`."""
        return self._host, self._port

    async def start(self) -> Tuple[str, int]:
        """Bind the cluster endpoint; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=wire.MAX_MESSAGE_BYTES,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._tasks.append(asyncio.ensure_future(self._scheduler_loop()))
        self._tasks.append(asyncio.ensure_future(self._reaper_loop()))
        return self.address

    async def stop(self) -> None:
        """Shut down: tell workers to exit, fail pending runs, close up."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._links.values()):
            if link.alive:
                await link.send(protocol.shutdown_event())
                link.alive = False
                try:
                    link.writer.close()
                except (ConnectionError, OSError):
                    pass
        for run in list(self._runs.values()):
            run.fail(ClusterError("coordinator stopped"))
        self._runs.clear()
        # Watch streams never end on their own; cancel them before the
        # regular background tasks so shutdown cannot block on a watcher.
        for task in list(self._watch_tasks):
            task.cancel()
        await asyncio.gather(*self._watch_tasks, return_exceptions=True)
        self._watch_tasks.clear()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    # ------------------------------------------------------------------
    # Submitting work
    # ------------------------------------------------------------------
    def worker_count(self) -> int:
        """Number of currently alive, registered workers."""
        return sum(1 for link in self._links.values() if link.alive)

    def total_slots(self) -> int:
        """Aggregate chunk slots across alive workers."""
        return sum(link.slots for link in self._links.values() if link.alive)

    async def run(
        self,
        jobs: Sequence[Job],
        chunksize: int,
        progress: Optional[ProgressCallback] = None,
        cancel_event: Optional[CancelEvent] = None,
        trace: Optional[str] = None,
        sched: Optional[Any] = None,
    ) -> List[Any]:
        """Execute ``jobs`` across the cluster; results in submission order.

        ``chunksize`` is the static chunk size — and, under an adaptive
        ``chunk_window``, the probe size used for a worker whose
        throughput has not been measured yet.

        ``progress`` fires on the coordinator's event loop as chunks
        complete, reporting ``(jobs done, jobs total, last job label)`` —
        callers bridging to other threads must pass a thread-safe callback
        (the distributed executor and the service broadcaster both do).

        ``cancel_event`` (a :class:`threading.Event`, settable from any
        thread) enables cooperative cancellation: a watcher polls it and,
        once set, revokes the run's queued spans, tells workers to drop
        its in-flight chunks (``cancel`` events) and fails the run with
        :class:`~repro.runtime.SweepCancelled`.

        ``trace`` is the originating request's observability id; it rides
        every chunk frame of this run (protocol v3, optional field) and is
        echoed back on ``chunk_done``, so metrics and ``watch`` events stay
        attributable end to end.

        ``sched`` is anything :meth:`repro.sched.SchedPolicy.parse`
        accepts (``None`` = the batch default).  A run with a higher
        priority than queued or in-flight work dispatches first and may
        preempt: busy workers are asked to hand back the unstarted tails
        of their lower-priority chunks (``split`` with ``keep=0``), which
        requeue behind the urgent work and resume afterwards —
        bit-identity is untouched because results merge by job index.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        run = _Run(jobs, progress, chunksize, trace=trace, policy=SchedPolicy.parse(sched))
        self._runs[run.id] = run
        self.stats.inc("runs")
        self._distribute(self._initial_spans(run))
        self._kick.set()
        watcher: Optional["asyncio.Task"] = None
        if cancel_event is not None:
            watcher = asyncio.ensure_future(self._watch_cancel(run, cancel_event))
        try:
            return await run.future
        finally:
            if watcher is not None:
                watcher.cancel()
                await asyncio.gather(watcher, return_exceptions=True)
            self._runs.pop(run.id, None)
            self._drop_run_chunks(run)

    def _initial_spans(self, run: _Run) -> List[_Span]:
        """Deal a fresh run as contiguous near-equal spans, one per worker.

        Contiguity matters: dispatch cuts chunks off a span's front, so a
        span is an arbitrarily re-chunkable reservoir, and the index-based
        merge keeps the result order independent of how it was carved up.
        """
        parts = max(1, min(self.worker_count(), run.total))
        spans: List[_Span] = []
        base, extra = divmod(run.total, parts)
        start = 0
        for index in range(parts):
            size = base + (1 if index < extra else 0)
            if size:
                spans.append(_Span(run, start, start + size))
                start += size
        return spans

    async def _watch_cancel(self, run: _Run, cancel_event: CancelEvent) -> None:
        """Poll ``cancel_event``; revoke the run's work once it fires."""
        while not run.done:
            if cancel_event.is_set():
                await self.cancel_run(run)
                return
            await asyncio.sleep(min(0.05, self.heartbeat_interval))

    async def cancel_run(self, run: _Run) -> None:
        """Abort one run: revoke queued spans, drop in-flight chunks.

        Queued spans (per-worker backlogs and the orphan pool) are purged;
        every worker holding an in-flight chunk of this run receives a
        ``cancel`` event and stops at its next job boundary.  The run's
        future fails with :class:`~repro.runtime.SweepCancelled`, which
        propagates to the submitting call site.
        """
        if run.done:
            return
        self.stats.inc("runs_cancelled")
        self._drop_run_chunks(run)
        for link in self._alive_links():
            doomed = [
                chunk_id
                for chunk_id, chunk in link.inflight.items()
                if chunk.run is run
            ]
            for chunk_id in doomed:
                link.inflight.pop(chunk_id, None)
                # Settle the occupancy bracket opened at dispatch; the
                # revoked chunk contributes no throughput sample.
                self.telemetry.chunk_settled(link.id, time.monotonic())
                self.stats.inc("chunks_cancelled")
                await link.send(protocol.cancel_event(chunk_id))
        run.fail(SweepCancelled(f"run {run.id} cancelled"))
        self._kick.set()

    # ------------------------------------------------------------------
    # Scheduling: per-worker span queues + work stealing + adaptive cuts
    # ------------------------------------------------------------------
    def _alive_links(self) -> List[_WorkerLink]:
        return [link for link in self._links.values() if link.alive]

    def _distribute(
        self, spans: Sequence[_Span], exclude: Optional[_WorkerLink] = None
    ) -> None:
        """Deal spans onto the least-loaded workers (by job count).

        ``exclude`` (when other workers exist) keeps a span away from one
        worker — a split's reclaimed tail must not land straight back on
        the straggler that just handed it over, whose zero-length head
        chunk would otherwise tie for least-loaded.
        """
        links = self._alive_links()
        if exclude is not None and len(links) > 1:
            links = [link for link in links if link is not exclude]
        if not links:
            self._orphans.extend(span for span in spans if len(span))
            if self._orphans and self._orphaned_since is None:
                self._orphaned_since = time.time()
            return
        for span in spans:
            if not len(span):
                continue
            target = min(links, key=_WorkerLink.load)
            target.queue.append(span)

    def _waiting_priority(self) -> Optional[int]:
        """Highest priority queued anywhere (orphan pool + every backlog)."""
        priorities = [self._orphans.highest_priority()]
        priorities.extend(link.queue.highest_priority() for link in self._alive_links())
        present = [p for p in priorities if p is not None]
        return max(present, default=None)

    def _steal_for(self, thief: _WorkerLink) -> Optional[_Span]:
        """Steal waiting work for an idle-slot worker, most urgent first.

        The orphan pool wins when nothing queued on a peer outranks it.
        Otherwise the victim is the most-loaded peer whose backlog holds
        the highest waiting priority, and the thief takes half that
        priority bucket's jobs off its tail: with every span at one
        priority this is exactly the classic half-backlog steal (the
        victim keeps the jobs it would reach next), and with mixed
        priorities the thief walks away with the *urgent* half — theft
        can never dispatch low-priority work past a queued high-priority
        span.
        """
        candidates = [
            link for link in self._alive_links() if link is not thief and link.queue
        ]
        peer_top = max(
            (link.queue.highest_priority() for link in candidates), default=None
        )
        orphan_top = self._orphans.highest_priority()
        if orphan_top is not None and (peer_top is None or orphan_top >= peer_top):
            span = self._orphans.popleft()
            if not self._orphans:
                # Only a fully drained pool disarms the abandonment clock:
                # spans still waiting keep their original deadline, so a
                # partial steal can never let a still-orphaned run evade
                # worker_wait_timeout.
                self._orphaned_since = None
            return span
        if peer_top is None:
            return None
        victim = max(
            (link for link in candidates if link.queue.highest_priority() == peer_top),
            key=_WorkerLink.queued_jobs,
        )
        # Spans split at job granularity, so the half is exact even when
        # the bucket is one big span.
        bucket_jobs = sum(
            len(span) for span in victim.queue if _span_priority(span) == peer_top
        )
        target = max(1, bucket_jobs // 2)
        taken: List[_Span] = []
        got = 0
        while got < target:
            try:
                span = victim.queue.pop_tail(peer_top)
            except IndexError:
                break
            need = target - got
            if len(span) > need:
                tail = _Span(span.run, span.stop - need, span.stop, span.attempts)
                span.stop -= need
                victim.queue.append(span)
                taken.append(tail)
                got += need
            else:
                taken.append(span)
                got += len(span)
        if not taken:
            return None
        self.stats.inc("chunks_stolen", len(taken))
        obs.EVENTS.emit(
            "chunk_stolen",
            trace=taken[0].run.trace,
            thief=thief.id,
            victim=victim.id,
            spans=len(taken),
            jobs=got,
        )
        first, rest = taken[0], taken[1:]
        thief.queue.extend(reversed(rest))
        return first

    def _refit_chunk(self, chunk: _Chunk) -> Tuple[_Span, _Span]:
        """Halve an over-limit chunk (either wire direction).

        The single place refit policy lives: learns the run's frame-size
        cap, counts the refit, and returns the two replacement spans —
        callers differ only in where they enqueue them.
        """
        middle = (chunk.start + chunk.stop) // 2
        half = max(1, len(chunk) // 2)
        run = chunk.run
        if run.max_chunk_jobs is None or half < run.max_chunk_jobs:
            run.max_chunk_jobs = half
        self.stats.inc("chunks_refitted")
        return (
            _Span(run, chunk.start, middle, chunk.attempts),
            _Span(run, middle, chunk.stop, chunk.attempts),
        )

    def _target_chunk_jobs(self, link: _WorkerLink, run: _Run) -> int:
        """Jobs the next chunk for ``link`` should carry.

        Static policy: the run's ``chunksize``.  Adaptive policy
        (``chunk_window`` set): the worker's measured EWMA throughput
        times the window — falling back to the run's chunksize as the
        probe size until the first completion measures the worker.
        """
        if self.chunk_window is None:
            return run.chunksize
        stats = self.telemetry.get(link.id)
        # Per-slot sizing: EWMA throughput measures the whole worker, but
        # a chunk occupies one slot — a 2-slot worker gets window-sized
        # chunks per slot, not double-window chunks.
        expected = (
            stats.expected_jobs(self.chunk_window, slots=link.slots)
            if stats is not None
            else None
        )
        if expected is None:
            return run.chunksize
        return expected

    def _next_chunk(self, link: _WorkerLink) -> Optional[_Chunk]:
        while True:
            top = self._waiting_priority()
            if top is None:
                return None
            if link.queue.highest_priority() == top:
                # The own backlog holds (one of) the globally most urgent
                # spans: locality wins, exactly the pre-sched behaviour.
                span = link.queue.popleft()
            else:
                # Own backlog empty or outranked: bring the most urgent
                # waiting work here instead (orphans, then priority-aware
                # steal), falling back to the outranked backlog only when
                # the urgent spans raced away to other workers.
                span = self._steal_for(link)
                if span is None and link.queue:
                    span = link.queue.popleft()
            if span is None:
                return None
            if span.run.done or not len(span):
                continue  # run already failed/finished; drop silently
            take = min(len(span), self._target_chunk_jobs(link, span.run))
            if span.run.max_chunk_jobs is not None:
                # Frame-limit cap learned from a previous refit: never
                # re-cut (and re-pay the over-limit encode for) a chunk
                # size that already failed to fit one frame.
                take = max(1, min(take, span.run.max_chunk_jobs))
            chunk = _Chunk(
                span.run,
                f"{span.run.id}/c{next(self._chunk_ids)}",
                span.start,
                span.start + take,
                span.attempts,
            )
            if take < len(span):
                span.start += take
                link.queue.appendleft(span)
            return chunk

    async def _pump(self, link: _WorkerLink) -> None:
        """Top the worker up to its slot count with dispatchable chunks."""
        while link.alive and len(link.inflight) < link.slots:
            chunk = self._next_chunk(link)
            if chunk is None:
                return
            try:
                frame = wire.encode_message(
                    protocol.chunk_event(chunk.id, chunk.jobs, trace=chunk.run.trace)
                )
            except Exception as error:
                if len(chunk) > 1:
                    # The chunk — not any single job — overflows the frame
                    # limit (the adaptive sizer can cut arbitrarily large
                    # chunks from a span; a static chunksize can be set too
                    # big for fat jobs).  Halve and requeue: O(log) retries
                    # converge on a dispatchable size or on single jobs.
                    head, tail = self._refit_chunk(chunk)
                    link.queue.appendleft(tail)
                    link.queue.appendleft(head)
                    continue
                # A single job that cannot be dispatched (unpicklable, or
                # alone over the frame limit): that is the *sweep's*
                # failure, not the worker's — fail the run and keep the
                # scheduler alive.
                chunk.run.fail(
                    ClusterError(
                        f"cannot dispatch chunk {chunk.id}: {error} "
                        "(unpicklable job or job too large for one frame)"
                    )
                )
                continue
            now = time.monotonic()
            chunk.dispatched_at = now
            # Open the occupancy bracket: the matching chunk_settled at
            # completion yields this chunk's mean concurrent-chunk count.
            chunk.busy_marker = self.telemetry.chunk_dispatched(link.id, now)
            link.inflight[chunk.id] = chunk
            self.stats.inc("chunks_dispatched")
            obs.EVENTS.emit(
                "chunk_dispatched",
                trace=chunk.run.trace,
                worker=link.id,
                chunk=chunk.id,
                jobs=len(chunk),
            )
            if chunk.run.paused:
                # First dispatch after a granted preemption: the paused
                # run is back on a worker.
                chunk.run.paused = False
                self.sched_stats.inc("resumes")
                obs.EVENTS.emit(
                    "resumed",
                    trace=chunk.run.trace,
                    worker=link.id,
                    chunk=chunk.id,
                    jobs=len(chunk),
                )
            if not await link.send_bytes(frame):
                self._on_worker_death(link)
                return

    async def _scheduler_loop(self) -> None:
        while True:
            await self._kick.wait()
            self._kick.clear()
            try:
                for link in self._alive_links():
                    await self._pump(link)
                await self._maybe_preempt()
                await self._maybe_split()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A scheduling bug must degrade to a retry on the next kick,
                # never to a dead scheduler silently freezing every run.
                self.stats.inc("scheduler_errors")
                self._kick.set()
                await asyncio.sleep(self.heartbeat_interval)

    async def _maybe_preempt(self) -> None:
        """Revoke low-priority in-flight tails when urgent work waits.

        Runs after every pump pass (any scheduling policy — unlike
        straggler splits, preemption needs no ``chunk_window``).  The
        trigger: a span outranking some in-flight chunk is queued while
        no slot in the cluster is free.  Each fully-busy worker is then
        asked to hand back the unstarted tail of its lowest-priority
        in-flight chunk (``split`` with ``keep=0``) — the same frame a
        straggler gets, but acked into the sched counters and exempted
        from straggler telemetry.  One request per chunk; declines (the
        chunk finished first) simply clear the mark.
        """
        links = self._alive_links()
        if not links:
            return
        top = self._waiting_priority()
        if top is None:
            return
        if any(len(link.inflight) < link.slots for link in links):
            # A free slot exists, so the urgent span is dispatchable the
            # regular way (the pump pass just ran): nothing to revoke.
            return
        for link in links:
            victims = [
                chunk
                for chunk in link.inflight.values()
                if not chunk.split_requested
                and not chunk.preempt_requested
                and not chunk.run.done
                and len(chunk) >= 2
                and chunk.run.policy.priority < top
            ]
            if not victims:
                continue
            victim = min(victims, key=lambda c: (c.run.policy.priority, -len(c)))
            if victim.id not in link.inflight:
                continue  # completed while an earlier send awaited
            victim.preempt_requested = True
            self.sched_stats.inc("preempt_requests")
            await link.send(protocol.split_event(victim.id, keep=0))

    async def _maybe_split(self) -> None:
        """Split aged in-flight chunks of stragglers while workers idle.

        Adaptive policy only (``chunk_window`` set).  The trigger is
        precise starvation: some worker is idle with nothing left to steal
        while another worker's in-flight chunk has aged past the split
        threshold — at that point the only parallelism left to win is
        inside that chunk, so the coordinator asks its worker to hand the
        unstarted tail back (``split`` with ``keep=0``).  One split
        request per chunk: once granted, the head holds only
        already-started jobs and re-splitting it could never free more.
        """
        if self.chunk_window is None:
            return
        links = self._alive_links()
        if len(links) < 2:
            return
        if not any(not link.inflight and not link.queue for link in links):
            return
        now = time.monotonic()
        for link in links:
            for chunk in list(link.inflight.values()):
                if (
                    chunk.split_requested
                    or chunk.preempt_requested
                    or len(chunk) < 2
                    or chunk.run.done
                ):
                    continue
                if now - chunk.dispatched_at < self._split_threshold(link, chunk):
                    continue
                if chunk.id not in link.inflight:
                    # Completed (or was reassigned) while an earlier send
                    # in this sweep awaited: a split now would be a dead
                    # frame and would skew splits_requested.
                    continue
                chunk.split_requested = True
                self.stats.inc("splits_requested")
                await link.send(protocol.split_event(chunk.id, keep=0))

    def _split_threshold(self, link: _WorkerLink, chunk: _Chunk) -> float:
        """Age after which an in-flight chunk counts as straggling.

        A chunk sized to the window should complete in about one window;
        ``SPLIT_AGE_FACTOR`` windows of patience absorbs estimation noise.
        When telemetry already predicts a longer runtime (a probe chunk on
        a slow worker), half the predicted time is allowed before
        splitting — enough signal to act on, early enough to matter.
        """
        assert self.chunk_window is not None
        base = SPLIT_AGE_FACTOR * self.chunk_window
        stats = self.telemetry.get(link.id)
        expected = (
            stats.expected_seconds(len(chunk), slots=link.slots)
            if stats is not None
            else None
        )
        if expected is None:
            return base
        return min(max(base, 0.5 * expected), 4.0 * base)

    async def _reaper_loop(self) -> None:
        """Declare silent workers dead; time out permanently orphaned work."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.time()
            for link in self._alive_links():
                if now - link.last_seen > self.heartbeat_timeout:
                    try:
                        link.writer.close()
                    except (ConnectionError, OSError):
                        pass
                    self._on_worker_death(link)
            # Periodic straggler check: splits must fire even when no
            # completion event has kicked the scheduler for a while.
            # Guarded like the scheduler loop: a splitting bug must never
            # kill the reaper, or dead-worker detection silently stops.
            try:
                await self._maybe_preempt()
                await self._maybe_split()
            except asyncio.CancelledError:
                raise
            except Exception:
                self.stats.inc("scheduler_errors")
            if (
                self._orphans
                and not self._alive_links()
                and self._orphaned_since is not None
                and now - self._orphaned_since > self.worker_wait_timeout
            ):
                failed = {span.run for span in self._orphans}
                self._orphans.clear()
                self._orphaned_since = None
                for run in failed:
                    run.fail(
                        ClusterError(
                            "no workers joined within "
                            f"{self.worker_wait_timeout:.0f} s; sweep abandoned"
                        )
                    )

    def _on_worker_death(self, link: _WorkerLink) -> None:
        """Reassign a dead worker's queued and in-flight work."""
        if not link.alive:
            return
        link.alive = False
        self.stats.inc("workers_lost")
        _WORKERS_ALIVE.dec()
        obs.EVENTS.emit(
            "worker_lost",
            worker=link.id,
            name=link.name,
            stranded_chunks=len(link.inflight),
        )
        # Dead workers never return under the same id, so their speed
        # estimates must not pollute the pool median / straggler view.
        self.telemetry.forget(link.id)
        stranded = [chunk.to_span() for chunk in link.inflight.values()]
        stranded.extend(link.queue)
        link.inflight.clear()
        link.queue.clear()
        reassign: List[_Span] = []
        for span in stranded:
            if span.run.done or not len(span):
                continue
            span.attempts += 1
            if span.attempts > self.max_chunk_retries:
                span.run.fail(
                    ClusterError(
                        f"work [{span.start}:{span.stop}) of {span.run.id} lost "
                        f"{span.attempts} workers (retry limit "
                        f"{self.max_chunk_retries}); sweep abandoned"
                    )
                )
                continue
            self.stats.inc("chunks_retried")
            reassign.append(span)
        if reassign:
            self._distribute(reassign)
        self._kick.set()

    def _drop_run_chunks(self, run: _Run) -> None:
        """Purge a finished/failed run's spans from every queue."""
        self._orphans.retain(lambda span: span.run is not run)
        if not self._orphans:
            self._orphaned_since = None
        for link in self._links.values():
            link.queue.retain(lambda span: span.run is not run)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        link: Optional[_WorkerLink] = None
        watch_cleanups: List[Callable[[], None]] = []
        try:
            while True:
                try:
                    message = await wire.read_message(reader)
                except wire.ProtocolError as error:
                    await self._send_raw(writer, protocol.error_event(str(error)))
                    break
                except (ConnectionError, OSError):
                    break
                if message is None:
                    break
                op = message.get("op")
                if link is None and op == "hello":
                    link = await self._handle_hello(message, writer)
                    if link is None:
                        break
                elif op == "heartbeat":
                    # Frames buffered by a worker already declared dead must
                    # not resurrect its forgotten telemetry entry.
                    if link is not None and link.alive:
                        link.last_seen = time.time()
                        self.telemetry.observe_heartbeat(link.id, time.monotonic())
                elif op == "chunk_done" and link is not None:
                    link.last_seen = time.time()
                    self._handle_chunk_done(link, message)
                elif op == "split_ack" and link is not None:
                    link.last_seen = time.time()
                    self._handle_split_ack(link, message)
                elif op == "chunk_failed" and link is not None:
                    link.last_seen = time.time()
                    self._handle_chunk_failed(link, message)
                elif op == "status":
                    await self._send_raw(writer, self.status_event(message.get("id")))
                elif op == "ping":
                    await self._send_raw(writer, {"event": "pong", "id": message.get("id")})
                elif op == "watch":
                    await self._send_raw(
                        writer, {"event": "watching", "id": message.get("id")}
                    )
                    watch_cleanups.append(
                        self._start_watch(writer, message.get("id"))
                    )
                else:
                    await self._send_raw(
                        writer, protocol.error_event(f"unexpected op {op!r}")
                    )
        finally:
            for cleanup in watch_cleanups:
                cleanup()
            if link is not None:
                self._on_worker_death(link)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send_raw(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        try:
            writer.write(wire.encode_message(message))
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass

    def _start_watch(
        self, writer: asyncio.StreamWriter, request_id: Any
    ) -> Callable[[], None]:
        """Stream :mod:`repro.obs` events to one control client.

        The bus delivers synchronously on whatever thread emitted, so a
        subscriber bridges onto the coordinator loop and into a bounded
        queue; a slow watcher drops its *oldest* frames (live views want
        the present, not a complete history) and can never stall the
        coordinator.  Returns the cleanup closure the connection handler
        runs on disconnect.
        """
        loop = self._loop or asyncio.get_running_loop()
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue(maxsize=1024)

        def enqueue(event: Dict[str, Any]) -> None:
            while True:
                try:
                    queue.put_nowait(event)
                    return
                except asyncio.QueueFull:
                    try:
                        queue.get_nowait()
                    except asyncio.QueueEmpty:
                        pass

        def bridge(event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(enqueue, event)

        obs.EVENTS.subscribe(bridge)

        async def pump() -> None:
            while True:
                event = await queue.get()
                # Frames are single write() calls, so interleaving with
                # reply frames from the read loop stays well-formed.
                writer.write(
                    wire.encode_message(
                        {"event": "obs", "id": request_id, "data": event}
                    )
                )
                await writer.drain()

        task = asyncio.ensure_future(pump())
        self._watch_tasks.add(task)

        def _done(finished: "asyncio.Task") -> None:
            self._watch_tasks.discard(finished)
            if not finished.cancelled():
                finished.exception()  # connection died mid-write: consumed

        task.add_done_callback(_done)

        def cleanup() -> None:
            obs.EVENTS.unsubscribe(bridge)
            task.cancel()

        return cleanup

    async def _handle_hello(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> Optional[_WorkerLink]:
        if message.get("protocol") != protocol.CLUSTER_PROTOCOL_VERSION:
            await self._send_raw(
                writer,
                protocol.error_event(
                    f"cluster protocol mismatch: coordinator speaks "
                    f"{protocol.CLUSTER_PROTOCOL_VERSION}, worker {message.get('protocol')!r}"
                ),
            )
            return None
        worker_version = message.get("code_version")
        if worker_version != self._code_version:
            # Mixed-version clusters would silently break bit-identical
            # results (and the content-addressed cache keys): refuse.
            await self._send_raw(
                writer,
                protocol.error_event(
                    f"code version mismatch: coordinator {self._code_version}, "
                    f"worker {worker_version}"
                ),
            )
            return None
        worker_id = f"w{next(self._worker_ids)}"
        link = _WorkerLink(
            worker_id,
            name=str(message.get("name", worker_id)),
            pid=int(message.get("pid", 0)),
            slots=int(message.get("slots", 1)),
            writer=writer,
        )
        self._links[worker_id] = link
        _WORKERS_ALIVE.inc()
        obs.EVENTS.emit(
            "worker_joined", worker=worker_id, name=link.name, slots=link.slots
        )
        await link.send(protocol.welcome_event(worker_id, self.heartbeat_interval))
        self._kick.set()  # a fresh worker immediately steals backlog
        return link

    def _handle_chunk_done(self, link: _WorkerLink, message: Dict[str, Any]) -> None:
        chunk = link.inflight.pop(str(message.get("chunk")), None)
        if chunk is None:
            # Completion for a chunk this worker no longer owns (it was
            # presumed dead and the chunk reassigned).  Results are
            # deterministic, so dropping the duplicate is safe.
            self.stats.inc("duplicate_results")
            return
        # Close the occupancy bracket opened at dispatch, whatever the
        # frame's fate below: the chunk has left the worker either way.
        settled_at = time.monotonic()
        busy_integral = self.telemetry.chunk_settled(link.id, settled_at)
        try:
            results = _decode_chunk_results(message)
        except Exception as error:
            chunk.run.fail(ClusterError(f"undecodable results for {chunk.id}: {error}"))
            return
        count = message.get("count")
        if count is not None and int(count) != len(results):
            # The declared count is the spec's partial-ack invariant; a
            # frame whose payload disagrees with it is corrupt transport.
            chunk.run.fail(
                ClusterError(
                    f"chunk {chunk.id} declared count={count} but carried "
                    f"{len(results)} results"
                )
            )
            return
        if len(results) != len(chunk):
            # A granted split truncated the coordinator-side chunk via the
            # (stream-ordered) split_ack before this frame, so even partial
            # completions must match exactly.
            chunk.run.fail(
                ClusterError(
                    f"chunk {chunk.id} returned {len(results)} results "
                    f"for {len(chunk)} jobs"
                )
            )
            return
        seconds = settled_at - chunk.dispatched_at
        # Mean concurrent chunks on this worker over the chunk's lifetime:
        # throughput samples on multi-slot workers are scaled back to the
        # whole-worker rate, fixing the under-estimate that made the
        # adaptive sizer cut starvation-sized chunks for parallel workers.
        occupancy = (busy_integral - chunk.busy_marker) / seconds if seconds > 0 else 1.0
        # A preempted chunk's completion covers only the kept prefix of a
        # revocation the *coordinator* chose — exempt it from the EWMA so
        # a healthy worker is not mistaken for a straggler.
        self.telemetry.observe_chunk(
            link.id,
            len(results),
            seconds,
            occupancy=occupancy,
            preempted=chunk.preempt_requested,
        )
        _CHUNK_SECONDS.observe(seconds)
        link.chunks_done += 1
        link.jobs_done += len(results)
        self.stats.inc("chunks_completed")
        self.stats.inc("jobs_done", len(results))
        obs.EVENTS.emit(
            "chunk_done",
            # Prefer the worker's echoed trace: its presence proves the id
            # crossed the wire both ways, not just coordinator bookkeeping.
            trace=message.get("trace") or chunk.run.trace,
            worker=link.id,
            chunk=chunk.id,
            jobs=len(results),
            seconds=seconds,
        )
        chunk.run.complete_chunk(chunk, results)
        self._kick.set()

    def _handle_split_ack(self, link: _WorkerLink, message: Dict[str, Any]) -> None:
        """Reassign the tail a worker handed back in answer to ``split``."""
        chunk = link.inflight.get(str(message.get("chunk")))
        if chunk is None:
            return  # raced with chunk_done / reassignment: nothing to take
        kept = message.get("kept")
        if kept is None:
            # Split declined (chunk finished first): the full completion
            # is on its way, a healthy sample — drop the preempt mark.
            chunk.preempt_requested = False
            return
        kept = int(kept)
        if kept < 0 or kept >= len(chunk):
            chunk.preempt_requested = False
            return  # nothing handed back
        if chunk.run.done:
            # The run failed/finished while the split was in flight: the
            # worker's eventual partial completion is discarded anyway, so
            # neither the stats nor the queues should see this split.
            return
        tail = _Span(chunk.run, chunk.start + kept, chunk.stop, chunk.attempts)
        chunk.stop = chunk.start + kept
        if chunk.preempt_requested:
            # Preemption granted: the run is paused until its spans next
            # dispatch.  The mark stays on the chunk so the pending
            # partial chunk_done skips the straggler EWMA.  No exclusion:
            # the priority queues already order the requeued tail behind
            # the urgent work that triggered the revoke.
            chunk.run.paused = True
            self.sched_stats.inc("preemptions")
            self.sched_stats.inc("jobs_requeued", len(tail))
            obs.EVENTS.emit(
                "preempted",
                trace=chunk.run.trace,
                worker=link.id,
                chunk=chunk.id,
                kept=kept,
                requeued=len(tail),
            )
            self._distribute([tail])
        else:
            self.stats.inc("chunks_split")
            obs.EVENTS.emit(
                "chunk_split",
                trace=chunk.run.trace,
                worker=link.id,
                chunk=chunk.id,
                kept=kept,
                reassigned=len(tail),
            )
            self._distribute([tail], exclude=link)
        self._kick.set()

    def _handle_chunk_failed(self, link: _WorkerLink, message: Dict[str, Any]) -> None:
        chunk = link.inflight.pop(str(message.get("chunk")), None)
        if chunk is None:
            self.stats.inc("duplicate_results")
            return
        self.telemetry.chunk_settled(link.id, time.monotonic())
        if (
            message.get("code") == protocol.RESULTS_OVERFLOW
            and len(chunk) > 1
            and not chunk.run.done
        ):
            # Transport, not job, failure: the chunk's pickled results do
            # not fit one frame.  Symmetric to the dispatch-side refit —
            # halve, learn the run's size cap and requeue; re-running the
            # (deterministic) jobs at a smaller size reproduces the same
            # values.  A single job whose results alone overflow falls
            # through to the failure path below.
            self._distribute(list(self._refit_chunk(chunk)))
            self._kick.set()
            return
        error = protocol.unpack_exception(
            message.get("exception"), str(message.get("error", "job failed on worker"))
        )
        chunk.run.fail(error)
        self._kick.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _worker_info(self, link: _WorkerLink) -> Dict[str, Any]:
        """One worker's status document: link state + telemetry snapshot.

        The telemetry keys come from :meth:`WorkerStats.to_dict` — the
        single source of truth for their names — and are present (as
        ``None`` / zero) even for a worker with no observations yet, so
        consumers never need existence checks.
        """
        info = link.info().to_dict()
        stats = self.telemetry.get(link.id) or WorkerStats(link.id)
        info.update(stats.to_dict())
        return info

    def status_event(self, request_id: Any = None) -> Dict[str, Any]:
        """The ``status`` reply document (also used by ``cluster status``)."""
        import repro

        return {
            "event": "status",
            "id": request_id,
            "protocol": protocol.CLUSTER_PROTOCOL_VERSION,
            "version": repro.__version__,
            "code_version": self._code_version,
            "address": list(self.address),
            "workers": [self._worker_info(link) for link in self._links.values()],
            "alive_workers": self.worker_count(),
            "total_slots": self.total_slots(),
            "runs_in_flight": len(self._runs),
            "orphaned_chunks": len(self._orphans),
            "stats": dict(self.stats),
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
            "chunk_window": self.chunk_window,
            "scheduling": "adaptive" if self.chunk_window is not None else "static",
            "pool_median_throughput": self.telemetry.pool_median_throughput(),
            "stragglers": list(self.telemetry.stragglers()),
            "sched": {
                "queued_jobs_by_class": self._queued_jobs_by_class(),
                "paused_runs": sum(1 for run in self._runs.values() if run.paused),
                "stats": dict(self.sched_stats),
            },
        }

    def _queued_jobs_by_class(self) -> Dict[str, int]:
        """Undispatched jobs waiting per job class, across every queue."""
        depths = {job_class: 0 for job_class in JOB_CLASSES}
        spans: List[_Span] = list(self._orphans)
        for link in self._links.values():
            spans.extend(link.queue)
        for span in spans:
            if not span.run.done:
                depths[span.run.policy.job_class] += len(span)
        return depths

    def describe(self) -> str:
        """Short human-readable summary."""
        host, port = self.address
        return (
            f"Coordinator[{host}:{port}] — {self.worker_count()} workers, "
            f"{self.stats['jobs_done']} jobs done, "
            f"{self.stats['chunks_stolen']} chunks stolen, "
            f"{self.stats['chunks_split']} split, "
            f"{self.stats['chunks_retried']} retried"
        )
