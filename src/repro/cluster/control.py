"""Control-plane client helpers: query a live cluster endpoint.

The coordinator answers ``status`` / ``ping`` / ``watch`` ops on the same
NDJSON port the workers use, so operational tooling needs no second
listener.  These helpers are what ``python -m repro cluster status`` and
the tests use; ``fetch_status`` / ``ping`` are synchronous one-shot calls
(connect, ask, disconnect), while :func:`watch_status` keeps the
connection open and redraws a live per-worker table from the coordinator's
:mod:`repro.obs` event stream instead of re-polling ``status``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional

from repro import wire
from repro.cluster.worker import parse_address


class ControlError(RuntimeError):
    """The coordinator rejected or failed a control request."""


async def _request(
    host: str, port: int, message: Dict[str, Any], timeout: float
) -> Dict[str, Any]:
    reader, writer = await wire.open_connection(host, port, timeout=timeout)
    try:
        writer.write(wire.encode_message(message))
        await writer.drain()
        reply = await wire.read_message(reader)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if reply is None:
        raise ControlError("coordinator closed the connection without replying")
    if reply.get("event") == "error":
        raise ControlError(str(reply.get("error")))
    return reply


def fetch_status(connect: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch the status document of the coordinator at ``connect``.

    ``connect`` is a ``HOST:PORT`` endpoint; connection failures are retried
    with backoff until ``timeout`` (the coordinator may still be binding).
    """
    host, port = parse_address(connect)
    return asyncio.run(
        asyncio.wait_for(
            _request(host, port, {"op": "status", "id": "cli"}, timeout), timeout + 5.0
        )
    )


def ping(connect: str, timeout: float = 5.0) -> bool:
    """Liveness probe; ``True`` when the coordinator answers ``pong``."""
    host, port = parse_address(connect)
    reply = asyncio.run(
        asyncio.wait_for(
            _request(host, port, {"op": "ping", "id": "cli"}, timeout), timeout + 5.0
        )
    )
    return reply.get("event") == "pong"


def format_status(status: Dict[str, Any]) -> str:
    """Render a status document as the human-readable ``cluster status`` text."""
    host, port = status.get("address", ["?", "?"])
    stats = status.get("stats", {})
    window = status.get("chunk_window")
    scheduling = (
        f"adaptive (window {window:g} s)" if window is not None else "static chunks"
    )
    lines = [
        f"cluster at {host}:{port} — protocol {status.get('protocol')}, "
        f"repro {status.get('version')}, scheduling {scheduling}",
        f"  workers: {status.get('alive_workers', 0)} alive, "
        f"{status.get('total_slots', 0)} slots, "
        f"{status.get('runs_in_flight', 0)} runs in flight, "
        f"{status.get('orphaned_chunks', 0)} orphaned chunks",
        f"  totals : {stats.get('jobs_done', 0)} jobs done, "
        f"{stats.get('chunks_completed', 0)}/{stats.get('chunks_dispatched', 0)} chunks, "
        f"{stats.get('chunks_stolen', 0)} stolen, "
        f"{stats.get('chunks_split', 0)} split "
        f"({stats.get('splits_requested', 0)} requested), "
        f"{stats.get('chunks_retried', 0)} retried, "
        f"{stats.get('workers_lost', 0)} workers lost",
    ]
    sched = status.get("sched")
    if sched:
        depths = sched.get("queued_jobs_by_class") or {}
        sched_stats = sched.get("stats") or {}
        depth_text = ", ".join(
            f"{job_class} {depths[job_class]}" for job_class in sorted(depths)
        )
        lines.append(
            f"  sched  : queued jobs by class: {depth_text or '(none)'}; "
            f"{sched.get('paused_runs', 0)} paused run(s), "
            f"{sched_stats.get('preemptions', 0)}/"
            f"{sched_stats.get('preempt_requests', 0)} preemptions granted, "
            f"{sched_stats.get('resumes', 0)} resumed, "
            f"{sched_stats.get('jobs_requeued', 0)} jobs requeued"
        )
    stragglers = set(status.get("stragglers") or [])
    for worker in status.get("workers", []):
        state = "alive" if worker.get("alive") else "dead"
        throughput = worker.get("throughput_jobs_per_s")
        speed = (
            f", ~{throughput:.2f} jobs/s" if isinstance(throughput, float) else ""
        )
        lag = " (straggler)" if worker.get("id") in stragglers else ""
        # Queue depth is reported in *jobs*: since protocol v3 the queues
        # hold spans (arbitrarily large reservoirs), so a span count would
        # say nothing about load.
        lines.append(
            f"  worker {worker.get('id')} ({worker.get('name')}, pid {worker.get('pid')}): "
            f"{state}, {worker.get('slots')} slot(s), "
            f"{worker.get('jobs_done', 0)} jobs done, "
            f"{worker.get('inflight_jobs', 0)} in flight, "
            f"{worker.get('queued_jobs', 0)} queued{speed}{lag}"
        )
    return "\n".join(lines)


class ClusterWatchView:
    """Pure fold of :mod:`repro.obs` events over a cluster status snapshot.

    Seeded from one ``status`` document, then updated event by event from
    the coordinator's ``watch`` stream — the live ``cluster status
    --watch`` table redraws from these increments instead of re-polling
    the coordinator.  Pure accounting (no I/O, no clock), so the fold is
    directly testable:

    >>> view = ClusterWatchView({"address": ["127.0.0.1", 7465], "workers": [
    ...     {"id": "w1", "name": "local-0", "slots": 2, "alive": True,
    ...      "jobs_done": 0, "inflight_chunks": 0}]})
    >>> view.apply({"seq": 1, "ts": 0.0, "type": "chunk_dispatched",
    ...             "worker": "w1", "chunk": "run-1/c1", "jobs": 4,
    ...             "trace": "t-1"})
    True
    >>> view.apply({"seq": 2, "ts": 0.1, "type": "chunk_done",
    ...             "worker": "w1", "chunk": "run-1/c1", "jobs": 4,
    ...             "seconds": 0.1, "trace": "t-1"})
    True
    >>> view.workers["w1"]["jobs_done"], view.workers["w1"]["inflight_chunks"]
    (4, 0)
    >>> view.jobs_done, view.chunks_done, view.last_trace
    (4, 1, 't-1')
    >>> view.apply({"seq": 3, "ts": 0.2, "type": "cache_hit", "key": "k"})
    False
    >>> view.events_seen
    3
    >>> print(view.render())  # doctest: +ELLIPSIS
    cluster at 127.0.0.1:7465 — live (3 events, last: cache_hit)
      totals : 4 jobs done, 1 chunks, 0 split, 0 stolen spans, 0 workers lost
      worker w1 (local-0): alive, 2 slot(s), 4 jobs done, 0 chunks in flight...
    """

    def __init__(self, status: Dict[str, Any]):
        host, port = status.get("address", ["?", "?"])
        self.address = f"{host}:{port}"
        self.workers: Dict[str, Dict[str, Any]] = {}
        for worker in status.get("workers", []):
            self.workers[str(worker.get("id"))] = {
                "name": worker.get("name", "?"),
                "slots": worker.get("slots", 1),
                "alive": bool(worker.get("alive", True)),
                "jobs_done": int(worker.get("jobs_done", 0)),
                "inflight_chunks": int(worker.get("inflight_chunks", 0)),
            }
        stats = status.get("stats", {})
        self.jobs_done = int(stats.get("jobs_done", 0))
        self.chunks_done = int(stats.get("chunks_completed", 0))
        self.splits = int(stats.get("chunks_split", 0))
        self.stolen = int(stats.get("chunks_stolen", 0))
        self.workers_lost = int(stats.get("workers_lost", 0))
        self.events_seen = 0
        self.last_type: Optional[str] = None
        self.last_trace: Optional[str] = None

    def _worker(self, event: Dict[str, Any]) -> Dict[str, Any]:
        worker_id = str(event.get("worker"))
        return self.workers.setdefault(
            worker_id,
            {
                "name": event.get("name", worker_id),
                "slots": event.get("slots", 1),
                "alive": True,
                "jobs_done": 0,
                "inflight_chunks": 0,
            },
        )

    def apply(self, event: Dict[str, Any]) -> bool:
        """Fold one ``watch`` event in; ``True`` when the table changed."""
        self.events_seen += 1
        kind = event.get("type")
        self.last_type = kind
        if event.get("trace") is not None:
            self.last_trace = str(event["trace"])
        if kind == "worker_joined":
            worker = self._worker(event)
            worker["alive"] = True
            worker["slots"] = event.get("slots", worker["slots"])
            return True
        if kind == "worker_lost":
            self._worker(event)["alive"] = False
            self.workers_lost += 1
            return True
        if kind == "chunk_dispatched":
            self._worker(event)["inflight_chunks"] += 1
            return True
        if kind == "chunk_done":
            worker = self._worker(event)
            worker["inflight_chunks"] = max(0, worker["inflight_chunks"] - 1)
            worker["jobs_done"] += int(event.get("jobs", 0))
            self.jobs_done += int(event.get("jobs", 0))
            self.chunks_done += 1
            return True
        if kind == "chunk_split":
            self.splits += 1
            return True
        if kind == "chunk_stolen":
            self.stolen += int(event.get("spans", 1))
            return True
        return False

    def render(self) -> str:
        """The live table ``cluster status --watch`` redraws per change."""
        lines = [
            f"cluster at {self.address} — live ({self.events_seen} events, "
            f"last: {self.last_type})",
            f"  totals : {self.jobs_done} jobs done, {self.chunks_done} chunks, "
            f"{self.splits} split, {self.stolen} stolen spans, "
            f"{self.workers_lost} workers lost",
        ]
        for worker_id, worker in sorted(self.workers.items()):
            state = "alive" if worker["alive"] else "dead"
            lines.append(
                f"  worker {worker_id} ({worker['name']}): {state}, "
                f"{worker['slots']} slot(s), {worker['jobs_done']} jobs done, "
                f"{worker['inflight_chunks']} chunks in flight"
            )
        if self.last_trace is not None:
            lines.append(f"  last trace: {self.last_trace}")
        return "\n".join(lines)


async def _watch(
    host: str,
    port: int,
    duration: Optional[float],
    emit: Callable[[str], None],
    timeout: float,
) -> ClusterWatchView:
    reader, writer = await wire.open_connection(host, port, timeout=timeout)
    try:
        # Seed and subscribe on one connection; the coordinator answers in
        # stream order, so the status document always precedes the ack.
        writer.write(wire.encode_message({"op": "status", "id": "watch-seed"}))
        writer.write(wire.encode_message({"op": "watch", "id": "watch"}))
        await writer.drain()
        status = await asyncio.wait_for(wire.read_message(reader), timeout)
        if status is None or status.get("event") != "status":
            raise ControlError(f"expected a status document, got {status!r}")
        ack = await asyncio.wait_for(wire.read_message(reader), timeout)
        if ack is None or ack.get("event") != "watching":
            raise ControlError(f"coordinator did not ack the watch: {ack!r}")
        view = ClusterWatchView(status)
        emit(view.render())
        loop = asyncio.get_running_loop()
        deadline = None if duration is None else loop.time() + duration
        while True:
            remaining = None if deadline is None else deadline - loop.time()
            if remaining is not None and remaining <= 0:
                return view
            try:
                message = await asyncio.wait_for(wire.read_message(reader), remaining)
            except asyncio.TimeoutError:
                return view
            if message is None:
                return view  # coordinator shut down: the stream is over
            if message.get("event") != "obs":
                continue
            if view.apply(message.get("data") or {}):
                emit(view.render())
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def watch_status(
    connect: str,
    duration: Optional[float] = None,
    emit: Optional[Callable[[str], None]] = None,
    timeout: float = 5.0,
) -> ClusterWatchView:
    """Follow a coordinator's live event stream; returns the final view.

    Connects to ``connect`` (``HOST:PORT``), seeds a
    :class:`ClusterWatchView` from ``status`` and then redraws it through
    ``emit`` (default: ``print``) on every table-changing ``obs`` event —
    the engine behind ``python -m repro cluster status --watch``.
    ``duration`` bounds the session in seconds (``None`` = until the
    coordinator goes away or the user interrupts).
    """
    host, port = parse_address(connect)
    return asyncio.run(_watch(host, port, duration, emit or print, timeout))
