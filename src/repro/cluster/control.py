"""Control-plane client helpers: query a live cluster endpoint.

The coordinator answers ``status`` / ``ping`` ops on the same NDJSON port
the workers use, so operational tooling needs no second listener.  These
helpers are what ``python -m repro cluster status`` and the tests use; they
are synchronous one-shot calls (connect, ask, disconnect).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict

from repro import wire
from repro.cluster.worker import parse_address


class ControlError(RuntimeError):
    """The coordinator rejected or failed a control request."""


async def _request(
    host: str, port: int, message: Dict[str, Any], timeout: float
) -> Dict[str, Any]:
    reader, writer = await wire.open_connection(host, port, timeout=timeout)
    try:
        writer.write(wire.encode_message(message))
        await writer.drain()
        reply = await wire.read_message(reader)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if reply is None:
        raise ControlError("coordinator closed the connection without replying")
    if reply.get("event") == "error":
        raise ControlError(str(reply.get("error")))
    return reply


def fetch_status(connect: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch the status document of the coordinator at ``connect``.

    ``connect`` is a ``HOST:PORT`` endpoint; connection failures are retried
    with backoff until ``timeout`` (the coordinator may still be binding).
    """
    host, port = parse_address(connect)
    return asyncio.run(
        asyncio.wait_for(
            _request(host, port, {"op": "status", "id": "cli"}, timeout), timeout + 5.0
        )
    )


def ping(connect: str, timeout: float = 5.0) -> bool:
    """Liveness probe; ``True`` when the coordinator answers ``pong``."""
    host, port = parse_address(connect)
    reply = asyncio.run(
        asyncio.wait_for(
            _request(host, port, {"op": "ping", "id": "cli"}, timeout), timeout + 5.0
        )
    )
    return reply.get("event") == "pong"


def format_status(status: Dict[str, Any]) -> str:
    """Render a status document as the human-readable ``cluster status`` text."""
    host, port = status.get("address", ["?", "?"])
    stats = status.get("stats", {})
    window = status.get("chunk_window")
    scheduling = (
        f"adaptive (window {window:g} s)" if window is not None else "static chunks"
    )
    lines = [
        f"cluster at {host}:{port} — protocol {status.get('protocol')}, "
        f"repro {status.get('version')}, scheduling {scheduling}",
        f"  workers: {status.get('alive_workers', 0)} alive, "
        f"{status.get('total_slots', 0)} slots, "
        f"{status.get('runs_in_flight', 0)} runs in flight, "
        f"{status.get('orphaned_chunks', 0)} orphaned chunks",
        f"  totals : {stats.get('jobs_done', 0)} jobs done, "
        f"{stats.get('chunks_completed', 0)}/{stats.get('chunks_dispatched', 0)} chunks, "
        f"{stats.get('chunks_stolen', 0)} stolen, "
        f"{stats.get('chunks_split', 0)} split "
        f"({stats.get('splits_requested', 0)} requested), "
        f"{stats.get('chunks_retried', 0)} retried, "
        f"{stats.get('workers_lost', 0)} workers lost",
    ]
    stragglers = set(status.get("stragglers") or [])
    for worker in status.get("workers", []):
        state = "alive" if worker.get("alive") else "dead"
        throughput = worker.get("throughput_jobs_per_s")
        speed = (
            f", ~{throughput:.2f} jobs/s" if isinstance(throughput, float) else ""
        )
        lag = " (straggler)" if worker.get("id") in stragglers else ""
        # Queue depth is reported in *jobs*: since protocol v3 the queues
        # hold spans (arbitrarily large reservoirs), so a span count would
        # say nothing about load.
        lines.append(
            f"  worker {worker.get('id')} ({worker.get('name')}, pid {worker.get('pid')}): "
            f"{state}, {worker.get('slots')} slot(s), "
            f"{worker.get('jobs_done', 0)} jobs done, "
            f"{worker.get('inflight_jobs', 0)} in flight, "
            f"{worker.get('queued_jobs', 0)} queued{speed}{lag}"
        )
    return "\n".join(lines)
