"""repro.cluster — distributed worker backend behind the sweep engine.

The third tier of the execution architecture:

* **engine** (:mod:`repro.runtime`) — deterministic content-hashed jobs,
  pluggable executors, content-addressed artifact cache;
* **service** (:mod:`repro.service`) — the long-lived asyncio front door
  that many clients submit sweeps to (single-flight, streamed progress);
* **cluster** (this package) — long-lived worker *processes*, local or on
  other hosts, that the engine's ``distributed`` executor shards chunks
  of jobs across.

Because the cluster plugs in as an executor (``make_executor("distributed",
workers=..., connect=...)``), every driver in the repository — the
48-corner DSE, PVT Monte-Carlo batches, characterisation plans, the DNN
table runs, every service workload — gains multi-process / multi-host
execution without a single driver change, and keeps the executor
contract: **bit-identical results in submission order**, whatever the
dispatch schedule, work stealing or worker deaths along the way.

Layout::

    protocol.py     cluster wire messages + pickled job/result transport
    coordinator.py  Coordinator: registration, heartbeats, span queues,
                    adaptive chunk sizing (EWMA telemetry x chunk_window),
                    straggler splits, work stealing, retry-on-worker-death,
                    index merge
    worker.py       Worker: long-lived job runner (python -m repro worker)
    executor.py     DistributedExecutor: the make_executor("distributed")
                    strategy owning the coordinator + local worker pool
    control.py      status/ping/watch helpers (python -m repro cluster
                    status [--watch]); ClusterWatchView folds the live
                    repro.obs event stream into the per-worker table

Per-worker throughput accounting lives in :mod:`repro.telemetry`; the
scheduling policy it drives is documented in ``docs/scheduling.md``.

Quickstart — a local four-worker pool behind the CLI::

    python -m repro run pvt --executor distributed --workers 4

The same, with the endpoint pinned so other hosts can join mid-sweep::

    python -m repro run dse --executor distributed --workers 4 \\
        --connect 0.0.0.0:7500
    # elsewhere:
    python -m repro worker --connect coordinator-host:7500
    python -m repro cluster status --connect coordinator-host:7500

Library use::

    from repro.runtime import SweepEngine, ArtifactCache, make_executor

    executor = make_executor("distributed", workers=4)
    engine = SweepEngine(executor, cache=ArtifactCache())
    result = explore_design_space(suite, engine=engine)   # sharded
    executor.close()                                      # or context-manage

Cache hits are resolved engine-side *before* dispatch, so warm shards
never leave the host; only genuine misses cross the wire.  Workers check
in with the coordinator's exact code version, so a stale worker can never
contribute a shard computed by different model physics.
"""

from __future__ import annotations

from repro.cluster.control import (
    ClusterWatchView,
    ControlError,
    fetch_status,
    format_status,
    ping,
    watch_status,
)
from repro.cluster.coordinator import ClusterError, Coordinator, WorkerInfo
from repro.cluster.executor import DistributedExecutor
from repro.cluster.protocol import CLUSTER_PROTOCOL_VERSION
from repro.cluster.worker import Worker, WorkerError, parse_address, run_worker

__all__ = [
    "CLUSTER_PROTOCOL_VERSION",
    "ClusterError",
    "ClusterWatchView",
    "ControlError",
    "Coordinator",
    "DistributedExecutor",
    "Worker",
    "WorkerError",
    "WorkerInfo",
    "fetch_status",
    "format_status",
    "parse_address",
    "ping",
    "run_worker",
    "watch_status",
]
