"""`DistributedExecutor` — the cluster as a drop-in sweep executor.

Registers as ``make_executor("distributed", workers=..., connect=...)`` so
every driver that routes work through :class:`repro.runtime.SweepEngine`
(characterisation, DSE, PVT / Monte-Carlo, the analysis drivers, the
service workloads) gains cluster execution without touching its code.

The executor owns the cluster endpoint: a :class:`~repro.cluster.coordinator.Coordinator`
running on a dedicated event-loop thread inside the submitting process.
``workers=N`` spawns N local single-slot worker subprocesses
(``python -m repro worker``); ``connect="HOST:PORT"`` binds the endpoint
on a routable address so *additional* workers on other hosts can join the
same sweeps (``python -m repro worker --connect HOST:PORT``).  The two
compose — a laptop can spawn four local workers and accept twenty more
from the lab machines.

Guarantees, matching every other executor in the registry:

* **bit-identical results** — jobs are deterministic work units, results
  are merged by submission index, so distributed == parallel == serial
  bit-for-bit;
* **cache locality** — the engine resolves artifact-cache hits *before*
  the executor runs, so warm shards never cross the wire;
* **graceful degradation** — a host where sockets or subprocesses are
  unavailable (sandboxes, restricted CI) falls back to serial execution,
  the same stance :class:`~repro.runtime.executors.ParallelExecutor`
  takes when its process pool cannot start;
* **fault tolerance** — killed workers have their chunks reassigned and
  retried (see the coordinator); a *job* exception still propagates to the
  submitting call site unchanged.

The event-loop thread and the worker subprocesses start lazily on the
first :meth:`execute` and are torn down by :meth:`close` (also wired to
``atexit``; workers additionally exit on coordinator end-of-stream, so no
orphan processes survive a crashed submitter).
"""

from __future__ import annotations

import asyncio
import atexit
import concurrent.futures
import os
import subprocess
import sys
import threading
import time
import warnings
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.cluster.coordinator import ClusterError, Coordinator
from repro.cluster.worker import parse_address
from repro.runtime.executors import (
    CancelEvent,
    ProgressCallback,
    SerialExecutor,
    _serial_fallback,
)
from repro.runtime.jobs import Job

_TEARDOWN_ERRORS_TOTAL = obs.counter(
    "repro_cluster_teardown_errors_total",
    "Coordinator stop failures swallowed during executor teardown "
    "(workers are still terminated and the loop thread joined).",
)


def _worker_environment() -> dict:
    """Environment for spawned workers: inherit, plus the submitter's
    ``sys.path`` so every module whose functions ride in pickled jobs is
    importable on the worker side (the same guarantee ``multiprocessing``'s
    spawn start method provides)."""
    env = dict(os.environ)
    entries = [entry for entry in sys.path if entry]
    env["PYTHONPATH"] = os.pathsep.join(entries)
    return env


def spawn_worker_process(
    connect: str,
    name: Optional[str] = None,
    slots: int = 1,
    throttle: float = 0.0,
    connect_timeout: float = 30.0,
) -> subprocess.Popen:
    """Spawn one ``python -m repro worker`` subprocess joining ``connect``.

    The single place the worker command line is assembled: the executor
    uses it for its local pool, and the straggler-pool benchmark / tests
    use it (with ``throttle``) to join deliberately slowed workers — so
    every spawner inherits the same flags and :func:`_worker_environment`.
    """
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--connect",
        connect,
        "--connect-timeout",
        str(connect_timeout),
    ]
    if name is not None:
        command += ["--name", name]
    if slots != 1:
        command += ["--slots", str(slots)]
    if throttle:
        command += ["--throttle", str(throttle)]
    return subprocess.Popen(
        command,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_worker_environment(),
    )


class DistributedExecutor:
    """Run sweeps across long-lived worker processes, local or remote.

    Parameters
    ----------
    workers:
        Local worker subprocesses to spawn (default: the host CPU count).
        ``workers=0`` spawns none and relies entirely on external workers
        joining via ``connect``.
    connect:
        ``"HOST:PORT"`` bind address of the cluster endpoint (default
        loopback with an ephemeral port).  External workers join with
        ``python -m repro worker --connect HOST:PORT``.
    chunksize:
        Jobs per dispatched chunk.  The default splits a sweep into about
        four chunks per worker slot — small enough for work stealing and
        death-retry to matter, large enough to amortise the pickle+frame
        overhead.  Under an adaptive ``chunk_window`` this is only the
        *probe* size used until a worker's throughput has been measured
        (default: 1, so the scheduler learns each worker's speed from the
        very first completion).
    chunk_window:
        Target wall-time per dispatched chunk, in seconds — switches the
        coordinator to the **adaptive scheduler**: chunk sizes track each
        worker's measured EWMA throughput, and stragglers' in-flight
        chunks are split so idle workers take over the unstarted tail
        (see ``docs/scheduling.md``).  ``None`` (default) keeps static
        chunk sizing.  CLI: ``--chunk-window``.
    min_workers:
        How many registered workers :meth:`execute` waits for before
        dispatching (default: the spawned count, or 1 when only external
        workers are expected).
    heartbeat_interval, heartbeat_timeout:
        Liveness beacon cadence and the silence threshold after which a
        worker is declared dead.
    start_timeout:
        Budget for the cluster to come up (bind + worker registration).
        On expiry with zero workers the executor degrades to serial.
    """

    name = "distributed"

    def __init__(
        self,
        workers: Optional[int] = None,
        connect: Optional[str] = None,
        chunksize: Optional[int] = None,
        chunk_window: Optional[float] = None,
        min_workers: Optional[int] = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        start_timeout: float = 30.0,
    ):
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        if chunk_window is not None and chunk_window <= 0:
            raise ValueError("chunk_window must be positive (seconds)")
        if min_workers is not None and min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if connect is not None:
            parse_address(connect)  # validate eagerly: CLI errors beat hangs
        self.workers = (os.cpu_count() or 1) if workers is None else workers
        if self.workers == 0 and connect is None:
            raise ValueError("workers=0 needs connect= so external workers can join")
        self.connect = connect
        self.chunksize = chunksize
        self.chunk_window = chunk_window
        self.min_workers = min_workers if min_workers is not None else max(1, self.workers)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.start_timeout = start_timeout
        self.coordinator: Optional[Coordinator] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._processes: List[subprocess.Popen] = []
        self._fallback: Optional[SerialExecutor] = None
        self._started = False
        self._lock = threading.Lock()
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """Bound ``(host, port)`` of the cluster endpoint once started."""
        if self.coordinator is None:
            return None
        return self.coordinator.address

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of the locally spawned worker subprocesses (for tests/ops)."""
        return [process.pid for process in self._processes]

    def start(self) -> "DistributedExecutor":
        """Start the cluster (idempotent); degrades to serial on failure.

        The degradation mirrors :class:`~repro.runtime.executors.ParallelExecutor`
        (sweeps still complete on hosts without sockets / subprocesses) but
        is *audibly* reported via :mod:`warnings`, so a broken cluster can
        never masquerade as a working one in CI logs.
        """
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._fallback = None  # a restart gets a fresh chance
            try:
                self._start_locked()
            except Exception as error:
                self._teardown_locked()
                self._fallback = SerialExecutor()
                warnings.warn(
                    f"distributed executor unavailable ({type(error).__name__}: "
                    f"{error}); falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return self

    def _start_locked(self) -> None:
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, name="cluster-loop", daemon=True)
        thread.start()
        self._loop = loop
        self._loop_thread = thread
        host, port = ("127.0.0.1", 0) if self.connect is None else parse_address(self.connect)
        coordinator = Coordinator(
            host=host,
            port=port,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            chunk_window=self.chunk_window,
        )
        asyncio.run_coroutine_threadsafe(coordinator.start(), loop).result(self.start_timeout)
        self.coordinator = coordinator
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True
        bound_host, bound_port = coordinator.address
        for index in range(self.workers):
            self._processes.append(
                spawn_worker_process(
                    f"{bound_host}:{bound_port}",
                    name=f"local-{index}",
                    connect_timeout=self.start_timeout,
                )
            )
        self._await_workers()

    def _await_workers(self) -> None:
        """Block until ``min_workers`` registered (capped by start_timeout)."""
        assert self.coordinator is not None
        wanted = self.min_workers
        deadline = time.monotonic() + self.start_timeout
        while time.monotonic() < deadline:
            alive = self.coordinator.worker_count()
            if alive >= wanted:
                return
            # Spawned workers that died at startup can never register.
            spawned_alive = sum(1 for p in self._processes if p.poll() is None)
            if self.workers and spawned_alive == 0 and alive == 0:
                break
            time.sleep(0.02)
        if self.coordinator.worker_count() == 0:
            raise ClusterError("no workers registered within the start timeout")

    def wait_for_workers(self, count: int, timeout: Optional[float] = None) -> None:
        """Block until ``count`` workers are registered on the endpoint.

        For callers joining *external* workers after :meth:`start` —
        benchmarks and tests spawning throttled stragglers, operators
        scripting pool bring-up.  Raises :class:`ClusterError` when the
        pool has not reached ``count`` within ``timeout`` (default:
        ``start_timeout``).
        """
        if self.coordinator is None:
            raise ClusterError("executor not started")
        deadline = time.monotonic() + (
            self.start_timeout if timeout is None else timeout
        )
        while self.coordinator.worker_count() < count:
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"only {self.coordinator.worker_count()} of {count} workers "
                    "registered within the timeout"
                )
            time.sleep(0.02)

    def close(self) -> None:
        """Stop the coordinator, terminate spawned workers, join the loop."""
        with self._lock:
            self._teardown_locked()
            self._started = False

    def _teardown_locked(self) -> None:
        if self.coordinator is not None and self._loop is not None:
            try:
                asyncio.run_coroutine_threadsafe(self.coordinator.stop(), self._loop).result(10)
            except Exception:
                # Teardown proceeds regardless (workers are terminated just
                # below), but a coordinator that cannot stop cleanly is
                # worth a trace on the registry.
                _TEARDOWN_ERRORS_TOTAL.inc()
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5)
        self._processes.clear()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=5)
            if not self._loop.is_running():
                self._loop.close()
        self.coordinator = None
        self._loop = None
        self._loop_thread = None

    def __enter__(self) -> "DistributedExecutor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _default_chunksize(self, job_count: int) -> int:
        if self.chunk_window is not None:
            # Adaptive scheduling: the static size only seeds the probe
            # chunks, so keep them minimal — the first completion measures
            # the worker and the window takes over.
            return 1
        slots = self.coordinator.total_slots() if self.coordinator is not None else 1
        return max(1, job_count // (4 * max(1, slots)))

    def execute(
        self,
        jobs: Sequence[Job],
        progress: Optional[ProgressCallback] = None,
        batch_fn: Optional[Callable[[Sequence[Job]], List[Any]]] = None,
        cancel: Optional[CancelEvent] = None,
        trace: Optional[str] = None,
        sched: Optional[Any] = None,
    ) -> List[Any]:
        """Run ``jobs`` across the cluster; results in submission order.

        Like the process-pool executor, single-job sweeps run inline (no
        wire round-trip can pay for itself).  On the cluster path
        ``batch_fn`` is not shipped to workers — vectorised batching is an
        in-process strategy — but every in-process degradation (single
        job, no workers, fallback executor) keeps it, so a sweep with a
        ``batch_fn`` never silently loses its vectorised inner loop.  A
        set ``cancel``
        event is forwarded to the coordinator, which revokes the run's
        queued chunks and tells workers to drop in-flight ones; the call
        then raises :class:`~repro.runtime.SweepCancelled`.  ``trace``
        (the originating request's observability id, see :mod:`repro.obs`)
        rides every chunk frame of the run and is echoed by workers, so
        cross-tier metrics and ``watch`` events stay attributable.
        ``sched`` (anything :meth:`repro.sched.SchedPolicy.parse` accepts)
        sets the run's class and priority in the coordinator's
        multi-tenant scheduler; higher-priority runs dispatch first and
        may preempt lower-priority in-flight work.
        """
        if len(jobs) <= 1:
            return _serial_fallback(jobs, progress, batch_fn, cancel)
        if not self._started:
            self.start()
        if self._fallback is not None:
            return _serial_fallback(jobs, progress, batch_fn, cancel)
        assert self.coordinator is not None and self._loop is not None
        chunksize = self.chunksize or self._default_chunksize(len(jobs))
        future = asyncio.run_coroutine_threadsafe(
            self.coordinator.run(
                jobs,
                chunksize,
                progress=progress,
                cancel_event=cancel,
                trace=trace,
                sched=sched,
            ),
            self._loop,
        )
        return future.result()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self, timeout: float = 10.0) -> dict:
        """Cluster status document (see :meth:`Coordinator.status_event`).

        ``timeout`` bounds the round-trip to the coordinator's event loop;
        on expiry the pending request is cancelled (so a wedged loop does
        not accumulate abandoned coroutines) and the timeout propagates.
        """
        if self._fallback is not None:
            return {"event": "status", "fallback": "serial", "workers": []}
        if self.coordinator is None or self._loop is None:
            return {"event": "status", "started": False, "workers": []}
        future = asyncio.run_coroutine_threadsafe(self._status_async(), self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise

    async def _status_async(self) -> dict:
        assert self.coordinator is not None
        return self.coordinator.status_event()

    def describe(self) -> str:
        if self._fallback is not None:
            return "DistributedExecutor[fallback=serial]"
        if self.coordinator is None:
            return f"DistributedExecutor[{self.workers} workers, not started]"
        return self.coordinator.describe()
