"""Long-lived cluster worker: ``python -m repro worker --connect HOST:PORT``.

A :class:`Worker` opens one TCP connection to the coordinator (retrying
with backoff while the coordinator is still binding — workers and
coordinator usually start together), registers with a ``hello`` carrying
its pid, slot count and code version, and then loops:

* ``chunk`` events are unpacked into :class:`~repro.runtime.jobs.Job`
  lists and executed on a thread pool sized to the worker's ``slots``
  (one chunk per slot in flight; the coordinator never over-commits);
* results go back as one ``chunk_done`` per chunk, pickled;
* a job that raises reports ``chunk_failed`` with the pickled exception —
  the *worker survives* and keeps serving other chunks, the *sweep* fails
  at the submitting call site exactly as it would under the serial
  executor;
* a ``split`` event (protocol v3, the adaptive scheduler reclaiming a
  straggler's backlog) truncates one in-flight chunk to the jobs already
  started: the worker answers ``split_ack`` with the kept count, finishes
  only that prefix and reports it as a partial ``chunk_done`` — the
  coordinator reassigns the tail to an idle worker;
* a ``cancel`` event revokes one in-flight chunk (its run was cancelled):
  the chunk body stops at its next job boundary and reports nothing —
  the worker stays registered and keeps serving other chunks;
* heartbeats are sent at the interval the coordinator's ``welcome``
  announced, so a wedged or killed worker is detected and its chunks are
  reassigned;
* a ``shutdown`` event — or plain end-of-stream when the coordinator goes
  away — terminates the worker.  Workers therefore never outlive their
  coordinator as orphan processes.

Workers are processes, not threads, so a pool of single-slot workers gives
the same CPU-level parallelism as the process-pool executor while being
free to live on other hosts.
"""

from __future__ import annotations

import asyncio
import hashlib
import ipaddress
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs, wire
from repro.cluster import protocol
from repro.runtime.executors import SweepCancelled
from repro.runtime.jobs import Job, code_version

#: Array payloads at least this large take the same-host shared-memory
#: handoff instead of the socket (loopback coordinators only).  Below it
#: the segment setup costs more than the copy it saves.  Overridable with
#: the ``REPRO_SHM_MIN_BYTES`` environment variable; a negative value
#: disables the handoff entirely (useful in tests and constrained
#: containers without a usable /dev/shm).
SHM_MIN_BYTES = 1024 * 1024


def _shm_min_bytes() -> Optional[int]:
    """The effective SHM threshold; ``None`` when the handoff is disabled."""
    raw = os.environ.get("REPRO_SHM_MIN_BYTES")
    if raw is None:
        return SHM_MIN_BYTES
    try:
        value = int(raw)
    except ValueError:
        return SHM_MIN_BYTES
    return None if value < 0 else value


def _is_loopback(host: str) -> bool:
    """True when the coordinator endpoint is on this host (loopback).

    >>> _is_loopback("127.0.0.1"), _is_loopback("localhost")
    (True, True)
    >>> _is_loopback("192.0.2.7"), _is_loopback("coordinator-host")
    (False, False)
    """
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False  # a DNS name other than localhost: assume remote

# Worker-process metrics, scraped from the worker's own --metrics-port
# endpoint (workers are separate processes; the coordinator's registry
# cannot see them).
_CHUNKS_DONE = obs.counter(
    "repro_worker_chunks_done_total", "Chunks completed by this worker process."
)
_JOBS_DONE = obs.counter(
    "repro_worker_jobs_done_total", "Jobs completed by this worker process."
)
_CHUNK_SECONDS = obs.histogram(
    "repro_worker_chunk_seconds", "Wall time of chunks executed by this worker."
)


class ChunkProgress:
    """Thread-shared execution state of one in-flight chunk.

    The chunk body (a worker thread) and the connection's read loop (the
    asyncio thread) coordinate through this object: the body claims jobs
    one at a time via :meth:`try_start`, a coordinator ``split`` lands via
    :meth:`split`, and a ``cancel`` sets :attr:`cancel`.  The lock makes
    the split decision exact — the acked ``kept`` count is precisely the
    number of results the eventual (partial) ``chunk_done`` will carry,
    because a job is either started before the split (and kept) or not
    (and handed back), never half-way.

    >>> state = ChunkProgress()
    >>> state.try_start(), state.try_start()   # body starts jobs 0 and 1
    (True, True)
    >>> state.split(keep=0)                    # split keeps started jobs only
    2
    >>> state.try_start()                      # the tail was handed back
    False
    >>> state.split(keep=5)                    # a later split cannot re-grow
    2
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.cancel = threading.Event()
        self.started = 0
        self.limit: Optional[int] = None  # None: no split yet, run everything

    def try_start(self) -> bool:
        """Claim the next job for execution; ``False`` past a split limit."""
        with self.lock:
            if self.limit is not None and self.started >= self.limit:
                return False
            self.started += 1
            return True

    def split(self, keep: int) -> int:
        """Truncate to ``max(started, keep)`` jobs; returns the kept count."""
        with self.lock:
            kept = max(self.started, int(keep))
            if self.limit is not None:
                kept = min(kept, self.limit)
            self.limit = kept
            return kept


def _run_jobs(
    jobs: List[Job], state: ChunkProgress, throttle: float = 0.0
) -> List[Any]:
    """Chunk body on the worker thread: run jobs, honour splits/revocation.

    Returns the results of the jobs actually run — the full chunk
    normally, a prefix after a coordinator ``split``.  ``throttle`` adds a
    sleep before every job (the chaos knob behind ``--throttle``).
    """
    results: List[Any] = []
    for job in jobs:
        if state.cancel.is_set():
            raise SweepCancelled("chunk revoked by coordinator")
        if not state.try_start():
            break  # split: the tail belongs to another worker now
        if throttle > 0.0:
            time.sleep(throttle)
        results.append(job.run())
    return results


class WorkerError(RuntimeError):
    """The worker could not register with (or talk to) the coordinator."""


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``host:port`` endpoint string.

    >>> parse_address("coordinator-host:7500")
    ('coordinator-host', 7500)
    >>> parse_address("7500")
    Traceback (most recent call last):
        ...
    ValueError: invalid address '7500' (expected HOST:PORT)
    """
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"invalid address {text!r} (expected HOST:PORT)")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in address {text!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"port {port} out of range in address {text!r}")
    return host, port


class Worker:
    """One worker process serving chunks from a coordinator.

    Parameters
    ----------
    host, port:
        Coordinator endpoint.
    slots:
        Chunks this worker runs concurrently (thread pool size).  The
        default of 1 makes a *pool of worker processes* the unit of
        parallelism, matching the process-pool executor's model.
    name:
        Display name reported in ``cluster status``; defaults to
        ``<hostname>-<pid>``.
    connect_timeout:
        Retry-with-backoff budget while the coordinator is still binding.
    throttle:
        Artificial per-job delay in seconds (default 0: none).  A chaos /
        benchmarking knob: a throttled worker is a reproducible straggler
        for exercising the adaptive scheduler (see
        ``benchmarks/bench_adaptive_scheduling.py`` and the heterogeneous
        pool runbook in ``docs/operations.md``).  Never set it in
        production pools.
    metrics_port:
        When set, serve this worker process's Prometheus metrics
        (``repro_worker_*``) on ``127.0.0.1:metrics_port`` for the
        lifetime of the connection (``--metrics-port``; 0 binds an
        ephemeral port, printed on start).
    """

    def __init__(
        self,
        host: str,
        port: int,
        slots: int = 1,
        name: Optional[str] = None,
        connect_timeout: float = 10.0,
        throttle: float = 0.0,
        metrics_port: Optional[int] = None,
    ):
        if slots < 1:
            raise ValueError("slots must be at least 1")
        if throttle < 0:
            raise ValueError("throttle must be non-negative")
        self.host = host
        self.port = port
        self.slots = slots
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_timeout = connect_timeout
        self.throttle = throttle
        self.metrics_port = metrics_port
        self.worker_id: Optional[str] = None
        self.chunks_done = 0
        # Shared-memory handoff: only offered to loopback coordinators
        # (same host by construction).  Segments this worker created and
        # has not yet torn down, keyed by name — the worker keeps its
        # handle until shutdown so a coordinator crash between the
        # chunk_done and the attach cannot leak the segment.
        self._shm_enabled = _is_loopback(host)
        self._shm_segments: Dict[str, shared_memory.SharedMemory] = {}

    def _encode_chunk_done(
        self, chunk_id: str, results: List[Any], trace: Optional[str]
    ) -> bytes:
        """Encode one completion, choosing the richest transport available.

        All-array result lists take the protocol-v5 binary frame — raw
        dtype/shape-tagged buffers, no base64 and no pickling; payloads of
        at least :data:`SHM_MIN_BYTES` bound for a loopback coordinator
        ride the shared-memory handoff instead of the socket.  Anything
        else keeps the pickled ``results`` field.  Raises
        :class:`repro.wire.ProtocolError` when the payload exceeds its
        bound — the caller reports ``results_overflow`` and the
        coordinator refits the chunk smaller.
        """
        if results and all(
            isinstance(result, np.ndarray) and not result.dtype.hasobject
            for result in results
        ):
            specs, payload = wire.pack_arrays(results)
            shm_min = _shm_min_bytes()
            if self._shm_enabled and shm_min is not None and len(payload) >= shm_min:
                try:
                    segment = shared_memory.SharedMemory(
                        create=True, size=max(len(payload), 1)
                    )
                except OSError:
                    pass  # no usable /dev/shm: the socket frame below works
                else:
                    segment.buf[: len(payload)] = payload
                    self._shm_segments[segment.name] = segment
                    return wire.encode_message(
                        protocol.chunk_done_shm_request(
                            chunk_id,
                            specs,
                            len(results),
                            segment.name,
                            hashlib.sha256(payload).hexdigest(),
                            len(payload),
                            trace=trace,
                        )
                    )
            return wire.encode_binary(
                protocol.chunk_done_binary_header(
                    chunk_id, specs, len(results), trace=trace
                ),
                payload,
            )
        return wire.encode_message(
            protocol.chunk_done_request(chunk_id, results, trace=trace)
        )

    def _teardown_shm(self) -> None:
        """Release every shared-memory segment this worker still holds.

        The coordinator unlinks segments it successfully consumed, so the
        common case here is close-plus-tolerated-FileNotFoundError; a
        segment the coordinator never attached (it died first) is unlinked
        here — both death paths leave nothing behind in /dev/shm.
        """
        for segment in self._shm_segments.values():
            try:
                segment.close()
            except (OSError, ValueError):  # repro: ignore[REPRO-ERR01] -- teardown must visit every segment; a close failure cannot be acted on
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                # Already unlinked by the coordinator.  CPython only
                # unregisters a segment from the resource tracker on a
                # *successful* unlink, so silence the tracker by hand or
                # the interpreter warns about a leak that is not one.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(segment._name, "shared_memory")
                except Exception:  # repro: ignore[REPRO-ERR01] -- tracker internals vary across 3.10/3.12; failing to silence a spurious warning must not fail shutdown
                    pass
            except (OSError, ValueError):  # repro: ignore[REPRO-ERR01] -- teardown must visit every segment; an unlink failure cannot be acted on
                pass
        self._shm_segments.clear()

    async def run(self) -> None:
        """Serve until the coordinator shuts us down or disappears."""
        metrics_server: Optional[obs.MetricsServer] = None
        if self.metrics_port is not None:
            metrics_server = obs.MetricsServer(port=self.metrics_port)
            await metrics_server.start()
            print(
                f"worker metrics on http://127.0.0.1:{metrics_server.port}/metrics",
                flush=True,
            )
        reader, writer = await wire.open_connection(
            self.host, self.port, timeout=self.connect_timeout
        )
        pool = ThreadPoolExecutor(max_workers=self.slots, thread_name_prefix="chunk")
        send_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        heartbeat_task: Optional["asyncio.Task"] = None
        chunk_tasks: set = set()
        # Per-chunk execution state: a coordinator `cancel` event sets the
        # matching cancel flag (the body stops at its next job boundary)
        # and a `split` truncates the body's job budget via the same state.
        chunk_states: Dict[str, ChunkProgress] = {}

        async def send(message: Dict[str, Any]) -> None:
            async with send_lock:
                writer.write(wire.encode_message(message))
                await writer.drain()

        try:
            await send(
                protocol.hello_request(self.name, os.getpid(), self.slots, code_version())
            )
            welcome = await wire.read_message(reader)
            if welcome is None:
                raise WorkerError("coordinator closed the connection during hello")
            if welcome.get("event") == "error":
                raise WorkerError(f"registration rejected: {welcome.get('error')}")
            if welcome.get("event") != "welcome":
                raise WorkerError(f"unexpected registration reply: {welcome}")
            self.worker_id = str(welcome.get("worker"))
            interval = float(welcome.get("heartbeat_seconds", 1.0))

            async def heartbeat_loop() -> None:
                while True:
                    await asyncio.sleep(interval)
                    await send(protocol.heartbeat_request(self.worker_id or ""))

            async def run_chunk(
                chunk_id: str, blob: str, trace: Optional[str] = None
            ) -> None:
                # The state was registered by the read loop when the chunk
                # arrived, so a `cancel` or `split` processed before this
                # task first runs is still seen.
                state = chunk_states.get(chunk_id) or ChunkProgress()
                started = time.monotonic()
                try:
                    jobs = protocol.unpack_jobs(blob)
                    results = await loop.run_in_executor(
                        pool, _run_jobs, jobs, state, self.throttle
                    )
                except asyncio.CancelledError:
                    raise
                except SweepCancelled:
                    # Revoked chunk: the coordinator already disowned it,
                    # so report nothing and stay available for new work.
                    return
                except BaseException as error:  # job failure -> sweep failure
                    if not state.cancel.is_set():
                        await send(protocol.chunk_failed_request(chunk_id, error))
                    return
                finally:
                    chunk_states.pop(chunk_id, None)
                if state.cancel.is_set():
                    # Revocation raced chunk completion; drop the result —
                    # the coordinator would discard it as a duplicate anyway.
                    return
                try:
                    reply = self._encode_chunk_done(chunk_id, results, trace)
                except wire.ProtocolError as error:
                    # Results too large for one frame.  Tagged with the
                    # results_overflow code so the coordinator refits the
                    # chunk smaller instead of failing the sweep; only a
                    # single job whose results alone overflow is fatal.
                    await send(
                        protocol.chunk_failed_request(
                            chunk_id,
                            RuntimeError(
                                f"chunk {chunk_id} results exceed the frame "
                                f"limit ({error}); job results too large for "
                                f"one frame"
                            ),
                            code=protocol.RESULTS_OVERFLOW,
                        )
                    )
                    return
                async with send_lock:
                    writer.write(reply)
                    await writer.drain()
                self.chunks_done += 1
                _CHUNKS_DONE.inc()
                _JOBS_DONE.inc(len(results))
                _CHUNK_SECONDS.observe(time.monotonic() - started)

            def reap_chunk_task(task: "asyncio.Task") -> None:
                chunk_tasks.discard(task)
                if not task.cancelled():
                    task.exception()  # a failed send is fatal via the read loop

            heartbeat_task = asyncio.ensure_future(heartbeat_loop())
            while True:
                message = await wire.read_message(reader)
                if message is None or message.get("event") == "shutdown":
                    break
                if message.get("event") == "chunk":
                    chunk_id = str(message.get("chunk"))
                    chunk_states[chunk_id] = ChunkProgress()
                    trace = message.get("trace")
                    task = asyncio.ensure_future(
                        run_chunk(
                            chunk_id,
                            str(message.get("jobs", "")),
                            trace=str(trace) if trace is not None else None,
                        )
                    )
                    chunk_tasks.add(task)
                    task.add_done_callback(reap_chunk_task)
                elif message.get("event") == "split":
                    # Straggler split: truncate the chunk to the jobs this
                    # worker already started and ack the kept count — the
                    # coordinator reassigns the tail.  A chunk that already
                    # finished (or was never ours) declines with kept=null.
                    chunk_id = str(message.get("chunk"))
                    state = chunk_states.get(chunk_id)
                    kept = (
                        state.split(int(message.get("keep", 0)))
                        if state is not None
                        else None
                    )
                    await send(protocol.split_ack_request(chunk_id, kept))
                elif message.get("event") == "cancel":
                    revoked = chunk_states.get(str(message.get("chunk")))
                    if revoked is not None:
                        revoked.cancel.set()
                elif message.get("event") == "error":
                    raise WorkerError(f"coordinator error: {message.get('error')}")
                # anything else: ignore (forward compatibility)
        except (ConnectionError, OSError, wire.ProtocolError):
            # Coordinator went away mid-stream; exit quietly — the
            # coordinator side reassigns whatever we were running.
            pass
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            for task in list(chunk_tasks):
                task.cancel()
            await asyncio.gather(
                *([heartbeat_task] if heartbeat_task else []),
                *chunk_tasks,
                return_exceptions=True,
            )
            pool.shutdown(wait=False, cancel_futures=True)
            self._teardown_shm()
            if metrics_server is not None:
                await metrics_server.stop()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def run_worker(
    connect: str,
    slots: int = 1,
    name: Optional[str] = None,
    connect_timeout: float = 10.0,
    throttle: float = 0.0,
    metrics_port: Optional[int] = None,
) -> int:
    """Synchronous entry point used by ``python -m repro worker``.

    Parameters
    ----------
    connect:
        Coordinator endpoint as ``HOST:PORT`` (the address the submitting
        process passed to ``--connect``, or printed in ``cluster status``).
    slots:
        Chunks run concurrently by this worker (default 1: parallelism
        comes from running one worker per core).
    name:
        Display name in ``cluster status``; default ``<hostname>-<pid>``.
    connect_timeout:
        Retry-with-backoff budget while the coordinator is still binding.
    throttle:
        Artificial per-job delay in seconds — the deliberate-straggler
        chaos knob (``--throttle``); keep 0 in production pools.
    metrics_port:
        Serve this worker's Prometheus metrics on this port while the
        worker runs (``--metrics-port``; 0 picks an ephemeral port).

    Returns the process exit code: ``0`` on clean shutdown (coordinator
    closed the cluster), ``1`` on registration / transport failure —
    version-mismatch rejections land here, printed to stdout.

    Raises
    ------
    ValueError
        For a malformed ``connect`` address, ``slots < 1`` or a negative
        ``throttle``.
    """
    host, port = parse_address(connect)
    worker = Worker(
        host,
        port,
        slots=slots,
        name=name,
        connect_timeout=connect_timeout,
        throttle=throttle,
        metrics_port=metrics_port,
    )
    try:
        asyncio.run(worker.run())
    except (WorkerError, ConnectionError, OSError) as error:
        print(f"worker error: {error}", flush=True)
        return 1
    except KeyboardInterrupt:
        pass
    return 0
