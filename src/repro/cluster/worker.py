"""Long-lived cluster worker: ``python -m repro worker --connect HOST:PORT``.

A :class:`Worker` opens one TCP connection to the coordinator (retrying
with backoff while the coordinator is still binding — workers and
coordinator usually start together), registers with a ``hello`` carrying
its pid, slot count and code version, and then loops:

* ``chunk`` events are unpacked into :class:`~repro.runtime.jobs.Job`
  lists and executed on a thread pool sized to the worker's ``slots``
  (one chunk per slot in flight; the coordinator never over-commits);
* results go back as one ``chunk_done`` per chunk, pickled;
* a job that raises reports ``chunk_failed`` with the pickled exception —
  the *worker survives* and keeps serving other chunks, the *sweep* fails
  at the submitting call site exactly as it would under the serial
  executor;
* a ``cancel`` event revokes one in-flight chunk (its run was cancelled):
  the chunk body stops at its next job boundary and reports nothing —
  the worker stays registered and keeps serving other chunks;
* heartbeats are sent at the interval the coordinator's ``welcome``
  announced, so a wedged or killed worker is detected and its chunks are
  reassigned;
* a ``shutdown`` event — or plain end-of-stream when the coordinator goes
  away — terminates the worker.  Workers therefore never outlive their
  coordinator as orphan processes.

Workers are processes, not threads, so a pool of single-slot workers gives
the same CPU-level parallelism as the process-pool executor while being
free to live on other hosts.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro import wire
from repro.cluster import protocol
from repro.runtime.executors import SweepCancelled
from repro.runtime.jobs import Job, code_version


def _run_jobs(jobs: List[Job], cancel: threading.Event) -> List[Any]:
    """Chunk body on the worker thread: run jobs, stop on revocation."""
    results: List[Any] = []
    for job in jobs:
        if cancel.is_set():
            raise SweepCancelled("chunk revoked by coordinator")
        results.append(job.run())
    return results


class WorkerError(RuntimeError):
    """The worker could not register with (or talk to) the coordinator."""


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``host:port`` endpoint string.

    >>> parse_address("coordinator-host:7500")
    ('coordinator-host', 7500)
    >>> parse_address("7500")
    Traceback (most recent call last):
        ...
    ValueError: invalid address '7500' (expected HOST:PORT)
    """
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"invalid address {text!r} (expected HOST:PORT)")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in address {text!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"port {port} out of range in address {text!r}")
    return host, port


class Worker:
    """One worker process serving chunks from a coordinator.

    Parameters
    ----------
    host, port:
        Coordinator endpoint.
    slots:
        Chunks this worker runs concurrently (thread pool size).  The
        default of 1 makes a *pool of worker processes* the unit of
        parallelism, matching the process-pool executor's model.
    name:
        Display name reported in ``cluster status``; defaults to
        ``<hostname>-<pid>``.
    connect_timeout:
        Retry-with-backoff budget while the coordinator is still binding.
    """

    def __init__(
        self,
        host: str,
        port: int,
        slots: int = 1,
        name: Optional[str] = None,
        connect_timeout: float = 10.0,
    ):
        if slots < 1:
            raise ValueError("slots must be at least 1")
        self.host = host
        self.port = port
        self.slots = slots
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_timeout = connect_timeout
        self.worker_id: Optional[str] = None
        self.chunks_done = 0

    async def run(self) -> None:
        """Serve until the coordinator shuts us down or disappears."""
        reader, writer = await wire.open_connection(
            self.host, self.port, timeout=self.connect_timeout
        )
        pool = ThreadPoolExecutor(max_workers=self.slots, thread_name_prefix="chunk")
        send_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        heartbeat_task: Optional["asyncio.Task"] = None
        chunk_tasks: set = set()
        # Per-chunk revocation flags: a coordinator `cancel` event sets the
        # matching flag and the chunk body stops at its next job boundary.
        chunk_cancels: Dict[str, threading.Event] = {}

        async def send(message: Dict[str, Any]) -> None:
            async with send_lock:
                writer.write(wire.encode_message(message))
                await writer.drain()

        try:
            await send(
                protocol.hello_request(self.name, os.getpid(), self.slots, code_version())
            )
            welcome = await wire.read_message(reader)
            if welcome is None:
                raise WorkerError("coordinator closed the connection during hello")
            if welcome.get("event") == "error":
                raise WorkerError(f"registration rejected: {welcome.get('error')}")
            if welcome.get("event") != "welcome":
                raise WorkerError(f"unexpected registration reply: {welcome}")
            self.worker_id = str(welcome.get("worker"))
            interval = float(welcome.get("heartbeat_seconds", 1.0))

            async def heartbeat_loop() -> None:
                while True:
                    await asyncio.sleep(interval)
                    await send(protocol.heartbeat_request(self.worker_id or ""))

            async def run_chunk(chunk_id: str, blob: str) -> None:
                # The flag was registered by the read loop when the chunk
                # arrived, so a `cancel` processed before this task first
                # runs is still seen.
                cancel = chunk_cancels.get(chunk_id) or threading.Event()
                try:
                    jobs = protocol.unpack_jobs(blob)
                    results = await loop.run_in_executor(
                        pool, _run_jobs, jobs, cancel
                    )
                except asyncio.CancelledError:
                    raise
                except SweepCancelled:
                    # Revoked chunk: the coordinator already disowned it,
                    # so report nothing and stay available for new work.
                    return
                except BaseException as error:  # job failure -> sweep failure
                    if not cancel.is_set():
                        await send(protocol.chunk_failed_request(chunk_id, error))
                    return
                finally:
                    chunk_cancels.pop(chunk_id, None)
                if cancel.is_set():
                    # Revocation raced chunk completion; drop the result —
                    # the coordinator would discard it as a duplicate anyway.
                    return
                try:
                    reply = wire.encode_message(
                        protocol.chunk_done_request(chunk_id, results)
                    )
                except wire.ProtocolError as error:
                    # Results too large for one frame: the sweep must fail
                    # with a diagnosis, never hang waiting on this chunk.
                    await send(
                        protocol.chunk_failed_request(
                            chunk_id,
                            RuntimeError(
                                f"chunk {chunk_id} results exceed the frame "
                                f"limit ({error}); use a smaller chunksize"
                            ),
                        )
                    )
                    return
                async with send_lock:
                    writer.write(reply)
                    await writer.drain()
                self.chunks_done += 1

            def reap_chunk_task(task: "asyncio.Task") -> None:
                chunk_tasks.discard(task)
                if not task.cancelled():
                    task.exception()  # a failed send is fatal via the read loop

            heartbeat_task = asyncio.ensure_future(heartbeat_loop())
            while True:
                message = await wire.read_message(reader)
                if message is None or message.get("event") == "shutdown":
                    break
                if message.get("event") == "chunk":
                    chunk_id = str(message.get("chunk"))
                    chunk_cancels[chunk_id] = threading.Event()
                    task = asyncio.ensure_future(
                        run_chunk(chunk_id, str(message.get("jobs", "")))
                    )
                    chunk_tasks.add(task)
                    task.add_done_callback(reap_chunk_task)
                elif message.get("event") == "cancel":
                    revoked = chunk_cancels.get(str(message.get("chunk")))
                    if revoked is not None:
                        revoked.set()
                elif message.get("event") == "error":
                    raise WorkerError(f"coordinator error: {message.get('error')}")
                # anything else: ignore (forward compatibility)
        except (ConnectionError, OSError, wire.ProtocolError):
            # Coordinator went away mid-stream; exit quietly — the
            # coordinator side reassigns whatever we were running.
            pass
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            for task in list(chunk_tasks):
                task.cancel()
            await asyncio.gather(
                *([heartbeat_task] if heartbeat_task else []),
                *chunk_tasks,
                return_exceptions=True,
            )
            pool.shutdown(wait=False, cancel_futures=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def run_worker(
    connect: str,
    slots: int = 1,
    name: Optional[str] = None,
    connect_timeout: float = 10.0,
) -> int:
    """Synchronous entry point used by ``python -m repro worker``.

    Parameters
    ----------
    connect:
        Coordinator endpoint as ``HOST:PORT`` (the address the submitting
        process passed to ``--connect``, or printed in ``cluster status``).
    slots:
        Chunks run concurrently by this worker (default 1: parallelism
        comes from running one worker per core).
    name:
        Display name in ``cluster status``; default ``<hostname>-<pid>``.
    connect_timeout:
        Retry-with-backoff budget while the coordinator is still binding.

    Returns the process exit code: ``0`` on clean shutdown (coordinator
    closed the cluster), ``1`` on registration / transport failure —
    version-mismatch rejections land here, printed to stdout.

    Raises
    ------
    ValueError
        For a malformed ``connect`` address or ``slots < 1``.
    """
    host, port = parse_address(connect)
    worker = Worker(host, port, slots=slots, name=name, connect_timeout=connect_timeout)
    try:
        asyncio.run(worker.run())
    except (WorkerError, ConnectionError, OSError) as error:
        print(f"worker error: {error}", flush=True)
        return 1
    except KeyboardInterrupt:
        pass
    return 0
