"""Wire protocol of the distributed executor: coordinator <-> workers.

Messages ride the shared newline-delimited-JSON framing of
:mod:`repro.wire` (one JSON object per line, 8 MB frame guard) over plain
TCP, the same substrate the sweep service speaks.  Two kinds of peers talk
to a :class:`~repro.cluster.coordinator.Coordinator`:

**Workers** (``python -m repro worker --connect HOST:PORT``):

``{"op": "hello", "name": ..., "pid": ..., "slots": N,
   "protocol": 1, "code_version": ...}``
    Registration.  The coordinator answers ``welcome`` (assigning the
    worker id and the heartbeat interval) or ``error`` (protocol or code
    version mismatch — a worker running different code must never compute
    shards, the results would not be bit-identical).
``{"op": "heartbeat", "worker": <id>}``
    Periodic liveness beacon; a worker silent for longer than the
    coordinator's heartbeat timeout is declared dead and its chunks are
    reassigned.
``{"op": "chunk_done", "chunk": <id>, "results": <blob>}``
    One finished chunk; ``results`` is the pickled result list
    (:func:`pack_results`).
``{"op": "chunk_failed", "chunk": <id>, "error": ..., "exception": <blob>}``
    A job *raised* on the worker (distinct from the worker dying).  The
    coordinator fails the whole sweep with the unpickled exception, exactly
    as the serial executor would have propagated it.

**Control clients** (``python -m repro cluster status``):

``{"op": "status", "id": ...}``
    Answered with a ``status`` event: workers, queue depths, dispatch /
    steal / retry counters.
``{"op": "ping", "id": ...}``
    Answered with ``pong``.

Coordinator -> worker events:

``welcome``   — registration accepted; carries ``worker`` (assigned id) and
                ``heartbeat_seconds``.
``chunk``     — one chunk of jobs to run: ``chunk`` (id) plus ``jobs``
                (:func:`pack_jobs` blob).
``cancel``    — drop one in-flight chunk (``chunk`` id): its run was
                cancelled.  The worker stops at the next job boundary and
                reports nothing; a result that still arrives is counted as
                a harmless duplicate and discarded.
``shutdown``  — drain and exit; also implied by end-of-stream.

Job chunks and results cross the wire as base64-wrapped pickles inside the
JSON frame.  That keeps the framing uniform (and debuggable) while letting
arbitrary job arguments — technology cards, multiplier objects, NumPy
seeds — travel to the workers.  Pickle implies *trusted peers only*: the
coordinator binds loopback by default, and deployments that spread workers
across hosts are expected to run inside one trust domain (the same stance
``multiprocessing`` takes).  Cache codecs (``encode`` / ``decode``) are
stripped before pickling: artifact caching is resolved coordinator-side
(see :class:`repro.runtime.SweepEngine`), so workers only ever see cache
misses and lambda codecs never break job transport.
"""

from __future__ import annotations

import base64
import dataclasses
import pickle
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.jobs import Job

#: Bumped on incompatible cluster-wire changes; checked during ``hello``.
#: Version 2 added the ``cancel`` event (coordinator -> worker chunk
#: revocation for cancelled runs).
CLUSTER_PROTOCOL_VERSION = 2


# ----------------------------------------------------------------------
# Pickle transport helpers
# ----------------------------------------------------------------------
def _pack(payload: Any) -> str:
    return base64.b64encode(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def _unpack(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def pack_jobs(jobs: Sequence[Job]) -> str:
    """Serialise a chunk of jobs for the wire.

    Cache codecs are stripped (workers never touch the artifact cache), so
    jobs whose ``encode`` / ``decode`` are closures or lambdas — legal for
    every in-process executor — remain transportable.  ``fn`` itself must
    be a module-level callable, the same constraint the process-pool
    executor imposes.
    """
    stripped = [dataclasses.replace(job, key=None, encode=None, decode=None) for job in jobs]
    return _pack(stripped)


def unpack_jobs(blob: str) -> List[Job]:
    """Deserialise a :func:`pack_jobs` chunk."""
    return list(_unpack(blob))


def pack_results(results: Sequence[Any]) -> str:
    """Serialise a chunk's result list for the wire."""
    return _pack(list(results))


def unpack_results(blob: str) -> List[Any]:
    """Deserialise a :func:`pack_results` list."""
    return list(_unpack(blob))


def pack_exception(error: BaseException) -> str:
    """Serialise a job exception (best effort — falls back to the repr)."""
    try:
        return _pack(error)
    except Exception:
        return _pack(RuntimeError(f"{type(error).__name__}: {error}"))


def unpack_exception(blob: Optional[str], message: str) -> BaseException:
    """Recover a job exception; a transport failure degrades to RuntimeError."""
    if blob:
        try:
            recovered = _unpack(blob)
            if isinstance(recovered, BaseException):
                return recovered
        except Exception:
            pass
    return RuntimeError(message)


# ----------------------------------------------------------------------
# Message constructors (shared by coordinator and worker so field names
# can never drift apart)
# ----------------------------------------------------------------------
def hello_request(name: str, pid: int, slots: int, code_version: str) -> Dict[str, Any]:
    return {
        "op": "hello",
        "name": name,
        "pid": pid,
        "slots": slots,
        "protocol": CLUSTER_PROTOCOL_VERSION,
        "code_version": code_version,
    }


def welcome_event(worker_id: str, heartbeat_seconds: float) -> Dict[str, Any]:
    return {"event": "welcome", "worker": worker_id, "heartbeat_seconds": heartbeat_seconds}


def heartbeat_request(worker_id: str) -> Dict[str, Any]:
    return {"op": "heartbeat", "worker": worker_id}


def chunk_event(chunk_id: str, jobs: Sequence[Job]) -> Dict[str, Any]:
    return {"event": "chunk", "chunk": chunk_id, "jobs": pack_jobs(jobs)}


def chunk_done_request(chunk_id: str, results: Sequence[Any]) -> Dict[str, Any]:
    return {"op": "chunk_done", "chunk": chunk_id, "results": pack_results(results)}


def chunk_failed_request(chunk_id: str, error: BaseException) -> Dict[str, Any]:
    return {
        "op": "chunk_failed",
        "chunk": chunk_id,
        "error": f"{type(error).__name__}: {error}",
        "exception": pack_exception(error),
    }


def cancel_event(chunk_id: str) -> Dict[str, Any]:
    return {"event": "cancel", "chunk": chunk_id}


def shutdown_event() -> Dict[str, Any]:
    return {"event": "shutdown"}


def error_event(message: str) -> Dict[str, Any]:
    return {"event": "error", "error": message}
