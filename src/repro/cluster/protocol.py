"""Wire protocol of the distributed executor: coordinator <-> workers.

Messages ride the shared newline-delimited-JSON framing of
:mod:`repro.wire` (one JSON object per line, 8 MB frame guard) over plain
TCP, the same substrate the sweep service speaks.  Two kinds of peers talk
to a :class:`~repro.cluster.coordinator.Coordinator`:

**Workers** (``python -m repro worker --connect HOST:PORT``):

``{"op": "hello", "name": ..., "pid": ..., "slots": N,
   "protocol": 1, "code_version": ...}``
    Registration.  The coordinator answers ``welcome`` (assigning the
    worker id and the heartbeat interval) or ``error`` (protocol or code
    version mismatch — a worker running different code must never compute
    shards, the results would not be bit-identical).
``{"op": "heartbeat", "worker": <id>}``
    Periodic liveness beacon; a worker silent for longer than the
    coordinator's heartbeat timeout is declared dead and its chunks are
    reassigned.
``{"op": "chunk_done", "chunk": <id>, "results": <blob>, "count": N,
   ["trace": <id>]}``
    One finished chunk; ``results`` is the pickled result list
    (:func:`pack_results`) and ``count`` its length.  After a granted
    ``split`` this is a **partial-completion ack**: ``count`` equals the
    ``kept`` value of the preceding ``split_ack`` and the results cover
    only the kept prefix of the chunk's jobs.  ``trace`` echoes the
    optional observability id the chunk was dispatched with.
``{"op": "chunk_done", "chunk": <id>, "count": N, "arrays": [...],
   "binary": B, ...payload...}``
    Protocol v5 **binary completion**: when every result in the chunk is a
    NumPy array, the worker ships them as one :mod:`repro.wire` binary
    frame — ``arrays`` carries the dtype/shape specs
    (:func:`repro.wire.pack_arrays`) and the ``B`` raw payload bytes
    follow the header line.  No ``results`` field; the coordinator
    rebuilds the arrays zero-copy with :func:`repro.wire.unpack_arrays`.
``{"op": "chunk_done", "chunk": <id>, "count": N, "arrays": [...],
   "shm": <name>, "digest": <sha256 hex>, "size": B}``
    Protocol v5 **shared-memory completion** (same-host workers only): the
    payload bytes live in the named ``multiprocessing.shared_memory``
    segment instead of crossing the socket.  The coordinator attaches,
    verifies the SHA-256 ``digest`` over the ``size`` payload bytes,
    copies the results out and unlinks the segment; the worker keeps its
    handle until shutdown so a coordinator crash cannot leak the segment.
``{"op": "split_ack", "chunk": <id>, "kept": K}``
    Answer to a coordinator ``split`` event (protocol v3).  ``K`` is the
    number of leading jobs the worker keeps (already started jobs can
    never be handed back, so ``K >= jobs started``); the coordinator
    reassigns the chunk's unstarted tail.  ``kept: null`` declines the
    split — the chunk already finished or was never held.
``{"op": "chunk_failed", "chunk": <id>, "error": ..., "exception": <blob>,
   ["code": "results_overflow"]}``
    A job *raised* on the worker (distinct from the worker dying).  The
    coordinator fails the whole sweep with the unpickled exception, exactly
    as the serial executor would have propagated it.  Exception: with
    ``code: "results_overflow"`` (the chunk's pickled results exceed the
    frame limit) and more than one job in the chunk, the coordinator
    *refits* — halves and requeues the chunk — instead of failing.

**Control clients** (``python -m repro cluster status``):

``{"op": "status", "id": ...}``
    Answered with a ``status`` event: workers, queue depths, dispatch /
    steal / retry counters.
``{"op": "ping", "id": ...}``
    Answered with ``pong``.
``{"op": "watch", "id": ...}``
    Answered with ``{"event": "watching", "id": ...}`` and then a live
    stream of ``{"event": "obs", "id": ..., "data": {...}}`` frames, one
    per :mod:`repro.obs` event (``python -m repro cluster status
    --watch`` drives its table from this stream).  The stream ends when
    the client disconnects or the coordinator shuts down.

Coordinator -> worker events:

``welcome``   — registration accepted; carries ``worker`` (assigned id) and
                ``heartbeat_seconds``.
``chunk``     — one chunk of jobs to run: ``chunk`` (id) plus ``jobs``
                (:func:`pack_jobs` blob), plus an optional ``trace``
                observability id (absent when the run has none — old
                workers simply never see the field, so v3 stays
                wire-compatible).
``split``     — give back the unstarted tail of one in-flight chunk
                (``chunk`` id, ``keep`` floor): the adaptive scheduler
                detected a straggler and wants to reassign the tail to an
                idle worker.  Always answered with ``split_ack``; the
                worker then finishes only the kept prefix and reports it
                via a partial ``chunk_done``.
``cancel``    — drop one in-flight chunk (``chunk`` id): its run was
                cancelled.  The worker stops at the next job boundary and
                reports nothing; a result that still arrives is counted as
                a harmless duplicate and discarded.
``shutdown``  — drain and exit; also implied by end-of-stream.

Job chunks (and results that are not plain NumPy arrays) cross the wire as
base64-wrapped pickles inside the JSON frame.  That keeps the framing
uniform (and debuggable) while letting arbitrary job arguments —
technology cards, multiplier objects, NumPy seeds — travel to the
workers.  All-array chunk results take the protocol-v5 binary frame
instead: raw dtype/shape-tagged buffers with no base64 inflation and no
pickling, optionally handed over through shared memory on the same host.
Pickle implies *trusted peers only*: the
coordinator binds loopback by default, and deployments that spread workers
across hosts are expected to run inside one trust domain (the same stance
``multiprocessing`` takes).  Cache codecs (``encode`` / ``decode``) are
stripped before pickling: artifact caching is resolved coordinator-side
(see :class:`repro.runtime.SweepEngine`), so workers only ever see cache
misses and lambda codecs never break job transport.
"""

from __future__ import annotations

import base64
import dataclasses
import pickle
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.jobs import Job

#: Bumped on incompatible cluster-wire changes; checked during ``hello``.
#: Version 2 added the ``cancel`` event (coordinator -> worker chunk
#: revocation for cancelled runs).  Version 3 added the adaptive-scheduler
#: frames: the ``split`` event, the ``split_ack`` / partial ``chunk_done``
#: acks, and the ``count`` field on ``chunk_done``.  Version 5 added the
#: binary ``chunk_done`` completions (raw array payloads via
#: :mod:`repro.wire` binary frames) and the same-host shared-memory
#: handoff (``shm`` / ``digest`` / ``size`` fields); version 4 was skipped
#: so both wire tiers — this protocol and the service protocol — advertise
#: the same version for the shared binary-frame substrate.
CLUSTER_PROTOCOL_VERSION = 5

#: Worker -> coordinator ``op`` vocabulary.  Like the service tuples in
#: :mod:`repro.service.protocol`, these are pinned three ways: documented
#: frame-by-frame in ``docs/protocol.md`` (checked by
#: ``tests/test_docs.py``) and enforced at every send/match site by the
#: ``REPRO-PROTO01`` lint rule — a frame type not listed here cannot ship.
WORKER_OPS = ("hello", "heartbeat", "chunk_done", "split_ack", "chunk_failed")

#: Control-client -> coordinator ``op`` vocabulary (``cluster status``).
CONTROL_OPS = ("status", "ping", "watch")

#: Coordinator -> peer ``event`` vocabulary (workers and control clients).
COORDINATOR_EVENTS = (
    "welcome",
    "chunk",
    "split",
    "cancel",
    "shutdown",
    "error",
    "status",
    "pong",
    "watching",
    "obs",
)


# ----------------------------------------------------------------------
# Pickle transport helpers
# ----------------------------------------------------------------------
def _pack(payload: Any) -> str:
    return base64.b64encode(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def _unpack(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def pack_jobs(jobs: Sequence[Job]) -> str:
    """Serialise a chunk of jobs for the wire.

    Cache codecs are stripped (workers never touch the artifact cache), so
    jobs whose ``encode`` / ``decode`` are closures or lambdas — legal for
    every in-process executor — remain transportable.  ``fn`` itself must
    be a module-level callable, the same constraint the process-pool
    executor imposes.
    """
    stripped = [dataclasses.replace(job, key=None, encode=None, decode=None) for job in jobs]
    return _pack(stripped)


def unpack_jobs(blob: str) -> List[Job]:
    """Deserialise a :func:`pack_jobs` chunk."""
    return list(_unpack(blob))


def pack_results(results: Sequence[Any]) -> str:
    """Serialise a chunk's result list for the wire."""
    return _pack(list(results))


def unpack_results(blob: str) -> List[Any]:
    """Deserialise a :func:`pack_results` list."""
    return list(_unpack(blob))


def pack_exception(error: BaseException) -> str:
    """Serialise a job exception (best effort — falls back to the repr)."""
    try:
        return _pack(error)
    except Exception:
        return _pack(RuntimeError(f"{type(error).__name__}: {error}"))


def unpack_exception(blob: Optional[str], message: str) -> BaseException:
    """Recover a job exception; a transport failure degrades to RuntimeError."""
    if blob:
        try:
            recovered = _unpack(blob)
            if isinstance(recovered, BaseException):
                return recovered
        except Exception:  # repro: ignore[REPRO-ERR01] -- documented degradation: an undecodable exception blob falls back to the RuntimeError below
            pass
    return RuntimeError(message)


# ----------------------------------------------------------------------
# Message constructors (shared by coordinator and worker so field names
# can never drift apart)
# ----------------------------------------------------------------------
def hello_request(name: str, pid: int, slots: int, code_version: str) -> Dict[str, Any]:
    return {
        "op": "hello",
        "name": name,
        "pid": pid,
        "slots": slots,
        "protocol": CLUSTER_PROTOCOL_VERSION,
        "code_version": code_version,
    }


def welcome_event(worker_id: str, heartbeat_seconds: float) -> Dict[str, Any]:
    return {"event": "welcome", "worker": worker_id, "heartbeat_seconds": heartbeat_seconds}


def heartbeat_request(worker_id: str) -> Dict[str, Any]:
    return {"op": "heartbeat", "worker": worker_id}


def chunk_event(
    chunk_id: str, jobs: Sequence[Job], trace: Optional[str] = None
) -> Dict[str, Any]:
    """One chunk of work.  ``trace`` (optional, protocol v3 stays
    wire-compatible: absent on the wire when ``None``) is the originating
    request's observability id; workers echo it on ``chunk_done`` so a
    completion stays attributable across tiers."""
    message = {"event": "chunk", "chunk": chunk_id, "jobs": pack_jobs(jobs)}
    if trace is not None:
        message["trace"] = trace
    return message


def chunk_done_request(
    chunk_id: str, results: Sequence[Any], trace: Optional[str] = None
) -> Dict[str, Any]:
    """Completion ack; ``count`` < the dispatched job count after a split.

    ``trace`` echoes the optional trace id of the ``chunk`` event that
    dispatched this work (omitted from the frame when ``None``)."""
    message = {
        "op": "chunk_done",
        "chunk": chunk_id,
        "results": pack_results(results),
        "count": len(results),
    }
    if trace is not None:
        message["trace"] = trace
    return message


def chunk_done_binary_header(
    chunk_id: str,
    specs: Sequence[Dict[str, Any]],
    count: int,
    trace: Optional[str] = None,
) -> Dict[str, Any]:
    """Header of a protocol-v5 binary completion.

    The worker encodes this with :func:`repro.wire.encode_binary` around
    the :func:`repro.wire.pack_arrays` payload; ``specs`` is the codec's
    dtype/shape list and ``count`` the number of results (== number of
    arrays).  No ``results`` field rides along — the payload *is* the
    result list."""
    message: Dict[str, Any] = {
        "op": "chunk_done",
        "chunk": chunk_id,
        "count": int(count),
        "arrays": list(specs),
    }
    if trace is not None:
        message["trace"] = trace
    return message


def chunk_done_shm_request(
    chunk_id: str,
    specs: Sequence[Dict[str, Any]],
    count: int,
    shm_name: str,
    digest: str,
    size: int,
    trace: Optional[str] = None,
) -> Dict[str, Any]:
    """Protocol-v5 shared-memory completion (same-host workers only).

    The array payload lives in the named shared-memory segment rather
    than following the header on the socket; ``digest`` is the SHA-256
    hex digest over the ``size`` payload bytes, verified by the
    coordinator before the results are trusted."""
    message = chunk_done_binary_header(chunk_id, specs, count, trace)
    message["shm"] = shm_name
    message["digest"] = digest
    message["size"] = int(size)
    return message


def split_event(chunk_id: str, keep: int) -> Dict[str, Any]:
    """Ask a worker to hand back the unstarted tail of an in-flight chunk.

    ``keep`` is the floor on how many leading jobs the worker keeps; the
    scheduler's straggler split passes ``keep=0`` ("keep only what you
    already started").
    """
    return {"event": "split", "chunk": chunk_id, "keep": int(keep)}


def split_ack_request(chunk_id: str, kept: Optional[int]) -> Dict[str, Any]:
    """Worker's answer to ``split``: ``kept`` jobs retained, or ``None``
    when the split is declined (chunk finished or unknown)."""
    return {"op": "split_ack", "chunk": chunk_id, "kept": kept}


#: ``chunk_failed`` code marking a *transport* failure (results frame over
#: the wire limit) rather than a job failure: the coordinator refits the
#: chunk smaller instead of failing the sweep (unless it is a single job).
RESULTS_OVERFLOW = "results_overflow"


def chunk_failed_request(
    chunk_id: str, error: BaseException, code: Optional[str] = None
) -> Dict[str, Any]:
    message: Dict[str, Any] = {
        "op": "chunk_failed",
        "chunk": chunk_id,
        "error": f"{type(error).__name__}: {error}",
        "exception": pack_exception(error),
    }
    if code is not None:
        message["code"] = code
    return message


def cancel_event(chunk_id: str) -> Dict[str, Any]:
    return {"event": "cancel", "chunk": chunk_id}


def shutdown_event() -> Dict[str, Any]:
    return {"event": "shutdown"}


def error_event(message: str) -> Dict[str, Any]:
    return {"event": "error", "error": message}
