"""Structured event bus behind the service's ``watch`` op.

Every tier publishes what it *does* — submits accepted, chunks
dispatched / split / stolen, cache hits and evictions, workers joining
and dying — as small JSON-ready dicts on one process-wide bus
(:data:`EVENTS`).  Subscribers are plain callables; the service bridges
them onto asyncio queues to fan events out to ``watch`` clients
(NDJSON), and the coordinator does the same for
``python -m repro cluster status --watch``.

Ordering is a guarantee, not an accident: :meth:`EventBus.emit` assigns
a monotonically increasing ``seq`` and delivers to all subscribers under
the bus lock, so two events observed by any single subscriber can never
arrive out of ``seq`` order.  Subscriber callbacks must therefore be
quick and non-blocking (enqueue and return); a callback that raises is
dropped from that delivery, never propagated into the emitting tier.

Events carry the originating request's ``trace`` id whenever one exists,
which is what makes a single sweep followable across client → service →
coordinator → worker (see ``docs/observability.md``).

>>> bus = EventBus()
>>> seen = []
>>> unsubscribe_me = bus.subscribe(seen.append)
>>> event = bus.emit("run_started", trace="t-1", jobs=48)
>>> event["type"], event["trace"], event["jobs"]
('run_started', 't-1', 48)
>>> second = bus.emit("run_finished", trace="t-1", jobs=48)
>>> second["seq"] > event["seq"]
True
>>> [e["type"] for e in seen]
['run_started', 'run_finished']
>>> bus.emit("not_a_thing")
Traceback (most recent call last):
    ...
ValueError: unknown event type 'not_a_thing'
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import REGISTRY

__all__ = ["EVENT_TYPES", "EventBus", "EVENTS"]

#: Every event type any tier may emit; ``emit`` rejects anything else so
#: the documented vocabulary (docs/observability.md) cannot drift.
EVENT_TYPES = (
    # service tier
    "submit_accepted",
    "run_result",
    "run_failed",
    "run_cancelled",
    "journal_replay",
    # engine tier
    "run_started",
    "cache_resolved",
    "run_finished",
    # artifact cache
    "cache_hit",
    "cache_miss",
    "cache_write",
    "cache_evict",
    # cluster tier
    "chunk_dispatched",
    "chunk_done",
    "chunk_split",
    "chunk_stolen",
    "worker_joined",
    "worker_lost",
    # multi-tenant scheduler (repro.sched policy, coordinator mechanism)
    "preempted",
    "resumed",
)

_EVENTS_TOTAL = REGISTRY.counter(
    "repro_obs_events_total",
    "Structured observability events emitted, by type.",
    labels=("type",),
)

_SUBSCRIBER_ERRORS_TOTAL = REGISTRY.counter(
    "repro_obs_subscriber_errors_total",
    "Event-bus subscriber callbacks that raised (event delivered to the "
    "others; the failure is counted here instead of propagating).",
)

Subscriber = Callable[[Dict[str, Any]], None]


class EventBus:
    """Thread-safe publish/subscribe fan-out of observability events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._subscribers: List[Subscriber] = []

    def subscribe(self, callback: Subscriber) -> Subscriber:
        """Register ``callback`` for every future event; returns it back
        so ``bus.unsubscribe(bus.subscribe(cb))`` round-trips."""
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def emit(self, type: str, trace: Optional[str] = None, **fields: Any) -> Dict[str, Any]:
        """Publish one event; returns the dict that subscribers saw.

        ``seq`` assignment and delivery happen under one lock, so any
        single subscriber observes events in strictly increasing ``seq``
        order.  ``trace`` is included only when the emitting tier knows
        the originating request id.
        """
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}")
        _EVENTS_TOTAL.inc(type=type)
        with self._lock:
            self._seq += 1
            event: Dict[str, Any] = {"seq": self._seq, "ts": time.time(), "type": type}
            if trace is not None:
                event["trace"] = trace
            event.update(fields)
            for callback in list(self._subscribers):
                try:
                    callback(event)
                except Exception:
                    # Observability must never take the emitter down — but
                    # a raising subscriber must not vanish either (it means
                    # a watch bridge or status view is broken): count it.
                    _SUBSCRIBER_ERRORS_TOTAL.inc()
        return event


#: The process-wide bus every tier emits on (and ``watch`` streams from).
EVENTS = EventBus()
