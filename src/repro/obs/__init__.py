"""repro.obs — process-wide observability: metrics, events, exposition.

The fourth cross-cutting layer of the repository (engine → service →
cluster all publish into it): a dependency-free metrics registry with
Prometheus text exposition (:mod:`repro.obs.metrics`), a structured
event bus with monotonic sequence numbers (:mod:`repro.obs.events`), and
a tiny HTTP endpoint serving ``GET /metrics``
(:mod:`repro.obs.http`).  Nothing in this package imports the tiers it
observes, so any module may ``from repro import obs`` without cycles.

One registry, three read paths — all backed by the same counters:

* ``python -m repro serve --metrics-port N`` (and ``worker`` /
  ``run`` with the same flag) scrape as Prometheus text;
* the service's ``watch`` op streams :data:`~repro.obs.events.EVENTS`
  to clients as NDJSON frames;
* the ``status`` op reads the very same counters through
  baseline-relative :class:`~repro.obs.metrics.CounterGroup` views.

A ``trace`` id minted at ``submit`` rides every metric-adjacent event
across all tiers; see ``docs/observability.md`` for the metric
reference, the naming rule (:data:`~repro.obs.metrics.METRIC_NAME_RE`)
and the propagation diagram.

Quickstart::

    from repro import obs

    requests = obs.counter("repro_demo_requests_total", "Requests.",
                           labels=("op",))
    requests.inc(op="status")
    obs.EVENTS.emit("run_started", trace="t-1", jobs=48)
    print(obs.REGISTRY.render())          # Prometheus 0.0.4 text
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import EVENT_TYPES, EVENTS, EventBus
from repro.obs.http import CONTENT_TYPE, MetricsServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_NAME_RE,
    REGISTRY,
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "CounterGroup",
    "DEFAULT_BUCKETS",
    "EVENTS",
    "EVENT_TYPES",
    "EventBus",
    "Gauge",
    "Histogram",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "MetricsServer",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "parse_exposition",
]


def counter(name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
    """Get-or-create a counter in the process-wide :data:`REGISTRY`."""
    return REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
    """Get-or-create a gauge in the process-wide :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help, labels)


def histogram(
    name: str,
    help: str = "",
    labels: Iterable[str] = (),
    buckets: Iterable[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram in the process-wide :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help, labels, buckets=buckets)
