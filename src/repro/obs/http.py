"""Prometheus exposition endpoint: ``GET /metrics`` over plain asyncio.

A deliberately tiny HTTP server — no frameworks, no dependencies — that
answers ``GET /metrics`` (or ``/``) with
:meth:`~repro.obs.metrics.MetricsRegistry.render` and the standard
``text/plain; version=0.0.4`` content type Prometheus scrapers expect,
plus ``GET /healthz`` for load-balancer liveness checks.  Anything else
is a 404; anything that is not a ``GET`` is a 400.  Every response
closes the connection (``Connection: close``), which keeps the server
one screenful of code and is exactly how scrape clients behave.

The request/response plumbing itself lives in :mod:`repro.httpd` and is
shared with the REST/SSE gateway (:mod:`repro.gateway`); this module
only supplies the routes.

Embedding:

* the service (``python -m repro serve --metrics-port N``) and the
  cluster :class:`~repro.cluster.worker.Worker` start it on their own
  event loop via :meth:`MetricsServer.start`;
* loop-less hosts (``python -m repro run --metrics-port N``, whose
  coordinator lives on the distributed executor's private thread) use
  :meth:`MetricsServer.start_in_thread`, which runs a daemon event loop
  just for the endpoint.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro import httpd
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["CONTENT_TYPE", "MetricsServer"]

#: The exposition-format content type scrapers negotiate on.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SCRAPES_TOTAL = REGISTRY.counter(
    "repro_obs_scrapes_total",
    "HTTP requests answered by the metrics endpoint, by status code.",
    labels=("code",),
)


class MetricsServer:
    """Serve one registry's exposition text on ``host:port``.

    ``port=0`` binds an ephemeral port; the bound port is published on
    ``self.port`` after :meth:`start` (or :meth:`start_in_thread`)
    returns, which is how tests and the CLI banner discover it.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry if registry is not None else REGISTRY
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None

    async def start(self) -> "MetricsServer":
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _respond(self, request: Optional[httpd.HttpRequest]) -> Tuple[int, bytes]:
        """Route one parsed request to a complete response."""
        if request is None or request.method != "GET":
            body = b"metrics endpoint speaks GET only\n"
            return 400, httpd.render_response(400, body, content_type=CONTENT_TYPE)
        if request.path in ("/metrics", "/"):
            payload = self.registry.render().encode("utf-8")
            return 200, httpd.render_response(200, payload, content_type=CONTENT_TYPE)
        if request.path == "/healthz":
            return 200, httpd.json_response(200, {"status": "ok"})
        body = b"try /metrics\n"
        return 404, httpd.render_response(404, body, content_type=CONTENT_TYPE)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                # Scrape requests have no body worth speaking of; anything
                # claiming more than a few kB is not a scraper.
                request = await httpd.read_request(
                    reader, max_body_bytes=16_384, timeout=5.0
                )
            except httpd.HttpError as error:
                code, response = error.status, httpd.error_response(
                    error.status, str(error)
                )
            else:
                if request is None:
                    return
                code, response = self._respond(request)
            _SCRAPES_TOTAL.inc(code=str(code))
            writer.write(response)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # repro: ignore[REPRO-ERR01] -- close() on an already-broken scrape socket has nothing left to report
                pass

    # ------------------------------------------------------------------
    # Loop-less hosts: run the endpoint on a private daemon thread
    # ------------------------------------------------------------------
    def start_in_thread(self, timeout: float = 10.0) -> "MetricsServer":
        """Start the endpoint on its own daemon event-loop thread."""
        started = threading.Event()
        failure: list = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except Exception as error:  # bind failure: surface to caller
                failure.append(error)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        self._thread = threading.Thread(target=_run, name="repro-metrics", daemon=True)
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("metrics endpoint failed to start in time")
        if failure:
            raise failure[0]
        return self

    def stop_in_thread(self, timeout: float = 10.0) -> None:
        if self._thread_loop is not None:
            self._thread_loop.call_soon_threadsafe(self._thread_loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
        self._thread = None
        self._thread_loop = None
