"""Dependency-free metrics registry with Prometheus text exposition.

The observability layer's accounting core: counters, gauges and
histograms — optionally labelled — registered process-wide and rendered
in the Prometheus text exposition format 0.0.4 by
:meth:`MetricsRegistry.render`.  Like :mod:`repro.telemetry`, this module
is pure bookkeeping: no sockets, no threads of its own (every mutation is
guarded by a per-metric lock, so any tier may increment from any thread),
no third-party dependencies.  The HTTP endpoint that serves the rendered
text lives in :mod:`repro.obs.http`; the structured event stream in
:mod:`repro.obs.events`.

Naming is enforced, not advised: every metric registered here must match
:data:`METRIC_NAME_RE` — ``repro_<subsystem>_<what>_<unit>`` where the
unit suffix is one of ``total`` / ``bytes`` / ``seconds`` / ``ratio`` —
so the scrape surface stays greppable and the CI naming lint can never
drift from the code (it asserts the same regex).  By repo convention the
``_total`` suffix is also used for *gauges counting things* (live
connections, alive workers); see ``docs/observability.md``.

>>> registry = MetricsRegistry()
>>> jobs = registry.counter("repro_demo_jobs_total", "Jobs executed.")
>>> jobs.inc()
>>> jobs.inc(2)
>>> jobs.value()
3.0
>>> hits = registry.counter("repro_demo_cache_total", "Cache ops.",
...                         labels=("event",))
>>> hits.inc(event="hit")
>>> hits.value(event="hit"), hits.value(event="miss")
(1.0, 0.0)
>>> registry.counter("demo_bad_name")
Traceback (most recent call last):
    ...
ValueError: metric name 'demo_bad_name' does not match repro_[a-z_]+_(total|bytes|seconds|ratio)
>>> print(registry.render())  # doctest: +NORMALIZE_WHITESPACE
# HELP repro_demo_cache_total Cache ops.
# TYPE repro_demo_cache_total counter
repro_demo_cache_total{event="hit"} 1
# HELP repro_demo_jobs_total Jobs executed.
# TYPE repro_demo_jobs_total counter
repro_demo_jobs_total 3
<BLANKLINE>
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "METRIC_NAME_RE",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CounterGroup",
    "REGISTRY",
    "parse_exposition",
]

#: Enforced at registration time and by the CI naming lint: metric names
#: are ``repro_``-prefixed snake case ending in a unit suffix.
METRIC_NAME_RE = re.compile(r"^repro_[a-z_]+_(total|bytes|seconds|ratio)$")

#: Prometheus label names: snake case, no leading digit.
LABEL_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, like prometheus_client).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

LabelKey = Tuple[str, ...]
Sample = Tuple[str, Dict[str, str], float]


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints stay ints)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class _Metric:
    """Shared plumbing: name/help/label validation and sample locking."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Iterable[str] = ()):
        if not METRIC_NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} does not match "
                "repro_[a-z_]+_(total|bytes|seconds|ratio)"
            )
        label_names = tuple(labels)
        for label in label_names:
            if not LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.labels = label_names
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> LabelKey:
        if set(labels) != set(self.labels):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labels}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labels)

    def _labels_dict(self, key: LabelKey) -> Dict[str, str]:
        return dict(zip(self.labels, key))

    def samples(self) -> List[Sample]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing sample set (one per label combination).

    >>> c = Counter("repro_demo_events_total", labels=("kind",))
    >>> c.inc(kind="split"); c.inc(3, kind="split")
    >>> c.value(kind="split")
    4.0
    >>> c.inc(-1, kind="split")
    Traceback (most recent call last):
        ...
    ValueError: counter repro_demo_events_total cannot decrease
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Iterable[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labels:
            items = [((), 0.0)]
        return [("", self._labels_dict(key), value) for key, value in items]


class Gauge(_Metric):
    """A value that can go both ways (live connections, cache bytes).

    Either driven imperatively (:meth:`set` / :meth:`inc` / :meth:`dec`)
    or read at scrape time from a callback (:meth:`set_function`).

    >>> g = Gauge("repro_demo_queue_total")
    >>> g.set(5); g.dec(); g.value()
    4.0
    >>> g.set_function(lambda: 7)
    >>> g.value()
    7.0
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Iterable[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}
        self._functions: Dict[LabelKey, Callable[[], float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels: Any) -> None:
        """Read the gauge from ``fn`` at scrape time (overrides stored value)."""
        key = self._key(labels)
        with self._lock:
            self._functions[key] = fn

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            fn = self._functions.get(key)
            if fn is None:
                return self._values.get(key, 0.0)
        return float(fn())

    def samples(self) -> List[Sample]:
        with self._lock:
            keys = set(self._values) | set(self._functions)
            functions = dict(self._functions)
            values = dict(self._values)
        if not keys and not self.labels:
            keys = {()}
        samples = []
        for key in sorted(keys):
            fn = functions.get(key)
            value = float(fn()) if fn is not None else values.get(key, 0.0)
            samples.append(("", self._labels_dict(key), value))
        return samples


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus ``le`` convention).

    >>> h = Histogram("repro_demo_run_seconds", buckets=(0.1, 1.0))
    >>> h.observe(0.05); h.observe(0.5); h.observe(5.0)
    >>> h.count(), round(h.sum(), 2)
    (3, 5.55)
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labels)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        # per label key: [per-bucket counts..., +Inf count], sum
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            counts = {key: list(value) for key, value in self._counts.items()}
            sums = dict(self._sums)
        if not counts and not self.labels:
            counts = {(): [0] * (len(self.buckets) + 1)}
            sums = {(): 0.0}
        samples: List[Sample] = []
        for key in sorted(counts):
            labels = self._labels_dict(key)
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts[key]):
                cumulative += bucket_count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                samples.append(("_bucket", bucket_labels, float(cumulative)))
            cumulative += counts[key][-1]
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            samples.append(("_bucket", inf_labels, float(cumulative)))
            samples.append(("_sum", labels, sums.get(key, 0.0)))
            samples.append(("_count", labels, float(cumulative)))
        return samples


class MetricsRegistry:
    """Get-or-create home of every metric in the process.

    Registration is idempotent: asking again for the same name with the
    same type and label set returns the existing metric (so any module
    can declare the metrics it touches without import-order coupling);
    asking with a *different* type or labels raises.

    >>> registry = MetricsRegistry()
    >>> a = registry.counter("repro_demo_ticks_total")
    >>> b = registry.counter("repro_demo_ticks_total")
    >>> a is b
    True
    >>> registry.gauge("repro_demo_ticks_total")
    Traceback (most recent call last):
        ...
    ValueError: metric 'repro_demo_ticks_total' already registered as counter, not gauge
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str,
                       labels: Iterable[str], **kwargs: Any) -> _Metric:
        label_names = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labels != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labels}, not {label_names}"
                    )
                return existing
            metric = cls(name, help, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labels, buckets=tuple(buckets)
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered metric names, sorted (the naming-lint surface)."""
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for suffix, labels, value in metric.samples():
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(str(val))}"'
                        for key, val in labels.items()
                    )
                    lines.append(
                        f"{metric.name}{suffix}{{{rendered}}} {_format_value(value)}"
                    )
                else:
                    lines.append(f"{metric.name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


#: The process-wide registry every tier registers into (and the
#: HTTP endpoint renders).  Tests needing isolation construct their own
#: :class:`MetricsRegistry`.
REGISTRY = MetricsRegistry()


# The label block is any mix of quoted strings and non-quote/non-brace
# characters, so a ``}`` *inside* a quoted label value (e.g. the
# gateway's ``route="GET /v1/sweeps/{id}"``) does not end the block; a
# stray ``}`` outside quotes still does.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse (and thereby validate) Prometheus 0.0.4 exposition text.

    Returns ``{sample_name: {sorted-label-items: value}}`` — histogram
    series appear under their ``_bucket`` / ``_sum`` / ``_count`` sample
    names.  Raises :class:`ValueError` on any malformed line or on a
    sample that was never announced by a ``# TYPE`` comment, so the CI
    metrics-smoke step and the endpoint tests share one validator.

    >>> parsed = parse_exposition(
    ...     '# HELP repro_x_total x\\n# TYPE repro_x_total counter\\n'
    ...     'repro_x_total{op="run"} 3\\n')
    >>> parsed["repro_x_total"][(("op", "run"),)]
    3.0
    >>> parse_exposition(
    ...     '# HELP repro_r_total r\\n# TYPE repro_r_total counter\\n'
    ...     'repro_r_total{route="GET /v1/sweeps/{id}"} 1\\n'
    ... )["repro_r_total"][(("route", "GET /v1/sweeps/{id}"),)]
    1.0
    >>> parse_exposition("what even is this line\\n")
    Traceback (most recent call last):
        ...
    ValueError: exposition line 1: malformed sample 'what even is this line'
    """
    families: Dict[str, str] = {}
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise ValueError(f"exposition line {line_no}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(
                        f"exposition line {line_no}: unknown type {parts[3]!r}"
                    )
                families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"exposition line {line_no}: malformed sample {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and families.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in families:
            raise ValueError(f"exposition line {line_no}: sample {name!r} has no # TYPE")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value not in ("+Inf", "-Inf", "NaN"):
                raise ValueError(
                    f"exposition line {line_no}: bad value {raw_value!r}"
                ) from None
            value = float(raw_value.replace("Inf", "inf").replace("NaN", "nan"))
        labels_text = match.group("labels") or ""
        labels = tuple(sorted(
            (key, val.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\"))
            for key, val in _LABEL_PAIR.findall(labels_text)
        ))
        samples.setdefault(name, {})[labels] = value
    return samples


class CounterGroup:
    """Instance-local, dict-like view over process-wide counters.

    The services and the coordinator historically kept plain ``dict``
    stats that start at zero per *instance*; Prometheus counters are
    process-lifetime.  A ``CounterGroup`` reconciles the two: increments
    go to the shared registry counters, while reads subtract the baseline
    snapshotted at construction — so a fresh service still reports zero
    ``busy_rejections`` even when an earlier service in the same process
    rejected requests, and ``/metrics`` still sees the monotonic truth.

    The mapping protocol (``keys`` / ``__getitem__`` / ``items``) is
    implemented so existing ``dict(stats)`` status snapshots keep working
    unchanged.

    >>> registry = MetricsRegistry()
    >>> counter = registry.counter("repro_demo_rejects_total")
    >>> counter.inc(5)                      # an earlier instance's traffic
    >>> group = CounterGroup({"rejects": counter})
    >>> group["rejects"]
    0
    >>> group.inc("rejects", 2)
    >>> group["rejects"], counter.value()
    (2, 7.0)
    >>> dict(group)
    {'rejects': 2}
    """

    def __init__(self, counters: Dict[str, Counter]):
        self._counters = dict(counters)
        self._baselines = {key: c.value() for key, c in self._counters.items()}

    def inc(self, key: str, amount: int = 1) -> None:
        self._counters[key].inc(amount)

    def __getitem__(self, key: str) -> int:
        return int(round(self._counters[key].value() - self._baselines[key]))

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self):
        return self._counters.keys()

    def items(self):
        return [(key, self[key]) for key in self._counters]

    def get(self, key: str, default: Optional[int] = None) -> Optional[int]:
        if key not in self._counters:
            return default
        return self[key]
