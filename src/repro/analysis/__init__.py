"""Experiment drivers: one module per paper table / figure.

Every driver returns plain data structures (lists of dictionaries or small
dataclasses) and provides a ``format_*`` helper that renders the same rows
the paper reports, so the benchmarks under ``benchmarks/`` only need to call
one function per artefact.

| Paper artefact | Driver |
|---|---|
| Fig. 1 (state-of-the-art design space) | :mod:`repro.analysis.sota` |
| Fig. 4 (discharge non-idealities)       | :mod:`repro.analysis.nonidealities` |
| Fig. 5 (PVT influence)                  | :mod:`repro.analysis.pvt_sweeps` |
| Fig. 6 + RMS table (model evaluation)   | :mod:`repro.analysis.model_evaluation` |
| Fig. 7 (design-space corners)           | :mod:`repro.analysis.design_space` |
| Table I + Fig. 8 (selected corners)     | :mod:`repro.analysis.design_space` |
| Table II / III (DNN accuracy)           | :mod:`repro.analysis.dnn_tables` |
| Speed-up claim                           | :mod:`repro.core.speedup` |
"""

from repro.analysis.sota import SotaDesignPoint, sota_design_points, format_sota_table
from repro.analysis.nonidealities import (
    discharge_vs_time,
    discharge_vs_wordline_voltage,
    saturation_limited_discharge,
)
from repro.analysis.pvt_sweeps import (
    corner_sweep,
    mismatch_monte_carlo,
    supply_sweep,
    temperature_sweep,
)
from repro.analysis.model_evaluation import model_rms_report, paper_rms_reference
from repro.analysis.design_space import (
    corner_summary_rows,
    format_table1,
    paper_table1_reference,
    run_design_space_exploration,
)
from repro.analysis.dnn_tables import (
    DnnExperimentConfig,
    format_accuracy_table,
    paper_table2_reference,
    paper_table3_reference,
    run_dnn_accuracy_experiment,
)

__all__ = [
    "DnnExperimentConfig",
    "SotaDesignPoint",
    "corner_summary_rows",
    "corner_sweep",
    "discharge_vs_time",
    "discharge_vs_wordline_voltage",
    "format_accuracy_table",
    "format_sota_table",
    "format_table1",
    "mismatch_monte_carlo",
    "model_rms_report",
    "paper_rms_reference",
    "paper_table1_reference",
    "paper_table2_reference",
    "paper_table3_reference",
    "run_design_space_exploration",
    "run_dnn_accuracy_experiment",
    "saturation_limited_discharge",
    "sota_design_points",
    "supply_sweep",
    "temperature_sweep",
]
