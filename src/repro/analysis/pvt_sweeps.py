"""PVT influence sweeps on the reference simulator (paper Fig. 5).

Fig. 5 shows how supply voltage, temperature, global process corners and
local transistor mismatch move the bit-line discharge.  Each function below
reproduces one panel and returns flat arrays ready for assertion or
plotting.

Every panel submits its per-condition transients as independent jobs through
a :class:`repro.runtime.SweepEngine`, so the reference simulations of one
panel run concurrently under a parallel executor.  The default engine is
serial and reproduces the historical inline loops exactly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuits.conditions import OperatingConditions, celsius_to_kelvin
from repro.circuits.mismatch import MismatchArrays, MismatchParameters, MismatchSampler
from repro.circuits.technology import ProcessCorner, TechnologyCard
from repro.circuits.transient import TransientSolver
from repro.runtime import Artifact, Job, SweepEngine, SweepSpec, job_key


def _discharge_trace(
    technology: TechnologyCard,
    wordline_voltage: float,
    duration: float,
    conditions: OperatingConditions,
) -> Dict[str, np.ndarray]:
    """One reference transient (module-level so executors can pickle it)."""
    solver = TransientSolver(technology)
    result = solver.simulate_discharge(wordline_voltage, duration, conditions)
    return {"times": result.times, "voltages": np.atleast_1d(result.voltages)}


def supply_sweep(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    supply_voltages: Sequence[float] = (0.9, 1.0, 1.1),
    engine: Optional[SweepEngine] = None,
) -> Dict[float, np.ndarray]:
    """Fig. 5a: V_BLB(t) for several supply voltages.

    Returns a mapping from supply voltage to the voltage trace; the shared
    time axis is stored under the key ``-1.0``.
    """
    engine = engine or SweepEngine()
    conditions = [
        OperatingConditions(vdd=float(vdd), temperature=technology.temperature_nominal)
        for vdd in supply_voltages
    ]
    outputs = engine.map(
        _discharge_trace,
        [(technology, wordline_voltage, duration, point) for point in conditions],
        name="fig5a-supply",
    )
    traces: Dict[float, np.ndarray] = {
        float(vdd): output["voltages"] for vdd, output in zip(supply_voltages, outputs)
    }
    traces[-1.0] = outputs[-1]["times"] if outputs else np.array([])
    return traces


def temperature_sweep(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    temperatures_celsius: Sequence[float] = (0.0, 27.0, 70.0),
    engine: Optional[SweepEngine] = None,
) -> Dict[float, np.ndarray]:
    """Fig. 5b: V_BLB(t) for several junction temperatures."""
    engine = engine or SweepEngine()
    conditions = [
        OperatingConditions(
            vdd=technology.vdd_nominal,
            temperature=celsius_to_kelvin(float(temperature_c)),
        )
        for temperature_c in temperatures_celsius
    ]
    outputs = engine.map(
        _discharge_trace,
        [(technology, wordline_voltage, duration, point) for point in conditions],
        name="fig5b-temperature",
    )
    traces: Dict[float, np.ndarray] = {
        float(temperature_c): output["voltages"]
        for temperature_c, output in zip(temperatures_celsius, outputs)
    }
    traces[-1.0] = outputs[-1]["times"] if outputs else np.array([])
    return traces


def corner_sweep(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, np.ndarray]:
    """Fig. 5c: V_BLB(t) for the fast / typical / slow process corners."""
    engine = engine or SweepEngine()
    corners = (ProcessCorner.FAST, ProcessCorner.TYPICAL, ProcessCorner.SLOW)
    conditions = [
        OperatingConditions(
            vdd=technology.vdd_nominal,
            temperature=technology.temperature_nominal,
            corner=corner,
        )
        for corner in corners
    ]
    outputs = engine.map(
        _discharge_trace,
        [(technology, wordline_voltage, duration, point) for point in conditions],
        name="fig5c-corners",
    )
    traces: Dict[str, np.ndarray] = {
        corner.value: output["voltages"] for corner, output in zip(corners, outputs)
    }
    traces["time"] = outputs[-1]["times"] if outputs else np.array([])
    return traces


def mismatch_monte_carlo(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    samples: int = 1000,
    seed: int = 2024,
    sampling_times: Sequence[float] = (0.5e-9, 1.0e-9, 1.5e-9, 2.0e-9),
) -> Dict[str, np.ndarray]:
    """Fig. 5d: Monte-Carlo mismatch spread of the discharge.

    Returns the per-sample final voltages plus the standard deviation of the
    discharge at several sampling instants (the sigma-versus-time behaviour
    that Eq. 6 models).

    The panel is one vectorised solver call (all samples integrate in a
    single batch), so it runs as a single job rather than a fan-out.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    solver = TransientSolver(technology)
    conditions = OperatingConditions.nominal(technology)
    sampler = MismatchSampler(MismatchParameters.from_technology(technology), seed=seed)
    arrays = sampler.sample_arrays(samples)
    result = solver.simulate_discharge(
        wordline_voltage, duration, conditions, mismatch=arrays
    )
    sigma_at = np.array(
        [float(np.std(result.voltage_at(float(t)))) for t in sampling_times]
    )
    return {
        "times": result.times,
        "final_voltages": np.atleast_1d(result.final_voltage),
        "sampling_times": np.asarray(sampling_times, dtype=float),
        "sigma_at_sampling_times": sigma_at,
    }


# ----------------------------------------------------------------------
# Sharded Monte-Carlo (cluster-ready fan-out of Fig. 5d)
# ----------------------------------------------------------------------
def _mismatch_monte_carlo_shard(
    technology: TechnologyCard,
    wordline_voltage: float,
    duration: float,
    samples_total: int,
    seed: int,
    start: int,
    stop: int,
    sampling_times: Sequence[float],
) -> Dict[str, np.ndarray]:
    """One contiguous sample range of the Fig. 5d Monte-Carlo panel.

    Every shard redraws the *full* ``samples_total`` mismatch set from the
    shared seed and slices its ``[start, stop)`` rows, so a sample's offsets
    are independent of how the panel is sharded.  The transient solver is
    elementwise across traces (fixed time grid, per-row current tables), so
    the shard's per-sample voltages are bit-identical to the corresponding
    rows of an unsharded run — which is what makes the merged panel
    independent of shard count, executor and dispatch schedule.

    Module-level (and arguments picklable) so process-pool and cluster
    executors can ship it.
    """
    solver = TransientSolver(technology)
    conditions = OperatingConditions.nominal(technology)
    sampler = MismatchSampler(MismatchParameters.from_technology(technology), seed=seed)
    full = sampler.sample_arrays(samples_total)
    shard = MismatchArrays(
        vth_access=full.vth_access[start:stop],
        vth_pulldown=full.vth_pulldown[start:stop],
        beta_access=full.beta_access[start:stop],
        beta_pulldown=full.beta_pulldown[start:stop],
    )
    result = solver.simulate_discharge(
        wordline_voltage, duration, conditions, mismatch=shard
    )
    voltages_at = np.stack(
        [np.atleast_1d(result.voltage_at(float(t))) for t in sampling_times]
    )
    return {
        "times": result.times,
        "final_voltages": np.atleast_1d(result.final_voltage),
        "voltages_at": voltages_at,
    }


def _shard_encode(result: Dict[str, np.ndarray]) -> Artifact:
    return Artifact(arrays=dict(result))


def _shard_decode(artifact: Artifact) -> Dict[str, np.ndarray]:
    return dict(artifact.arrays)


def mismatch_monte_carlo_sharded(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    samples: int = 1000,
    seed: int = 2024,
    sampling_times: Sequence[float] = (0.5e-9, 1.0e-9, 1.5e-9, 2.0e-9),
    shards: int = 8,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, np.ndarray]:
    """Fig. 5d as a sharded sweep: bit-identical to :func:`mismatch_monte_carlo`.

    The sample range is split into ``shards`` contiguous jobs submitted
    through ``engine`` — this is how the service and the distributed
    executor spread one large Monte-Carlo batch across cluster workers.
    Each shard is content-addressed (technology + panel parameters + sample
    range + code version), so repeat runs are artifact-cache hits resolved
    engine-side and warm shards never reach a worker.

    The merge concatenates per-sample voltages in sample order and computes
    the sigma over the merged set, which reproduces the unsharded panel
    bit-for-bit whatever ``shards`` or the executor (asserted in
    ``tests/test_cluster.py``).
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if shards < 1:
        raise ValueError("shards must be at least 1")
    engine = engine or SweepEngine()
    shards = min(shards, samples)
    bounds = np.linspace(0, samples, shards + 1, dtype=int)
    jobs = []
    for index in range(shards):
        start, stop = int(bounds[index]), int(bounds[index + 1])
        jobs.append(
            Job(
                fn=_mismatch_monte_carlo_shard,
                args=(
                    technology,
                    float(wordline_voltage),
                    float(duration),
                    int(samples),
                    int(seed),
                    start,
                    stop,
                    tuple(float(t) for t in sampling_times),
                ),
                name=f"montecarlo[{start}:{stop}]",
                key=job_key(
                    "pvt-montecarlo-shard",
                    technology,
                    float(wordline_voltage),
                    float(duration),
                    int(samples),
                    int(seed),
                    start,
                    stop,
                    tuple(float(t) for t in sampling_times),
                ),
                encode=_shard_encode,
                decode=_shard_decode,
            )
        )
    outputs = engine.run(SweepSpec(f"montecarlo[{samples}x{shards}]", jobs))
    voltages_at = np.concatenate([output["voltages_at"] for output in outputs], axis=1)
    sigma_at = np.array([float(np.std(row)) for row in voltages_at])
    return {
        "times": outputs[0]["times"],
        "final_voltages": np.concatenate(
            [output["final_voltages"] for output in outputs]
        ),
        "sampling_times": np.asarray(sampling_times, dtype=float),
        "sigma_at_sampling_times": sigma_at,
    }
