"""PVT influence sweeps on the reference simulator (paper Fig. 5).

Fig. 5 shows how supply voltage, temperature, global process corners and
local transistor mismatch move the bit-line discharge.  Each function below
reproduces one panel and returns flat arrays ready for assertion or
plotting.

Every panel submits its per-condition transients as independent jobs through
a :class:`repro.runtime.SweepEngine`, so the reference simulations of one
panel run concurrently under a parallel executor.  The default engine is
serial and reproduces the historical inline loops exactly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuits.conditions import OperatingConditions, celsius_to_kelvin
from repro.circuits.mismatch import MismatchParameters, MismatchSampler
from repro.circuits.technology import ProcessCorner, TechnologyCard
from repro.circuits.transient import TransientSolver
from repro.runtime import SweepEngine


def _discharge_trace(
    technology: TechnologyCard,
    wordline_voltage: float,
    duration: float,
    conditions: OperatingConditions,
) -> Dict[str, np.ndarray]:
    """One reference transient (module-level so executors can pickle it)."""
    solver = TransientSolver(technology)
    result = solver.simulate_discharge(wordline_voltage, duration, conditions)
    return {"times": result.times, "voltages": np.atleast_1d(result.voltages)}


def supply_sweep(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    supply_voltages: Sequence[float] = (0.9, 1.0, 1.1),
    engine: Optional[SweepEngine] = None,
) -> Dict[float, np.ndarray]:
    """Fig. 5a: V_BLB(t) for several supply voltages.

    Returns a mapping from supply voltage to the voltage trace; the shared
    time axis is stored under the key ``-1.0``.
    """
    engine = engine or SweepEngine()
    conditions = [
        OperatingConditions(vdd=float(vdd), temperature=technology.temperature_nominal)
        for vdd in supply_voltages
    ]
    outputs = engine.map(
        _discharge_trace,
        [(technology, wordline_voltage, duration, point) for point in conditions],
        name="fig5a-supply",
    )
    traces: Dict[float, np.ndarray] = {
        float(vdd): output["voltages"] for vdd, output in zip(supply_voltages, outputs)
    }
    traces[-1.0] = outputs[-1]["times"] if outputs else np.array([])
    return traces


def temperature_sweep(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    temperatures_celsius: Sequence[float] = (0.0, 27.0, 70.0),
    engine: Optional[SweepEngine] = None,
) -> Dict[float, np.ndarray]:
    """Fig. 5b: V_BLB(t) for several junction temperatures."""
    engine = engine or SweepEngine()
    conditions = [
        OperatingConditions(
            vdd=technology.vdd_nominal,
            temperature=celsius_to_kelvin(float(temperature_c)),
        )
        for temperature_c in temperatures_celsius
    ]
    outputs = engine.map(
        _discharge_trace,
        [(technology, wordline_voltage, duration, point) for point in conditions],
        name="fig5b-temperature",
    )
    traces: Dict[float, np.ndarray] = {
        float(temperature_c): output["voltages"]
        for temperature_c, output in zip(temperatures_celsius, outputs)
    }
    traces[-1.0] = outputs[-1]["times"] if outputs else np.array([])
    return traces


def corner_sweep(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, np.ndarray]:
    """Fig. 5c: V_BLB(t) for the fast / typical / slow process corners."""
    engine = engine or SweepEngine()
    corners = (ProcessCorner.FAST, ProcessCorner.TYPICAL, ProcessCorner.SLOW)
    conditions = [
        OperatingConditions(
            vdd=technology.vdd_nominal,
            temperature=technology.temperature_nominal,
            corner=corner,
        )
        for corner in corners
    ]
    outputs = engine.map(
        _discharge_trace,
        [(technology, wordline_voltage, duration, point) for point in conditions],
        name="fig5c-corners",
    )
    traces: Dict[str, np.ndarray] = {
        corner.value: output["voltages"] for corner, output in zip(corners, outputs)
    }
    traces["time"] = outputs[-1]["times"] if outputs else np.array([])
    return traces


def mismatch_monte_carlo(
    technology: TechnologyCard,
    wordline_voltage: float = 0.9,
    duration: float = 2.0e-9,
    samples: int = 1000,
    seed: int = 2024,
    sampling_times: Sequence[float] = (0.5e-9, 1.0e-9, 1.5e-9, 2.0e-9),
) -> Dict[str, np.ndarray]:
    """Fig. 5d: Monte-Carlo mismatch spread of the discharge.

    Returns the per-sample final voltages plus the standard deviation of the
    discharge at several sampling instants (the sigma-versus-time behaviour
    that Eq. 6 models).

    The panel is one vectorised solver call (all samples integrate in a
    single batch), so it runs as a single job rather than a fan-out.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    solver = TransientSolver(technology)
    conditions = OperatingConditions.nominal(technology)
    sampler = MismatchSampler(MismatchParameters.from_technology(technology), seed=seed)
    arrays = sampler.sample_arrays(samples)
    result = solver.simulate_discharge(
        wordline_voltage, duration, conditions, mismatch=arrays
    )
    sigma_at = np.array(
        [float(np.std(result.voltage_at(float(t)))) for t in sampling_times]
    )
    return {
        "times": result.times,
        "final_voltages": np.atleast_1d(result.final_voltage),
        "sampling_times": np.asarray(sampling_times, dtype=float),
        "sigma_at_sampling_times": sigma_at,
    }
