"""State-of-the-art in-SRAM multiplier design points (paper Fig. 1).

Fig. 1 is a literature survey comparing published discharge-based in-SRAM
multiplication circuits along clock frequency, energy per MAC and operand
bit width.  The numbers below are the published values of the four designs
the paper compares ([8] IMAC, [14] Sanni et al., [15] AID, [16] Gong et
al.), as read from the respective publications; the figure-reproduction
benchmark prints them next to the configuration OPTIMA's exploration selects
so the "where does the optimised multiplier land" comparison can be made.
"""

from __future__ import annotations

import dataclasses
from typing import List


@dataclasses.dataclass(frozen=True)
class SotaDesignPoint:
    """One published design point of the Fig. 1 comparison."""

    reference: str
    label: str
    clock_mhz: float
    energy_pj_per_mac: float
    bit_width: int
    technology_nm: int

    def mac_energy_reduction_potential(self, baseline_pj: float = 3.7) -> float:
        """Energy-reduction factor versus a digital MAC baseline.

        The default baseline is a representative 65 nm digital 8-bit MAC
        energy (a few picojoule); the factor is only used for the
        qualitative "reduction potential" bars of Fig. 1.
        """
        if baseline_pj <= 0.0:
            raise ValueError("baseline_pj must be positive")
        return baseline_pj / self.energy_pj_per_mac


def sota_design_points() -> List[SotaDesignPoint]:
    """Published design points of the paper's Fig. 1 comparison."""
    return [
        SotaDesignPoint(
            reference="[8]",
            label="IMAC (Ali et al., TCAS-I 2020)",
            clock_mhz=60.0,
            energy_pj_per_mac=0.08,
            bit_width=4,
            technology_nm=65,
        ),
        SotaDesignPoint(
            reference="[14]",
            label="Sanni et al. (ISCAS 2018)",
            clock_mhz=51.0,
            energy_pj_per_mac=1.1,
            bit_width=6,
            technology_nm=65,
        ),
        SotaDesignPoint(
            reference="[15]",
            label="AID (Seyedfaraji et al., DATE 2022)",
            clock_mhz=250.0,
            energy_pj_per_mac=0.12,
            bit_width=4,
            technology_nm=65,
        ),
        SotaDesignPoint(
            reference="[16]",
            label="Gong et al. (TCAS-II 2020)",
            clock_mhz=100.0,
            energy_pj_per_mac=0.735,
            bit_width=8,
            technology_nm=65,
        ),
    ]


def format_sota_table(points: List[SotaDesignPoint]) -> str:
    """Fixed-width text rendering of the Fig. 1 design-space comparison."""
    header = (
        f"{'ref':<6}{'design':<38}{'clock [MHz]':>12}"
        f"{'energy [pJ/MAC]':>18}{'bit width':>11}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.reference:<6}{point.label:<38}{point.clock_mhz:>12.0f}"
            f"{point.energy_pj_per_mac:>18.3f}{point.bit_width:>11d}"
        )
    return "\n".join(lines)
