"""DNN accuracy experiments (paper Tables II and III).

The driver trains the scaled-down model zoo on a synthetic dataset, performs
INT4 post-training quantisation and evaluates five execution modes per model
(FLOAT32, exact INT4, and the fom / power / variation in-SRAM multiplier
corners selected by the design-space exploration).  Table II uses the
20-class "imagenet-like" dataset; Table III re-uses the same backbones with a
replaced 10-class head and brief transfer training on the "cifar10-like"
dataset, mirroring the paper's transfer-learning setup.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.technology import TechnologyCard, tsmc65_like
from repro.core.calibration import calibrated_suite
from repro.core.dse import explore_design_space, select_corners
from repro.core.model_suite import OptimaModelSuite
from repro.dnn.datasets import Dataset, cifar10_like, imagenet_like
from repro.dnn.evaluation import AccuracyReport, evaluate_backends
from repro.dnn.imc_injection import LutBackend
from repro.dnn.models import (
    build_resnet101_like,
    build_resnet50_like,
    build_vgg16_like,
    build_vgg19_like,
)
from repro.dnn.network import Network
from repro.dnn.quantization import QuantizationScheme, quantize_network
from repro.dnn.training import TrainingConfig, replace_classifier_head, train_network
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier
from repro.multiplier.lut import ProductLookupTable


@dataclasses.dataclass
class DnnExperimentConfig:
    """Size / effort knobs of the DNN accuracy experiment.

    The defaults are sized so the full four-model Table II reproduction runs
    in a few minutes on a laptop; the ``quick()`` preset is what tests use.
    """

    image_size: int = 16
    train_per_class: int = 60
    test_per_class: int = 20
    epochs: int = 8
    transfer_epochs: int = 4
    batch_size: int = 64
    learning_rate: float = 0.08
    calibration_samples: int = 128
    max_eval_samples: Optional[int] = None
    stochastic_multiplier: bool = False
    seed: int = 0

    @classmethod
    def quick(cls) -> "DnnExperimentConfig":
        """Reduced effort preset used by unit tests."""
        return cls(
            image_size=8,
            train_per_class=25,
            test_per_class=10,
            epochs=3,
            transfer_epochs=2,
            calibration_samples=64,
            max_eval_samples=120,
        )


def model_builders(
    image_size: int, classes: int
) -> List[Tuple[str, Callable[[], Network]]]:
    """The four (name, builder) pairs of paper Tables II / III."""
    shape = (image_size, image_size, 3)
    return [
        ("VGG16", lambda: build_vgg16_like(shape, classes)),
        ("VGG19", lambda: build_vgg19_like(shape, classes)),
        ("ResNet50", lambda: build_resnet50_like(shape, classes)),
        ("ResNet101", lambda: build_resnet101_like(shape, classes)),
    ]


def corner_backends(
    technology: Optional[TechnologyCard] = None,
    suite: Optional[OptimaModelSuite] = None,
    corners: Optional[Dict[str, MultiplierConfig]] = None,
    stochastic: bool = False,
    seed: int = 0,
) -> Dict[str, LutBackend]:
    """Build the fom / power / variation LUT backends from the DSE corners."""
    technology = technology or tsmc65_like()
    if suite is None:
        suite = calibrated_suite(technology).suite
    if corners is None:
        corners = select_corners(explore_design_space(suite))
    backends: Dict[str, LutBackend] = {}
    for index, (name, config) in enumerate(corners.items()):
        table = ProductLookupTable.from_multiplier(InSramMultiplier(suite, config))
        backends[name] = LutBackend(
            table,
            stochastic=stochastic,
            rng=np.random.default_rng(seed + index),
            name=name,
        )
    return backends


def run_dnn_accuracy_experiment(
    dataset: Dataset,
    backends: Dict[str, LutBackend],
    config: Optional[DnnExperimentConfig] = None,
    models: Optional[List[Tuple[str, Callable[[], Network]]]] = None,
    base_dataset: Optional[Dataset] = None,
) -> Dict[str, Dict[str, AccuracyReport]]:
    """Train, quantise and evaluate every model on ``dataset``.

    Parameters
    ----------
    dataset:
        Dataset whose test split is reported.
    backends:
        Corner backends (typically from :func:`corner_backends`).
    config:
        Effort knobs.
    models:
        Optional explicit (name, builder) list; defaults to the four paper
        models.
    base_dataset:
        When provided, each model is first trained on ``base_dataset`` and
        then transfer-trained on ``dataset`` with a replaced classifier head
        (the paper's CIFAR-10 protocol).  When omitted, models are trained
        directly on ``dataset``.
    """
    config = config or DnnExperimentConfig()
    models = models or model_builders(config.image_size, _head_classes(dataset, base_dataset))

    results: Dict[str, Dict[str, AccuracyReport]] = {}
    for model_name, builder in models:
        network = builder()
        if base_dataset is not None:
            train_network(
                network,
                base_dataset,
                TrainingConfig(
                    epochs=config.epochs,
                    batch_size=config.batch_size,
                    learning_rate=config.learning_rate,
                    seed=config.seed,
                ),
            )
            network = replace_classifier_head(network, dataset.classes)
            train_network(
                network,
                dataset,
                TrainingConfig(
                    epochs=config.transfer_epochs,
                    batch_size=config.batch_size,
                    learning_rate=config.learning_rate / 2.0,
                    seed=config.seed + 1,
                ),
            )
        else:
            train_network(
                network,
                dataset,
                TrainingConfig(
                    epochs=config.epochs,
                    batch_size=config.batch_size,
                    learning_rate=config.learning_rate,
                    seed=config.seed,
                ),
            )

        calibration = dataset.train_images[: config.calibration_samples]
        quantized = quantize_network(network, calibration, QuantizationScheme())
        reports = evaluate_backends(
            network,
            quantized,
            backends,
            dataset,
            max_samples=config.max_eval_samples,
        )
        results[model_name] = reports
    return results


def _head_classes(dataset: Dataset, base_dataset: Optional[Dataset]) -> int:
    """Classes the freshly built models should output."""
    return base_dataset.classes if base_dataset is not None else dataset.classes


def paper_table2_reference() -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Paper Table II (ImageNet): {model: {mode: (top-1, top-5)}} in percent."""
    return {
        "VGG16": {
            "float32": (70.30, 90.10),
            "int4": (69.25, 89.62),
            "fom": (68.97, 89.11),
            "power": (64.45, 81.79),
            "variation": (38.22, 47.81),
        },
        "VGG19": {
            "float32": (71.30, 90.00),
            "int4": (70.09, 89.78),
            "fom": (69.91, 89.24),
            "power": (63.34, 79.61),
            "variation": (36.66, 48.37),
        },
        "ResNet50": {
            "float32": (74.90, 92.10),
            "int4": (73.48, 91.75),
            "fom": (73.39, 91.65),
            "power": (61.56, 80.88),
            "variation": (48.07, 56.71),
        },
        "ResNet101": {
            "float32": (76.40, 92.80),
            "int4": (75.12, 91.91),
            "fom": (74.95, 91.63),
            "power": (59.77, 78.49),
            "variation": (48.45, 53.19),
        },
    }


def paper_table3_reference() -> Dict[str, Dict[str, float]]:
    """Paper Table III (CIFAR-10): {model: {mode: top-1}} in percent."""
    return {
        "VGG16": {
            "float32": 92.24,
            "int4": 92.04,
            "fom": 91.98,
            "power": 87.39,
            "variation": 68.10,
        },
        "VGG19": {
            "float32": 92.71,
            "int4": 92.42,
            "fom": 92.29,
            "power": 89.79,
            "variation": 66.85,
        },
        "ResNet50": {
            "float32": 93.10,
            "int4": 92.86,
            "fom": 92.83,
            "power": 90.81,
            "variation": 73.83,
        },
        "ResNet101": {
            "float32": 93.35,
            "int4": 93.06,
            "fom": 93.04,
            "power": 90.42,
            "variation": 69.77,
        },
    }


def format_accuracy_table(
    results: Dict[str, Dict[str, AccuracyReport]],
    paper_reference: Optional[Dict[str, Dict[str, Tuple[float, float]]]] = None,
    top5: bool = True,
) -> str:
    """Fixed-width text rendering of a Table II / III reproduction."""
    if not results:
        return "(no results)"
    modes = list(next(iter(results.values())).keys())
    header = f"{'model':<11}" + "".join(f"{mode:>20}" for mode in modes)
    lines = [header, "-" * len(header)]
    for model, reports in results.items():
        cells = []
        for mode in modes:
            report = reports[mode]
            if top5:
                cells.append(f"{100 * report.top1:6.1f}/{100 * report.top5:5.1f}")
            else:
                cells.append(f"{100 * report.top1:6.1f}")
        lines.append(f"{model:<11}" + "".join(f"{cell:>20}" for cell in cells))
    if paper_reference:
        lines.append("")
        lines.append("paper reference (top-1):")
        for model, per_mode in paper_reference.items():
            cells = []
            for mode in modes:
                value = per_mode.get(mode)
                if value is None:
                    cells.append(f"{'-':>20}")
                elif isinstance(value, tuple):
                    cells.append(f"{value[0]:>20.1f}")
                else:
                    cells.append(f"{float(value):>20.1f}")
            lines.append(f"{model:<11}" + "".join(cells))
    lines.append("(measured cells are top-1/top-5 percent)" if top5 else "(cells are top-1 percent)")
    return "\n".join(lines)
