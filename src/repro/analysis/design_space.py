"""Design-space exploration drivers (paper Fig. 7, Table I, Fig. 8).

The functions here wrap :mod:`repro.core.dse` / :mod:`repro.core.pvt` into
the exact artefacts the paper reports: the 48-corner sweep slices of Fig. 7,
the three selected corners of Table I and the robustness curves of Fig. 8.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.technology import TechnologyCard, tsmc65_like
from repro.core.calibration import calibrated_suite
from repro.core.dse import DesignSpace, ExplorationResult, explore_design_space
from repro.core.model_suite import OptimaModelSuite
from repro.core.pvt import CornerRobustnessReport, analyze_corner_robustness
from repro.runtime import SweepEngine


def paper_table1_reference() -> List[Dict[str, object]]:
    """Paper Table I: the selected corners and their reported metrics."""
    return [
        {
            "corner": "fom",
            "tau0_ns": 0.16,
            "v_dac_zero": 0.3,
            "v_dac_full_scale": 1.0,
            "eps_mul_lsb": 4.78,
            "energy_fj": 44.0,
        },
        {
            "corner": "power",
            "tau0_ns": 0.16,
            "v_dac_zero": 0.3,
            "v_dac_full_scale": 0.7,
            "eps_mul_lsb": 15.0,
            "energy_fj": 37.0,
        },
        {
            "corner": "variation",
            "tau0_ns": 0.24,
            "v_dac_zero": 0.4,
            "v_dac_full_scale": 1.0,
            "eps_mul_lsb": 9.6,
            "energy_fj": 69.8,
        },
    ]


def run_design_space_exploration(
    technology: Optional[TechnologyCard] = None,
    suite: Optional[OptimaModelSuite] = None,
    space: Optional[DesignSpace] = None,
    engine: Optional[SweepEngine] = None,
) -> ExplorationResult:
    """Calibrate (cached) and explore the default 48-corner design space.

    ``engine`` routes both the characterisation sweeps behind the cached
    calibration and the corner evaluations through the runtime layer, so a
    parallel executor and an artifact cache accelerate the whole flow.
    """
    technology = technology or tsmc65_like()
    if suite is None:
        suite = calibrated_suite(technology, engine=engine).suite
    return explore_design_space(suite, space=space, engine=engine)


def corner_summary_rows(result: ExplorationResult) -> List[Dict[str, object]]:
    """Table I reproduction rows (one per selected corner)."""
    rows: List[Dict[str, object]] = []
    for corner in result.selected_corners():
        row = corner.table_row()
        analysis = corner.point.analysis
        row["energy_per_operation_pj"] = analysis.energy_per_operation * 1e12
        row["small_operand_error_lsb"] = analysis.small_operand_error()
        row["relative_sigma_percent"] = 100.0 * analysis.relative_sigma_at_max_discharge
        row["operating_frequency_mhz"] = corner.point.config.operating_frequency / 1e6
        rows.append(row)
    return rows


def format_table1(
    measured_rows: List[Dict[str, object]],
    paper_rows: Optional[List[Dict[str, object]]] = None,
) -> str:
    """Fixed-width text rendering of the Table I reproduction."""
    paper_rows = paper_rows if paper_rows is not None else paper_table1_reference()
    paper_by_name = {row["corner"]: row for row in paper_rows}
    header = (
        f"{'corner':<11}{'tau0[ns]':>9}{'V0[V]':>7}{'FS[V]':>7}"
        f"{'eps[LSB]':>10}{'E_mul[fJ]':>11}{'paper eps':>11}{'paper E':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in measured_rows:
        paper = paper_by_name.get(row["corner"], {})
        lines.append(
            f"{row['corner']:<11}{row['tau0_ns']:>9.2f}{row['v_dac_zero']:>7.2f}"
            f"{row['v_dac_full_scale']:>7.2f}{row['eps_mul_lsb']:>10.2f}"
            f"{row['energy_fj']:>11.1f}"
            f"{paper.get('eps_mul_lsb', float('nan')):>11.2f}"
            f"{paper.get('energy_fj', float('nan')):>9.1f}"
        )
    return "\n".join(lines)


def corner_robustness_reports(
    result: ExplorationResult,
    suite: OptimaModelSuite,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, CornerRobustnessReport]:
    """Fig. 8 robustness analysis for every selected corner."""
    reports: Dict[str, CornerRobustnessReport] = {}
    for corner in result.selected_corners():
        reports[corner.name] = analyze_corner_robustness(
            suite, corner.config, engine=engine
        )
    return reports


def figure7_slices(result: ExplorationResult) -> Dict[str, List[Dict[str, float]]]:
    """The two Fig. 7 sweeps: versus ``V_DAC,FS`` and versus ``tau0``.

    The left panel of Fig. 7 sweeps ``V_DAC,FS`` for each ``V_DAC,0`` at the
    smallest ``tau0``; the right panel sweeps ``tau0`` for each ``V_DAC,0``
    at the largest ``V_DAC,FS``.
    """
    space = result.space
    smallest_tau0 = min(space.tau0_values)
    largest_fs = max(space.v_dac_full_scale_values)

    versus_full_scale: List[Dict[str, float]] = []
    for v_zero in space.v_dac_zero_values:
        for point in result.slice_by_full_scale(smallest_tau0, v_zero):
            versus_full_scale.append(
                {
                    "v_dac_zero": v_zero,
                    "v_dac_full_scale": point.config.v_dac_full_scale,
                    "eps_mul_lsb": point.mean_error_lsb,
                    "energy_fj": point.energy_per_multiplication * 1e15,
                }
            )

    versus_tau0: List[Dict[str, float]] = []
    for v_zero in space.v_dac_zero_values:
        for point in result.slice_by_tau0(v_zero, largest_fs):
            versus_tau0.append(
                {
                    "v_dac_zero": v_zero,
                    "tau0_ns": point.config.tau0 * 1e9,
                    "eps_mul_lsb": point.mean_error_lsb,
                    "energy_fj": point.energy_per_multiplication * 1e15,
                }
            )

    return {"versus_full_scale": versus_full_scale, "versus_tau0": versus_tau0}
