"""Discharge non-ideality sweeps (paper Fig. 4).

Fig. 4 illustrates the two circuit-level non-idealities of Section III-1 on
the reference simulator:

* (a) the bit-line-bar voltage over time for several word-line voltages,
  including the residual sub-threshold discharge for a logical '0' input and
  the saturation limit of Eq. 2, and
* (b) the nonlinear dependence of the discharge on the word-line voltage
  when sampled at a fixed instant.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.circuits.mosfet import NmosDevice
from repro.circuits.technology import TechnologyCard
from repro.circuits.transient import TransientSolver


@dataclasses.dataclass
class DischargeCurve:
    """One V_BLB(t) trace plus its saturation-limit annotation."""

    wordline_voltage: float
    times: np.ndarray
    voltages: np.ndarray
    saturation_limit: float
    saturation_time: Optional[float]

    @property
    def final_voltage(self) -> float:
        """Bit-line voltage at the end of the trace."""
        return float(self.voltages[-1])

    @property
    def leaves_saturation(self) -> bool:
        """Whether the access device leaves saturation inside the window."""
        return self.saturation_time is not None


def discharge_vs_time(
    technology: TechnologyCard,
    wordline_voltages: Sequence[float] = (0.3, 0.5, 0.7, 0.9, 1.0),
    duration: float = 2.0e-9,
    conditions: Optional[OperatingConditions] = None,
) -> List[DischargeCurve]:
    """Fig. 4a: V_BLB(t) for several word-line voltages."""
    conditions = conditions or OperatingConditions.nominal(technology)
    solver = TransientSolver(technology)
    access = NmosDevice(
        technology, technology.access_width, technology.access_length
    )
    threshold = access.parameters(conditions).threshold_voltage

    curves: List[DischargeCurve] = []
    for v_wl in wordline_voltages:
        result = solver.simulate_discharge(float(v_wl), duration, conditions)
        waveform = result.waveform()
        limit = max(float(v_wl) - threshold, 0.0)
        saturation_time = waveform.crossing_time(limit) if limit > 0.0 else None
        curves.append(
            DischargeCurve(
                wordline_voltage=float(v_wl),
                times=result.times,
                voltages=np.atleast_1d(result.voltages),
                saturation_limit=limit,
                saturation_time=saturation_time,
            )
        )
    return curves


def discharge_vs_wordline_voltage(
    technology: TechnologyCard,
    sampling_time: float = 1.28e-9,
    wordline_voltages: Optional[Sequence[float]] = None,
    conditions: Optional[OperatingConditions] = None,
) -> Dict[str, np.ndarray]:
    """Fig. 4b: V_BLB(V_WL) sampled at ``sampling_time``.

    Returns a mapping with the swept ``wordline_voltage``, the sampled
    ``bitline_voltage`` and the deviation from an ideal linear transfer
    (``nonlinearity``), which is the quantity Fig. 4b visualises.
    """
    conditions = conditions or OperatingConditions.nominal(technology)
    solver = TransientSolver(technology)
    if wordline_voltages is None:
        wordline_voltages = np.linspace(0.3, 1.0, 15)
    v_wl = np.asarray(wordline_voltages, dtype=float)
    discharge = solver.discharge_at(v_wl, sampling_time, conditions)
    bitline_voltage = conditions.vdd - discharge

    # Ideal linear reference between the endpoints of the sweep.
    ideal = np.interp(
        v_wl,
        [v_wl[0], v_wl[-1]],
        [bitline_voltage[0], bitline_voltage[-1]],
    )
    return {
        "wordline_voltage": v_wl,
        "bitline_voltage": bitline_voltage,
        "discharge": discharge,
        "nonlinearity": bitline_voltage - ideal,
    }


def saturation_limited_discharge(
    technology: TechnologyCard,
    wordline_voltage: float = 1.0,
    duration: float = 2.0e-9,
    conditions: Optional[OperatingConditions] = None,
) -> Dict[str, float]:
    """Quantify the saturation-to-triode transition of Eq. 2 for one trace."""
    curves = discharge_vs_time(
        technology, wordline_voltages=(wordline_voltage,), duration=duration, conditions=conditions
    )
    curve = curves[0]
    return {
        "wordline_voltage": curve.wordline_voltage,
        "saturation_limit_voltage": curve.saturation_limit,
        "saturation_time_ns": (
            curve.saturation_time * 1e9 if curve.saturation_time is not None else float("nan")
        ),
        "final_bitline_voltage": curve.final_voltage,
    }
