"""OPTIMA model evaluation (paper Fig. 6 and the Section IV-C RMS numbers).

The driver runs the full calibration (characterisation sweeps + fitting) and
reports the RMS residual of every fitted model next to the values the paper
quotes for its 65 nm data, so the benchmark can show the paper-vs-measured
comparison in one table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.technology import TechnologyCard, tsmc65_like
from repro.core.calibration import CalibrationResult, calibrated_suite
from repro.core.characterization import CharacterizationPlan
from repro.core.fitting import ModelDegrees


def paper_rms_reference() -> Dict[str, float]:
    """RMS modelling errors the paper reports (Section IV-C), SI units."""
    return {
        "rms_base_discharge": 0.76e-3,
        "rms_supply": 0.88e-3,
        "rms_temperature": 0.76e-3,
        "rms_mismatch_sigma": 0.59e-3,
        "rms_write_energy": 0.15e-15,
        "rms_discharge_energy": 0.74e-15,
    }


def model_rms_report(
    technology: Optional[TechnologyCard] = None,
    plan: Optional[CharacterizationPlan] = None,
    degrees: Optional[ModelDegrees] = None,
) -> List[Dict[str, object]]:
    """Paper-vs-measured RMS table (one row per fitted model)."""
    technology = technology or tsmc65_like()
    result: CalibrationResult = calibrated_suite(technology, plan, degrees)
    measured = result.report.as_dict()
    reference = paper_rms_reference()

    unit_scale = {
        "rms_base_discharge": (1e3, "mV"),
        "rms_supply": (1e3, "mV"),
        "rms_temperature": (1e3, "mV"),
        "rms_mismatch_sigma": (1e3, "mV"),
        "rms_write_energy": (1e15, "fJ"),
        "rms_discharge_energy": (1e15, "fJ"),
    }
    labels = {
        "rms_base_discharge": "basic discharge (Eq. 3)",
        "rms_supply": "supply voltage (Eq. 4)",
        "rms_temperature": "temperature (Eq. 5)",
        "rms_mismatch_sigma": "mismatch sigma (Eq. 6)",
        "rms_write_energy": "write energy (Eq. 7)",
        "rms_discharge_energy": "discharge energy (Eq. 8)",
    }

    rows: List[Dict[str, object]] = []
    for key, (scale, unit) in unit_scale.items():
        rows.append(
            {
                "model": labels[key],
                "paper_rms": reference[key] * scale,
                "measured_rms": measured[key] * scale,
                "unit": unit,
            }
        )
    return rows


def format_rms_table(rows: List[Dict[str, object]]) -> str:
    """Fixed-width text rendering of the paper-vs-measured RMS table."""
    header = f"{'model':<28}{'paper RMS':>14}{'measured RMS':>16}{'unit':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['model']:<28}{row['paper_rms']:>14.3f}"
            f"{row['measured_rms']:>16.3f}{row['unit']:>6}"
        )
    return "\n".join(lines)
