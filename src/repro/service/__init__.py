"""repro.service — asyncio serving front-end on top of the sweep engine.

Where :mod:`repro.runtime` turned every paper workload into deterministic,
cache-addressed sweep jobs behind one :class:`~repro.runtime.SweepEngine`,
this package turns that engine into a *long-lived multi-client system*: a
TCP service that accepts sweep requests (DSE corner grids, PVT/Monte-Carlo
batches, characterisation plans) from many concurrent clients, runs them on
worker threads so the event loop stays responsive, deduplicates identical
in-flight requests (single-flight) on top of the engine's artifact cache,
and streams per-job progress events back to every interested client.

Layout::

    protocol.py   service message constructors (framing shared via repro.wire)
    progress.py   thread-safe progress fan-out (engine callback -> asyncio)
    workloads.py  registry of servable workloads (dse / characterize / ...)
    server.py     SweepService: asyncio.start_server + single-flight
    client.py     ServiceClient (async) + run_sweep (sync convenience)

The service composes with the cluster tier (:mod:`repro.cluster`): built
on an engine whose executor is ``distributed``, every workload's jobs
shard across long-lived worker processes, and the ``montecarlo`` workload
additionally splits large Monte-Carlo PVT batches into
``SeedSequence``-stable sample ranges (``shards`` param) whose progress
merges back into each request's single stream.

Server side (or just ``python -m repro serve --port 7463``)::

    import asyncio
    from repro.runtime import ArtifactCache, SweepEngine
    from repro.service import SweepService

    async def main():
        engine = SweepEngine(cache=ArtifactCache(max_bytes=2_000_000_000))
        service = SweepService(engine, host="0.0.0.0", port=7463)
        await service.serve_forever()

    asyncio.run(main())

Client side::

    from repro.service import run_sweep

    result = run_sweep("127.0.0.1", 7463, "dse", {"fast": True},
                       on_progress=lambda d, t, label: print(d, "/", t, label))
    print(result.payload["selected"])      # Table I corner rows
    print(result.deduplicated)             # True when single-flighted

Concurrent identical requests execute once: the engine's stats (visible via
``ServiceClient.status()`` or ``python -m repro cache info`` on the shared
cache) show a single execution however many clients asked.

The service is hardened for flaky / untrusted-ish traffic (see
``docs/architecture.md`` and ``docs/operations.md``):

* a ``cancel`` op — or a client disconnect, which implies one — aborts a
  submitted sweep at the next job/chunk boundary once its *last*
  subscribed client is gone (single-flighted sweeps keep running while
  anyone still waits);
* per-client backpressure (``--max-inflight``, ``--max-queued-bytes``,
  ``--rate``) answers over-budget submits with a structured ``busy``
  error (typed client-side as :class:`ServiceBusyError`) instead of
  accepting unbounded work;
* a persistent job journal (:mod:`repro.journal`) records every accepted
  job; ``python -m repro serve --resume`` replays whatever a killed
  server left interrupted, so resubmitted requests are served from cache,
  bit-identical to an uninterrupted run.

And it is **observable** (protocol v3, see :mod:`repro.obs` and
``docs/observability.md``): every submit is stamped with a ``trace`` id
that follows the sweep through the engine, the cluster coordinator and
the workers; ``python -m repro serve --metrics-port N`` serves the
process-wide Prometheus metrics; and the ``watch`` op
(:meth:`ServiceClient.watch`) streams the live event bus — submits,
cache hits, chunk dispatches, splits, cancellations — over the same
connection protocol.
"""

from __future__ import annotations

from repro.service.client import (
    ServiceBadRequestError,
    ServiceBusyError,
    ServiceCancelledError,
    ServiceClient,
    ServiceError,
    SweepResult,
    run_sweep,
)
from repro.service.protocol import (
    ERROR_CODES,
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.server import SweepService
from repro.service.workloads import (
    WorkloadFn,
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
)

__all__ = [
    "ERROR_CODES",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceBadRequestError",
    "ServiceBusyError",
    "ServiceCancelledError",
    "ServiceClient",
    "ServiceError",
    "SweepResult",
    "SweepService",
    "WorkloadFn",
    "get_workload",
    "register_workload",
    "run_sweep",
    "unregister_workload",
    "workload_names",
]
