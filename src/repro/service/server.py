"""The asyncio sweep service: one engine, one cache, many clients.

:class:`SweepService` is the long-lived front door on top of
:class:`repro.runtime.SweepEngine`.  It accepts newline-delimited-JSON
requests over TCP (:mod:`repro.service.protocol`), runs the requested
workload (:mod:`repro.service.workloads`) on a worker thread via
``loop.run_in_executor`` — the event loop never blocks on a sweep — and
streams per-job progress events back to every client that asked for it
(:mod:`repro.service.progress`).

Two layers of work deduplication compose:

* **single-flight** — identical requests (same workload + params, compared
  by :func:`repro.runtime.fingerprint`) that overlap in time share one
  execution; late joiners subscribe to the same progress stream and
  receive the same result.
* **artifact cache** — the engine's content-addressed cache serves repeat
  (non-overlapping) requests without re-running the solver, exactly as in
  batch mode.

On top of that sits the **resilience layer** (see ``docs/architecture.md``
for the full data flow):

* **cancellation** — a ``cancel`` op (or a client disconnect, which
  implies one) detaches that client from its flight; when the *last*
  subscriber of a flight is gone, the flight's cooperative cancel event
  fires and the engine aborts the sweep at the next job/chunk boundary
  (:class:`repro.runtime.SweepCancelled`), revoking distributed chunks
  through the coordinator.  Single-flighted requests keep running while
  anyone still waits.
* **per-client backpressure** — each connection has an in-flight-submit
  cap, a queued-bytes cap and a token-bucket rate limit; a request over
  budget is answered with a structured ``busy`` error instead of being
  queued unboundedly.  Admission happens synchronously in the read loop,
  so a pipelined burst cannot overshoot the limits.
* **job journal** — accepted jobs are recorded in a persistent NDJSON
  journal (:mod:`repro.journal`); :meth:`SweepService.resume` re-enqueues
  the jobs a killed server left interrupted, so their artifacts land in
  the cache and returning clients are served bit-identical results.

Every flight runs against a shallow copy of the shared engine whose
``progress`` callback is that flight's broadcaster and whose
``cancel_event`` is that flight's; executor, cache and the stats counters
are shared, so ``status`` reports fleet-wide totals.
"""

from __future__ import annotations

import asyncio
import copy
import dataclasses
import json
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro import obs
from repro.journal import JobJournal
from repro.runtime import ArtifactCache, SweepCancelled, SweepEngine, fingerprint
from repro.sched import SchedPolicy
from repro.service import progress as progress_mod
from repro.service import protocol
from repro.service.workloads import WorkloadFn, get_workload, workload_names

#: Sentinel injected into a subscriber queue when its request is cancelled
#: (explicit ``cancel`` op or client disconnect).
_CANCELLED = object()

#: Requests served, labelled by op (unknown ops collapse to ``other`` so
#: client-controlled strings can never explode the label cardinality).
_REQUESTS_TOTAL = obs.counter(
    "repro_service_requests_total", "Service requests served, by op.", labels=("op",)
)
_KNOWN_OPS = ("ping", "status", "submit", "cancel", "watch")

#: Help strings of the service counters; each backs a registry metric and
#: the per-instance view ``status`` reports (:class:`repro.obs.CounterGroup`).
#: ``status_cluster_errors`` keeps the ``repro_status_`` prefix: it counts
#: failures of the ``status`` op's off-loop cluster gather, not serving.
_COUNTER_METRICS = {
    "busy_rejections": (
        "repro_service_busy_rejections_total",
        "Submits rejected by per-client backpressure.",
    ),
    "jobs_cancelled": (
        "repro_service_jobs_cancelled_total",
        "Flights aborted after their last subscriber left.",
    ),
    "resumed_jobs": (
        "repro_service_resumed_jobs_total",
        "Journal-pending jobs replayed by resume().",
    ),
    "status_cluster_errors": (
        "repro_status_cluster_errors_total",
        "status-op cluster gathers that raised (timeouts included).",
    ),
    "watch_dropped": (
        "repro_service_watch_dropped_total",
        "Events dropped from slow watch subscribers (oldest first).",
    ),
}

#: Registered at import time so the scrape surface (and the naming lint)
#: sees the service counters before any SweepService is constructed.
_COUNTERS = {
    key: obs.counter(name, help_text)
    for key, (name, help_text) in _COUNTER_METRICS.items()
}


def _put_drop_oldest(queue: "asyncio.Queue", item: Any) -> int:
    """Enqueue, evicting the oldest entries on overflow; returns the count
    evicted.  Live streams (watch subscribers, cancel wake-ups) prefer
    losing history to stalling the event loop or raising ``QueueFull``."""
    dropped = 0
    while True:
        try:
            queue.put_nowait(item)
            return dropped
        except asyncio.QueueFull:
            try:
                queue.get_nowait()
                dropped += 1
            except asyncio.QueueEmpty:
                pass


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float):
        self.rate = rate
        self.capacity = max(1.0, float(burst))
        self.tokens = self.capacity
        self.updated = time.monotonic()

    def try_acquire(self) -> bool:
        """Take one token; ``False`` when the bucket is empty."""
        now = time.monotonic()
        self.tokens = min(self.capacity, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token becomes available."""
        missing = max(0.0, 1.0 - self.tokens)
        return missing / self.rate if self.rate > 0 else 1.0


class _PendingRequest:
    """Book-keeping of one admitted submit on one connection."""

    __slots__ = ("queue", "cancelled", "cost")

    def __init__(self, cost: int):
        self.queue: Optional["asyncio.Queue"] = None
        self.cancelled = False
        self.cost = cost

    def cancel(self) -> None:
        self.cancelled = True
        if self.queue is not None:
            # Drop-oldest: a bounded queue (watch streams) must accept the
            # wake-up sentinel even when full.
            _put_drop_oldest(self.queue, _CANCELLED)


async def _send_result(
    connection: "_Connection", request_id: str, payload: Any, elapsed: float
) -> bool:
    """Send the terminal ``result``, spilling large payloads to a binary frame.

    Payloads whose JSON encoding stays under
    :data:`repro.service.protocol.RESULT_BINARY_BYTES` ride inline in the
    event as before (protocol <= v4 clients keep working); larger ones take
    the v5 binary frame — a payload-free header plus the JSON bytes —
    whose bound is :data:`repro.wire.MAX_BINARY_BYTES` rather than the
    8 MB line limit.  ``TypeError`` / ``ValueError`` propagate for payloads
    that cannot be serialised at all; the caller answers with an error
    event.
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(encoded) > protocol.RESULT_BINARY_BYTES:
        return await connection.send_bytes(
            protocol.encode_binary(
                protocol.result_header(request_id, elapsed), encoded
            )
        )
    return await connection.send(protocol.result_event(request_id, payload, elapsed))


class _Connection:
    """One client link with writes serialised behind an asyncio lock."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.closed = False
        self._send_lock = asyncio.Lock()
        # Backpressure state, mutated synchronously on the event loop.
        self.pending: Dict[str, _PendingRequest] = {}
        self.queued_bytes = 0
        self.bucket: Optional[_TokenBucket] = None

    async def send(self, message: Dict[str, Any]) -> bool:
        """Write one message; returns ``False`` once the peer is gone."""
        return await self.send_bytes(protocol.encode_message(message))

    async def send_bytes(self, data: bytes) -> bool:
        """Write pre-encoded frame bytes (also binary frames, whose payload
        follows the header line); returns ``False`` once the peer is gone."""
        if self.closed:
            return False
        async with self._send_lock:
            if self.closed:
                return False
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self.closed = True
                return False
        return True

    async def close(self) -> None:
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclasses.dataclass
class _Flight:
    """One in-flight sweep shared by every identical concurrent request."""

    key: str
    workload: str
    broadcaster: progress_mod.ProgressBroadcaster
    cancel_event: threading.Event
    task: Optional["asyncio.Task"] = None
    subscribers: int = 0
    #: Pinned flights (journal replays) survive losing their subscribers.
    pinned: bool = False
    #: Observability id minted at flight creation (first submitter wins on
    #: dedup); every metric sample and watch event of this sweep carries it.
    trace: str = ""
    #: Scheduling policy (:mod:`repro.sched`) the sweep was admitted with;
    #: like ``trace``, the first submitter's policy wins on dedup (the
    #: single-flight fingerprint covers workload + params only).
    sched: Optional[SchedPolicy] = None


class SweepService:
    """Serve sweep requests from many concurrent clients over TCP.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.runtime.SweepEngine`; defaults to a
        serial engine with an :class:`~repro.runtime.ArtifactCache` at the
        default location.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    max_workers:
        Worker threads running blocking sweeps; this bounds how many
        *distinct* sweeps make progress concurrently (identical ones
        single-flight onto one thread).
    max_inflight:
        Per-connection cap on concurrently in-flight submits; the cap-th
        + 1 submit is answered ``busy``.  ``None`` disables the cap.
    max_queued_bytes:
        Per-connection cap on the summed wire size of in-flight submit
        requests (a rough proxy for queued work); over-budget submits are
        answered ``busy``.  ``None`` disables the cap.
    rate, burst:
        Token-bucket submit rate limit per connection: sustained ``rate``
        submits/second with bursts up to ``burst`` (default:
        ``max(1, rate)``).  Over-rate submits are answered ``busy`` with a
        ``retry_after_seconds`` hint.  ``rate=None`` disables the limiter.
    journal:
        Optional :class:`repro.journal.JobJournal`.  Accepted jobs are
        recorded ``submitted`` and finished ones ``completed`` /
        ``failed`` / ``cancelled``; :meth:`resume` replays the pending
        remainder after a crash.

    Raises
    ------
    ValueError
        For non-positive ``max_workers`` or non-positive limit values.
    """

    def __init__(
        self,
        engine: Optional[SweepEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 4,
        max_inflight: Optional[int] = 8,
        max_queued_bytes: Optional[int] = None,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        journal: Optional[JobJournal] = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1 (or None to disable)")
        if max_queued_bytes is not None and max_queued_bytes < 1:
            raise ValueError("max_queued_bytes must be positive (or None to disable)")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst is not None and burst < 1:
            raise ValueError("burst must be at least 1")
        self.engine = engine if engine is not None else SweepEngine(cache=ArtifactCache())
        self.max_inflight = max_inflight
        self.max_queued_bytes = max_queued_bytes
        self.rate = rate
        self.burst = burst
        self.journal = journal
        self._host = host
        self._port = port
        self._pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="sweep")
        self._flights: Dict[str, _Flight] = {}
        self._connections: Set[_Connection] = set()
        self._handler_tasks: Set["asyncio.Task"] = set()
        self._request_tasks: Set["asyncio.Task"] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False
        # Journal writes (open + fsync per record) must never stall the
        # event loop: they run ordered on a dedicated single-writer thread.
        # The pending count is tracked in memory so `status` does not
        # re-parse the journal file per request.
        self._journal_pool = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="journal")
            if journal is not None
            else None
        )
        self._journal_pending: Set[str] = (
            {entry.key for entry in journal.pending()} if journal is not None else set()
        )
        # Resilience counters, surfaced through `status` *and* mirrored to
        # the process-wide metrics registry: the per-instance view starts
        # at zero, the Prometheus endpoint sees process-lifetime totals.
        self._counters = obs.CounterGroup(_COUNTERS)
        self._watch_entries: Set[_PendingRequest] = set()
        self._cluster_status_error: Optional[str] = None
        # Bridge from the obs bus to the journal: coordinator-side
        # preempted/resumed events become paused/resumed transition
        # records for the owning flight (armed in start()).
        self._sched_bridge: Optional[obs.events.Subscriber] = None

    # Read-only attribute views kept for tests and callers that predate the
    # registry-backed counters.
    @property
    def busy_rejections(self) -> int:
        return self._counters["busy_rejections"]

    @property
    def jobs_cancelled(self) -> int:
        return self._counters["jobs_cancelled"]

    @property
    def resumed_jobs(self) -> int:
        return self._counters["resumed_jobs"]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound; valid after :meth:`start`."""
        return self._host, self._port

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._loop = asyncio.get_running_loop()
        if self.journal is not None:
            # One-time startup compaction keeps the append-only file from
            # growing forever across restarts; run off-loop like all
            # journal I/O.
            await self._loop.run_in_executor(self._journal_pool, self.journal.compact)
        if self.journal is not None and self._sched_bridge is None:
            # The coordinator emits preempted/resumed on the obs bus with
            # the flight's trace id; mirroring them into the journal as
            # paused/resumed transition records gives `serve --resume` a
            # faithful audit trail of a crash that hit mid-preemption
            # (recovery itself only needs the submitted record — pending()
            # ignores transitions).
            self._sched_bridge = obs.EVENTS.subscribe(self._on_sched_event)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=protocol.MAX_MESSAGE_BYTES,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def resume(self) -> int:
        """Re-enqueue journal-pending jobs; returns how many were started.

        Call after :meth:`start`.  Every job the journal records as
        ``submitted`` but not finished — the set a ``SIGKILL`` or power
        loss leaves behind — is re-run as a subscriber-less *pinned*
        flight: its artifacts land in the shared cache (and the journal
        marks it ``completed``), so a returning client that resubmits the
        same request is served warm, bit-identically to an uninterrupted
        run.  Jobs whose workload is no longer registered are marked
        ``failed`` instead of being replayed forever.
        """
        if self.journal is None:
            return 0
        assert self._loop is not None, "call resume() after start()"
        entries = await self._loop.run_in_executor(
            self._journal_pool, self.journal.pending
        )
        started = 0
        for entry in entries:
            try:
                workload_fn = get_workload(entry.workload)
            except KeyError:
                self._journal_finished(entry.key, "failed")
                continue
            # The journal already holds these entries' `submitted` records
            # (that is how they got here), so replays skip re-recording.
            flight, deduplicated = self._get_or_create_flight(
                entry.key,
                entry.workload,
                workload_fn,
                entry.params,
                pinned=True,
                journal_record=False,
            )
            if not deduplicated:
                started += 1
                obs.EVENTS.emit(
                    "journal_replay",
                    trace=flight.trace,
                    key=entry.key,
                    workload=entry.workload,
                )
        self._counters.inc("resumed_jobs", started)
        return started

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled or :meth:`stop`-ped."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            if not self._stopping:
                raise

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain flights, close clients.

        In-flight sweeps run to completion (their artifacts land in the
        cache, the journal records them ``completed`` and their waiters
        receive results) — blocking work on a thread cannot be cancelled
        mid-solve anyway.
        """
        self._stopping = True
        if self._sched_bridge is not None:
            obs.EVENTS.unsubscribe(self._sched_bridge)
            self._sched_bridge = None
        # End every live watch stream first: a watcher is a request task
        # that never finishes on its own, and the request-task drain below
        # would otherwise wait on it forever.
        for entry in list(self._watch_entries):
            entry.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._flights:
            await asyncio.gather(
                *(flight.task for flight in list(self._flights.values()) if flight.task),
                return_exceptions=True,
            )
        # Let in-flight request handlers deliver their terminal result /
        # error events before their connections are torn down.
        while self._request_tasks:
            await asyncio.gather(*list(self._request_tasks), return_exceptions=True)
        for connection in list(self._connections):
            await connection.close()
        if self._handler_tasks:
            await asyncio.gather(*list(self._handler_tasks), return_exceptions=True)
        self._pool.shutdown(wait=True)
        if self._journal_pool is not None:
            # Flush the queued journal records before declaring the stop
            # complete (terminal records of the just-drained flights).
            self._journal_pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer)
        if self.rate is not None:
            connection.bucket = _TokenBucket(
                self.rate, self.burst if self.burst is not None else max(1.0, self.rate)
            )
        self._connections.add(connection)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        requests: Set["asyncio.Task"] = set()
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except protocol.ProtocolError as error:
                    # Framing is broken; the stream cannot be re-synchronised.
                    await connection.send(
                        protocol.error_event(None, str(error), code="bad-request")
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if message is None:
                    break
                # Admission control runs synchronously *here* so a pipelined
                # burst of submits is counted before any of them executes.
                rejection = self._admit(connection, message)
                request = asyncio.create_task(
                    self._dispatch(connection, message, rejection)
                )
                requests.add(request)
                self._request_tasks.add(request)
                request.add_done_callback(requests.discard)
                request.add_done_callback(self._request_tasks.discard)
        finally:
            # Disconnect implies cancel: wake every in-flight submit of this
            # connection so it detaches (and, as last subscriber, aborts the
            # sweep) instead of burning CPU for a client that is gone.
            for entry in list(connection.pending.values()):
                entry.cancel()
            if requests:
                await asyncio.gather(*list(requests), return_exceptions=True)
            self._connections.discard(connection)
            await connection.close()
            if task is not None:
                self._handler_tasks.discard(task)

    # ------------------------------------------------------------------
    # Backpressure admission (synchronous: called from the read loop)
    # ------------------------------------------------------------------
    def _admit(
        self, connection: _Connection, message: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """Reserve budget for one submit; returns a rejection event or None.

        Non-submit ops are always admitted.  For submits the method either
        reserves the per-connection budget (registering the request id in
        ``connection.pending``) or returns the ``busy`` / ``bad-request``
        event the dispatcher should answer with.  The reservation is
        released by :meth:`_release`.
        """
        if message.get("op") != "submit":
            return None
        request_id = message.get("id")
        if not isinstance(request_id, str):
            return protocol.error_event(
                None, "submit requires a string id", code="bad-request"
            )
        if request_id in connection.pending:
            return protocol.error_event(
                request_id,
                f"request id {request_id!r} is already in flight on this connection",
                code="bad-request",
            )
        if (
            self.max_inflight is not None
            and len(connection.pending) >= self.max_inflight
        ):
            self._counters.inc("busy_rejections")
            return protocol.busy_event(
                request_id,
                f"too many in-flight requests on this connection "
                f"(limit {self.max_inflight}); wait for one to finish",
            )
        cost = 0
        if self.max_queued_bytes is not None:
            try:
                cost = len(protocol.encode_message(message))
            except protocol.ProtocolError:
                # The inbound frame fit under the limit but re-encoding
                # does not (ensure_ascii expands non-ASCII text): it could
                # never be admitted, so reject terminally.
                return protocol.error_event(
                    request_id,
                    "request re-encodes over the frame limit",
                    code="bad-request",
                )
            if cost > self.max_queued_bytes:
                # This request alone exceeds the budget: it could never be
                # admitted, so a retryable `busy` would loop a compliant
                # client forever.  Reject terminally instead.
                return protocol.error_event(
                    request_id,
                    f"request of {cost} bytes exceeds the per-connection budget "
                    f"of {self.max_queued_bytes} bytes",
                    code="bad-request",
                )
            if connection.queued_bytes + cost > self.max_queued_bytes:
                self._counters.inc("busy_rejections")
                return protocol.busy_event(
                    request_id,
                    f"queued request bytes over budget "
                    f"({connection.queued_bytes + cost} > {self.max_queued_bytes})",
                )
        if connection.bucket is not None and not connection.bucket.try_acquire():
            self._counters.inc("busy_rejections")
            return protocol.busy_event(
                request_id,
                f"submit rate limit exceeded ({self.rate:g}/s)",
                retry_after_seconds=round(connection.bucket.retry_after(), 3),
            )
        connection.pending[request_id] = _PendingRequest(cost)
        connection.queued_bytes += cost
        return None

    def _release(self, connection: _Connection, request_id: str) -> None:
        entry = connection.pending.pop(request_id, None)
        if entry is not None:
            connection.queued_bytes -= entry.cost

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        connection: _Connection,
        message: Dict[str, Any],
        rejection: Optional[Dict[str, Any]] = None,
    ) -> None:
        if rejection is not None:
            await connection.send(rejection)
            return
        request_id = message.get("id")
        if request_id is not None and not isinstance(request_id, str):
            await connection.send(
                protocol.error_event(None, "request id must be a string", code="bad-request")
            )
            return
        op = message.get("op")
        _REQUESTS_TOTAL.inc(op=op if op in _KNOWN_OPS else "other")
        if op == "ping":
            await connection.send({"event": "pong", "id": request_id})
        elif op == "status":
            status = self._status_event(request_id)
            # The distributed executor's scheduler stats come from the
            # coordinator's own event loop (a blocking round-trip), so they
            # are gathered off this loop.  The key is only present under a
            # distributed engine — its presence is the documented signal.
            cluster = await self._cluster_status()
            if cluster is not None:
                status["cluster"] = cluster
            await connection.send(status)
        elif op == "cancel":
            await self._handle_cancel(connection, request_id)
        elif op == "submit":
            assert isinstance(request_id, str)  # _admit() guaranteed it
            try:
                await self._handle_submit(connection, message, request_id)
            finally:
                self._release(connection, request_id)
        elif op == "watch":
            await self._handle_watch(connection, request_id)
        else:
            await connection.send(
                protocol.error_event(
                    request_id,
                    f"unknown op {op!r} (ping/status/submit/cancel/watch)",
                    code="bad-request",
                )
            )

    async def _handle_cancel(
        self, connection: _Connection, request_id: Optional[str]
    ) -> None:
        """Wake the matching in-flight submit; it answers ``cancelled``."""
        entry = connection.pending.get(request_id) if request_id else None
        if entry is None:
            # Nothing in flight under this id (never was, or its terminal
            # event already went out — a cancel can lose that race).  The
            # client skips frames for ids it is no longer waiting on.
            await connection.send(
                protocol.error_event(
                    request_id,
                    f"no in-flight submit with id {request_id!r} to cancel",
                    code="bad-request",
                )
            )
            return
        entry.cancel()

    async def _handle_watch(
        self, connection: _Connection, request_id: Optional[str]
    ) -> None:
        """Stream :mod:`repro.obs` events to one subscriber until cancelled.

        The bus delivers synchronously on whatever thread emitted (sweep
        worker threads, the cluster loop, this loop), so a subscriber
        bridges events onto the service loop into a bounded per-watcher
        queue; a slow watcher drops its *oldest* frames (counted in
        ``repro_service_watch_dropped_total``) and can never stall the
        server.  The stream is a pending request like a submit: a
        ``cancel`` op with the same id ends it with ``code="cancelled"``,
        and disconnect / :meth:`stop` do too.
        """
        if not isinstance(request_id, str):
            await connection.send(
                protocol.error_event(
                    None, "watch requires a string id", code="bad-request"
                )
            )
            return
        if request_id in connection.pending:
            await connection.send(
                protocol.error_event(
                    request_id,
                    f"request id {request_id!r} is already in flight on this connection",
                    code="bad-request",
                )
            )
            return
        assert self._loop is not None, "service not started"
        loop = self._loop
        queue: "asyncio.Queue" = asyncio.Queue(maxsize=1024)
        entry = _PendingRequest(cost=0)
        entry.queue = queue
        connection.pending[request_id] = entry
        self._watch_entries.add(entry)

        def enqueue(event: Dict[str, Any]) -> None:
            dropped = _put_drop_oldest(queue, event)
            if dropped:
                self._counters.inc("watch_dropped", dropped)

        def bridge(event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(enqueue, event)

        obs.EVENTS.subscribe(bridge)
        try:
            await connection.send(protocol.watching_event(request_id))
            while True:
                item = await queue.get()
                if item is _CANCELLED or entry.cancelled:
                    await connection.send(
                        protocol.error_event(
                            request_id, "watch cancelled", code="cancelled"
                        )
                    )
                    return
                if not await connection.send(protocol.obs_event(request_id, item)):
                    return  # peer gone mid-stream
        finally:
            obs.EVENTS.unsubscribe(bridge)
            self._watch_entries.discard(entry)
            self._release(connection, request_id)

    async def _cluster_status(self) -> Optional[Dict[str, Any]]:
        """Scheduler statistics of a distributed engine executor, or None.

        Surfaces the coordinator's status document — per-worker EWMA
        throughput, chunk split / steal / retry counters, the configured
        ``chunk_window`` — through the service's own ``status`` op, so an
        operator watching the front door sees the scheduling tier without
        opening a second connection to the cluster endpoint.
        """
        executor_status = getattr(self.engine.executor, "status", None)
        if not callable(executor_status):
            return None
        assert self._loop is not None

        def _fetch():
            try:
                # Short timeout: a wedged coordinator costs a `status` op
                # two seconds, not the executor's default ten per poll.
                return executor_status(timeout=2.0)
            except TypeError:
                return executor_status()

        try:
            document = await self._loop.run_in_executor(None, _fetch)
        except Exception as error:
            # A wedged coordinator must not take `status` down — but the
            # failure must not vanish either: count it and surface the
            # last error string through the status document.
            self._counters.inc("status_cluster_errors")
            self._cluster_status_error = f"{type(error).__name__}: {error}"
            return None
        # The executor's serial-fallback / not-started placeholders carry
        # no scheduler content; the spec promises the key only appears
        # with the coordinator's full document.
        if not isinstance(document, dict) or "stats" not in document:
            return None
        return document

    def _status_event(self, request_id: Optional[str]) -> Dict[str, Any]:
        import repro

        cache = self.engine.cache
        journal_info = None
        if self.journal is not None:
            journal_info = {
                "path": str(self.journal.path),
                "pending": len(self._journal_pending),
                "resumed": self.resumed_jobs,
            }
        return {
            "event": "status",
            "id": request_id,
            "protocol": protocol.PROTOCOL_VERSION,
            "version": repro.__version__,
            "engine": self.engine.describe(),
            "engine_stats": dataclasses.asdict(self.engine.stats),
            "cache_stats": dataclasses.asdict(cache.stats) if cache is not None else None,
            "workloads": workload_names(),
            "in_flight": len(self._flights),
            "connections": len(self._connections),
            "limits": {
                "max_inflight": self.max_inflight,
                "max_queued_bytes": self.max_queued_bytes,
                "rate": self.rate,
                "burst": self.burst,
            },
            "busy_rejections": self.busy_rejections,
            "jobs_cancelled": self.jobs_cancelled,
            "status_cluster_errors": self._counters["status_cluster_errors"],
            "cluster_status_error": self._cluster_status_error,
            "watchers": len(self._watch_entries),
            "journal": journal_info,
            "sched": {"in_flight_by_class": self._flights_by_class()},
        }

    def _flights_by_class(self) -> Dict[str, int]:
        """In-flight sweeps per scheduling class (untagged = batch)."""
        by_class: Dict[str, int] = {}
        for flight in list(self._flights.values()):
            name = flight.sched.job_class if flight.sched is not None else "batch"
            by_class[name] = by_class.get(name, 0) + 1
        return by_class

    # ------------------------------------------------------------------
    # Submit / single-flight / cancellation
    # ------------------------------------------------------------------
    async def _handle_submit(
        self, connection: _Connection, message: Dict[str, Any], request_id: str
    ) -> None:
        workload_name = message.get("workload")
        params = message.get("params", {})
        if not isinstance(workload_name, str):
            await connection.send(
                protocol.error_event(
                    request_id, "submit requires a workload name", code="bad-request"
                )
            )
            return
        if not isinstance(params, dict):
            await connection.send(
                protocol.error_event(
                    request_id, "params must be a JSON object", code="bad-request"
                )
            )
            return
        try:
            workload_fn = get_workload(workload_name)
        except KeyError as error:
            await connection.send(
                protocol.error_event(request_id, str(error), code="bad-request")
            )
            return
        try:
            sched_policy = SchedPolicy.parse(message.get("sched"))
        except ValueError as error:
            await connection.send(
                protocol.error_event(request_id, str(error), code="bad-request")
            )
            return

        client_trace = message.get("trace")
        key = fingerprint("service-submit", workload_name, params)
        flight, deduplicated = self._get_or_create_flight(
            key,
            workload_name,
            workload_fn,
            params,
            trace=client_trace if isinstance(client_trace, str) and client_trace else None,
            sched=sched_policy,
        )
        flight.subscribers += 1
        queue = flight.broadcaster.subscribe()
        entry = connection.pending.get(request_id)
        if entry is not None:
            entry.queue = queue
            if entry.cancelled:
                # The cancel (or disconnect) raced ahead of subscription.
                queue.put_nowait(_CANCELLED)
        cancelled = False
        obs.EVENTS.emit(
            "submit_accepted",
            trace=flight.trace,
            workload=workload_name,
            key=key,
            deduplicated=deduplicated,
        )
        try:
            await connection.send(
                protocol.accepted_event(request_id, key, deduplicated, trace=flight.trace)
            )
            while True:
                item = await queue.get()
                if item is progress_mod.CLOSED:
                    break
                if item is _CANCELLED:
                    cancelled = True
                    break
                sent = await connection.send(
                    protocol.progress_event(
                        request_id, item["done"], item["total"], item["label"]
                    )
                )
                if not sent:
                    # Peer is gone mid-stream: disconnect implies cancel.
                    cancelled = True
                    break
            if cancelled:
                await connection.send(
                    protocol.error_event(
                        request_id, "request cancelled", code="cancelled"
                    )
                )
                return
            try:
                payload, elapsed = await asyncio.shield(flight.task)
            except asyncio.CancelledError:
                raise
            except SweepCancelled:
                await connection.send(
                    protocol.error_event(request_id, "sweep cancelled", code="cancelled")
                )
                return
            except Exception as error:  # workload failure -> terminal error event
                await connection.send(
                    protocol.error_event(
                        request_id, f"{type(error).__name__}: {error}", code="failed"
                    )
                )
                return
            try:
                await _send_result(connection, request_id, payload, elapsed)
            except (TypeError, ValueError) as error:
                # A payload json cannot encode (or that overflows even the
                # binary bound) must still terminate the request with an
                # event — a silent death here would hang the client forever.
                await connection.send(
                    protocol.error_event(
                        request_id,
                        f"result payload not serialisable: {error}",
                        code="failed",
                    )
                )
        finally:
            flight.broadcaster.unsubscribe(queue)
            flight.subscribers -= 1
            if cancelled:
                self._maybe_cancel_flight(flight)

    def _maybe_cancel_flight(self, flight: _Flight) -> None:
        """Abort a flight whose last subscriber cancelled or disconnected.

        Pinned flights (journal replays) are exempt: they exist precisely
        to finish without a client watching.
        """
        if (
            flight.pinned
            or flight.subscribers > 0
            or flight.task is None
            or flight.task.done()
        ):
            return
        flight.cancel_event.set()
        self._counters.inc("jobs_cancelled")
        # Drop it from the single-flight table immediately so an identical
        # resubmit starts a fresh sweep instead of joining a dying one.
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]

    def _get_or_create_flight(
        self,
        key: str,
        workload_name: str,
        workload_fn: WorkloadFn,
        params: Dict[str, Any],
        pinned: bool = False,
        journal_record: bool = True,
        trace: Optional[str] = None,
        sched: Optional[SchedPolicy] = None,
    ) -> Tuple[_Flight, bool]:
        flight = self._flights.get(key)
        if flight is not None:
            if pinned:
                flight.pinned = True
            # Single-flight implies single trace: the first submitter's id
            # stays on the sweep; late joiners learn it via `accepted`.
            # The same rule covers the sched policy.
            return flight, True
        assert self._loop is not None, "service not started"
        broadcaster = progress_mod.ProgressBroadcaster(self._loop)
        # Per-flight engine view: shared executor / cache / stats, private
        # progress sink, cancel event, trace id and sched policy, so
        # concurrent sweeps cannot cross their streams and cancelling one
        # never aborts another.
        cancel_event = threading.Event()
        engine_view = copy.copy(self.engine)
        engine_view.progress = broadcaster.callback
        engine_view.cancel_event = cancel_event
        engine_view.trace_id = trace or uuid.uuid4().hex
        engine_view.sched = sched
        flight = _Flight(
            key=key,
            workload=workload_name,
            broadcaster=broadcaster,
            cancel_event=cancel_event,
            pinned=pinned,
            trace=engine_view.trace_id,
            sched=sched,
        )
        if journal_record:
            self._journal_submitted(key, workload_name, params)
        flight.task = asyncio.ensure_future(
            self._run_flight(flight, workload_fn, params, engine_view, broadcaster)
        )
        flight.task.add_done_callback(
            lambda task, flight=flight: self._on_flight_done(flight, task)
        )
        self._flights[key] = flight
        return flight, False

    def _on_flight_done(self, flight: _Flight, task: "asyncio.Task") -> None:
        """Journal the terminal status; also retrieves the exception so a
        flight whose every waiter disconnected never warns about an
        unretrieved exception (the failure stays visible in ``status``)."""
        if task.cancelled():
            status = "cancelled"
        else:
            error = task.exception()
            if error is None:
                status = "completed"
            elif isinstance(error, SweepCancelled):
                status = "cancelled"
            else:
                status = "failed"
        event_type = {
            "completed": "run_result",
            "cancelled": "run_cancelled",
            "failed": "run_failed",
        }[status]
        obs.EVENTS.emit(
            event_type, trace=flight.trace, key=flight.key, workload=flight.workload
        )
        if self._flights.get(flight.key) not in (None, flight):
            # A cancelled-then-resubmitted key: a newer flight now owns
            # this key's journal lifecycle, and our terminal record would
            # erase *its* pending entry — a crash before it finishes would
            # then not be replayed by --resume.  The newer flight writes
            # the lifecycle's terminal record instead.
            return
        self._journal_finished(flight.key, status)

    def _journal_submitted(
        self, key: str, workload: str, params: Dict[str, Any]
    ) -> None:
        self._journal_pending.add(key)
        self._journal_write("record_submitted", key, workload, params)

    def _journal_finished(self, key: str, status: str) -> None:
        self._journal_pending.discard(key)
        self._journal_write("record_finished", key, status)

    def _on_sched_event(self, event: Dict[str, Any]) -> None:
        """Obs-bus subscriber: journal scheduler transitions per flight.

        Runs on whatever thread emitted (the coordinator loop), so it only
        reads the flight table and hands the append to the single-writer
        journal thread.  Events whose trace matches no live flight (e.g. a
        direct engine user on the same process) are ignored.
        """
        kind = event.get("type")
        if kind not in ("preempted", "resumed"):
            return
        trace = event.get("trace")
        if not trace:
            return
        for flight in list(self._flights.values()):
            if flight.trace == trace:
                status = "paused" if kind == "preempted" else "resumed"
                self._journal_write("record_transition", flight.key, status)
                return

    def _journal_write(self, method: str, *args: Any) -> None:
        """Ordered, off-loop journal append that can never break serving."""
        if self.journal is None or self._journal_pool is None:
            return

        def _write(journal=self.journal):
            try:
                getattr(journal, method)(*args)
            except OSError:
                # A full / read-only disk must not break serving; the
                # journal just loses this record.
                pass

        try:
            self._journal_pool.submit(_write)
        except RuntimeError:
            pass  # pool already shut down (late flight during stop)

    async def _run_flight(
        self,
        flight: _Flight,
        workload_fn: WorkloadFn,
        params: Dict[str, Any],
        engine_view: SweepEngine,
        broadcaster: progress_mod.ProgressBroadcaster,
    ) -> Tuple[Any, float]:
        assert self._loop is not None
        start = time.perf_counter()
        try:
            payload = await self._loop.run_in_executor(
                self._pool, lambda: workload_fn(params, engine_view)
            )
            return payload, time.perf_counter() - start
        finally:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            broadcaster.close()
