"""The asyncio sweep service: one engine, one cache, many clients.

:class:`SweepService` is the long-lived front door on top of
:class:`repro.runtime.SweepEngine`.  It accepts newline-delimited-JSON
requests over TCP (:mod:`repro.service.protocol`), runs the requested
workload (:mod:`repro.service.workloads`) on a worker thread via
``loop.run_in_executor`` — the event loop never blocks on a sweep — and
streams per-job progress events back to every client that asked for it
(:mod:`repro.service.progress`).

Two layers of work deduplication compose:

* **single-flight** — identical requests (same workload + params, compared
  by :func:`repro.runtime.fingerprint`) that overlap in time share one
  execution; late joiners subscribe to the same progress stream and
  receive the same result.
* **artifact cache** — the engine's content-addressed cache serves repeat
  (non-overlapping) requests without re-running the solver, exactly as in
  batch mode.

Every flight runs against a shallow copy of the shared engine whose
``progress`` callback is that flight's broadcaster; executor, cache and the
stats counters are shared, so ``status`` reports fleet-wide totals.
"""

from __future__ import annotations

import asyncio
import copy
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.runtime import ArtifactCache, SweepEngine, fingerprint
from repro.service import progress as progress_mod
from repro.service import protocol
from repro.service.workloads import WorkloadFn, get_workload, workload_names


class _Connection:
    """One client link with writes serialised behind an asyncio lock."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.closed = False
        self._send_lock = asyncio.Lock()

    async def send(self, message: Dict[str, Any]) -> bool:
        """Write one message; returns ``False`` once the peer is gone."""
        if self.closed:
            return False
        data = protocol.encode_message(message)
        async with self._send_lock:
            if self.closed:
                return False
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self.closed = True
                return False
        return True

    async def close(self) -> None:
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclasses.dataclass
class _Flight:
    """One in-flight sweep shared by every identical concurrent request."""

    key: str
    broadcaster: progress_mod.ProgressBroadcaster
    task: "asyncio.Task"
    subscribers: int = 0


class SweepService:
    """Serve sweep requests from many concurrent clients over TCP.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.runtime.SweepEngine`; defaults to a
        serial engine with an :class:`~repro.runtime.ArtifactCache` at the
        default location.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    max_workers:
        Worker threads running blocking sweeps; this bounds how many
        *distinct* sweeps make progress concurrently (identical ones
        single-flight onto one thread).
    """

    def __init__(
        self,
        engine: Optional[SweepEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 4,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.engine = engine if engine is not None else SweepEngine(cache=ArtifactCache())
        self._host = host
        self._port = port
        self._pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="sweep")
        self._flights: Dict[str, _Flight] = {}
        self._connections: Set[_Connection] = set()
        self._handler_tasks: Set["asyncio.Task"] = set()
        self._request_tasks: Set["asyncio.Task"] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound; valid after :meth:`start`."""
        return self._host, self._port

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=protocol.MAX_MESSAGE_BYTES,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled or :meth:`stop`-ped."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            if not self._stopping:
                raise

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain flights, close clients.

        In-flight sweeps run to completion (their artifacts land in the
        cache and their waiters receive results) — blocking work on a
        thread cannot be cancelled mid-solve anyway.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._flights:
            await asyncio.gather(
                *(flight.task for flight in list(self._flights.values())),
                return_exceptions=True,
            )
        # Let in-flight request handlers deliver their terminal result /
        # error events before their connections are torn down.
        while self._request_tasks:
            await asyncio.gather(*list(self._request_tasks), return_exceptions=True)
        for connection in list(self._connections):
            await connection.close()
        if self._handler_tasks:
            await asyncio.gather(*list(self._handler_tasks), return_exceptions=True)
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        requests: Set["asyncio.Task"] = set()
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except protocol.ProtocolError as error:
                    # Framing is broken; the stream cannot be re-synchronised.
                    await connection.send(protocol.error_event(None, str(error)))
                    break
                except (ConnectionError, OSError):
                    break
                if message is None:
                    break
                request = asyncio.create_task(self._dispatch(connection, message))
                requests.add(request)
                self._request_tasks.add(request)
                request.add_done_callback(requests.discard)
                request.add_done_callback(self._request_tasks.discard)
        finally:
            if requests:
                await asyncio.gather(*list(requests), return_exceptions=True)
            self._connections.discard(connection)
            await connection.close()
            if task is not None:
                self._handler_tasks.discard(task)

    async def _dispatch(self, connection: _Connection, message: Dict[str, Any]) -> None:
        request_id = message.get("id")
        if request_id is not None and not isinstance(request_id, str):
            await connection.send(protocol.error_event(None, "request id must be a string"))
            return
        op = message.get("op")
        if op == "ping":
            await connection.send({"event": "pong", "id": request_id})
        elif op == "status":
            await connection.send(self._status_event(request_id))
        elif op == "submit":
            await self._handle_submit(connection, message, request_id)
        else:
            await connection.send(
                protocol.error_event(request_id, f"unknown op {op!r} (ping/status/submit)")
            )

    def _status_event(self, request_id: Optional[str]) -> Dict[str, Any]:
        import repro

        cache = self.engine.cache
        return {
            "event": "status",
            "id": request_id,
            "protocol": protocol.PROTOCOL_VERSION,
            "version": repro.__version__,
            "engine": self.engine.describe(),
            "engine_stats": dataclasses.asdict(self.engine.stats),
            "cache_stats": dataclasses.asdict(cache.stats) if cache is not None else None,
            "workloads": workload_names(),
            "in_flight": len(self._flights),
            "connections": len(self._connections),
        }

    # ------------------------------------------------------------------
    # Submit / single-flight
    # ------------------------------------------------------------------
    async def _handle_submit(
        self, connection: _Connection, message: Dict[str, Any], request_id: Optional[str]
    ) -> None:
        if not isinstance(request_id, str):
            await connection.send(protocol.error_event(None, "submit requires a string id"))
            return
        workload_name = message.get("workload")
        params = message.get("params", {})
        if not isinstance(workload_name, str):
            await connection.send(protocol.error_event(request_id, "submit requires a workload name"))
            return
        if not isinstance(params, dict):
            await connection.send(protocol.error_event(request_id, "params must be a JSON object"))
            return
        try:
            workload_fn = get_workload(workload_name)
        except KeyError as error:
            await connection.send(protocol.error_event(request_id, str(error)))
            return

        key = fingerprint("service-submit", workload_name, params)
        flight, deduplicated = self._get_or_create_flight(key, workload_fn, params)
        flight.subscribers += 1
        queue = flight.broadcaster.subscribe()
        try:
            await connection.send(protocol.accepted_event(request_id, key, deduplicated))
            while True:
                item = await queue.get()
                if item is progress_mod.CLOSED:
                    break
                await connection.send(
                    protocol.progress_event(
                        request_id, item["done"], item["total"], item["label"]
                    )
                )
            try:
                payload, elapsed = await asyncio.shield(flight.task)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # workload failure -> terminal error event
                await connection.send(
                    protocol.error_event(request_id, f"{type(error).__name__}: {error}")
                )
                return
            try:
                await connection.send(protocol.result_event(request_id, payload, elapsed))
            except (TypeError, ValueError) as error:
                # A payload json cannot encode (or that overflows the frame
                # limit) must still terminate the request with an event —
                # a silent death here would hang the client forever.
                await connection.send(
                    protocol.error_event(
                        request_id, f"result payload not serialisable: {error}"
                    )
                )
        finally:
            flight.broadcaster.unsubscribe(queue)
            flight.subscribers -= 1

    def _get_or_create_flight(
        self, key: str, workload_fn: WorkloadFn, params: Dict[str, Any]
    ) -> Tuple[_Flight, bool]:
        flight = self._flights.get(key)
        if flight is not None:
            return flight, True
        assert self._loop is not None, "service not started"
        broadcaster = progress_mod.ProgressBroadcaster(self._loop)
        # Per-flight engine view: shared executor / cache / stats, private
        # progress sink, so concurrent sweeps cannot cross their streams.
        engine_view = copy.copy(self.engine)
        engine_view.progress = broadcaster.callback
        task = asyncio.ensure_future(
            self._run_flight(key, workload_fn, params, engine_view, broadcaster)
        )
        # A flight whose every waiter disconnected must not warn about an
        # unretrieved exception; the failure is also visible in `status`.
        task.add_done_callback(
            lambda t: t.exception() if not t.cancelled() else None
        )
        flight = _Flight(key=key, broadcaster=broadcaster, task=task)
        self._flights[key] = flight
        return flight, False

    async def _run_flight(
        self,
        key: str,
        workload_fn: WorkloadFn,
        params: Dict[str, Any],
        engine_view: SweepEngine,
        broadcaster: progress_mod.ProgressBroadcaster,
    ) -> Tuple[Any, float]:
        assert self._loop is not None
        start = time.perf_counter()
        try:
            payload = await self._loop.run_in_executor(
                self._pool, lambda: workload_fn(params, engine_view)
            )
            return payload, time.perf_counter() - start
        finally:
            self._flights.pop(key, None)
            broadcaster.close()
