"""Sweep workloads the service can run, keyed by wire-protocol name.

A workload is a plain function ``fn(params, engine) -> payload``:

* ``params`` — the (already JSON-decoded) ``params`` object of the submit
  request;
* ``engine`` — a :class:`repro.runtime.SweepEngine` view whose ``progress``
  callback streams ticks back to every subscribed client; workloads route
  all heavy lifting through it so caching, executor choice and progress
  reporting come for free;
* return value — any JSON-serialisable object; it becomes the ``payload``
  of the terminal ``result`` event.

Workload functions run on a worker thread (the service wraps them in
``loop.run_in_executor``), so they may block; they must not touch the event
loop.  The built-ins mirror the ``python -m repro run`` subcommands'
``--json`` payloads, so a service client and a batch CLI run produce
comparable documents.

The registry is open: tests and downstream deployments add workloads with
:func:`register_workload` (used as a decorator or called directly).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.runtime import SweepEngine

WorkloadFn = Callable[[Dict[str, Any], SweepEngine], Any]

_WORKLOADS: Dict[str, WorkloadFn] = {}


def register_workload(name: str, fn: Optional[WorkloadFn] = None):
    """Register ``fn`` under ``name``; usable as ``@register_workload("x")``."""

    def _register(workload: WorkloadFn) -> WorkloadFn:
        _WORKLOADS[name] = workload
        return workload

    if fn is not None:
        return _register(fn)
    return _register


def unregister_workload(name: str) -> None:
    """Remove a workload (primarily for test isolation)."""
    _WORKLOADS.pop(name, None)


def get_workload(name: str) -> WorkloadFn:
    """Look up a workload; raises ``KeyError`` with the known names."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None


def workload_names() -> List[str]:
    """Sorted names of every registered workload."""
    return sorted(_WORKLOADS)


# ----------------------------------------------------------------------
# Built-in paper workloads (imports deferred so the service layer stays
# importable without pulling the whole modelling stack upfront)
# ----------------------------------------------------------------------
@register_workload("dse")
def run_dse(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """48-corner design-space exploration; ``{"fast": true}`` for the quick grid."""
    from repro.analysis.design_space import corner_summary_rows, run_design_space_exploration
    from repro.circuits.technology import tsmc65_like
    from repro.core.calibration import calibrated_suite
    from repro.core.characterization import CharacterizationPlan
    from repro.core.dse import DesignSpace

    fast = bool(params.get("fast", False))
    technology = tsmc65_like()
    plan = CharacterizationPlan.quick() if fast else None
    space = DesignSpace.quick() if fast else None
    suite = calibrated_suite(technology, plan=plan, engine=engine).suite
    result = run_design_space_exploration(technology, suite=suite, space=space, engine=engine)
    return {
        "command": "dse",
        "fast": fast,
        "corner_count": len(result.points),
        "corners": result.table(),
        "selected": corner_summary_rows(result),
    }


@register_workload("characterize")
def run_characterize(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """Reference characterisation sweeps; ``{"fast": true}`` for the quick plan."""
    from repro.circuits.technology import tsmc65_like
    from repro.core.characterization import CharacterizationPlan, characterize

    fast = bool(params.get("fast", False))
    technology = tsmc65_like()
    plan = CharacterizationPlan.quick() if fast else CharacterizationPlan()
    data = characterize(technology, plan, engine=engine)
    return {
        "command": "characterize",
        "fast": fast,
        "records": {
            "base": len(data.base),
            "supply": len(data.supply),
            "temperature": len(data.temperature),
            "mismatch": len(data.mismatch),
            "write_energy": len(data.write_energy),
            "discharge_energy": len(data.discharge_energy),
        },
        "total_records": data.record_count(),
    }


def _montecarlo_job(samples: int, seed: int) -> Dict[str, Any]:
    """Module-level job body (picklable for the process-pool executor)."""
    from repro.analysis.pvt_sweeps import mismatch_monte_carlo
    from repro.circuits.technology import tsmc65_like

    return mismatch_monte_carlo(tsmc65_like(), samples=samples, seed=seed)


@register_workload("montecarlo")
def run_montecarlo(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """Fig. 5d Monte-Carlo mismatch spread; ``samples`` / ``seed`` / ``shards``.

    With ``shards`` (default 1) the per-sample workload splits into that
    many contiguous :func:`numpy.random.SeedSequence`-stable sample ranges
    submitted through the engine — under a ``distributed`` executor the
    shards spread across cluster workers, their progress ticks merge into
    the request's single progress stream, and the merged panel is
    bit-identical to the unsharded one.  Each shard is content-addressed,
    so repeat requests resolve engine-side from the artifact cache and warm
    shards never reach a worker.

    Unsharded, the panel is one vectorised solver call riding the engine as
    a single cacheable job, exactly as before.
    """
    from repro.circuits.technology import tsmc65_like
    from repro.runtime import Artifact, Job, job_key

    samples = int(params.get("samples", 200))
    seed = int(params.get("seed", 2024))
    shards = int(params.get("shards", 1))
    if samples < 1:
        raise ValueError("samples must be at least 1")
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards > 1:
        from repro.analysis.pvt_sweeps import mismatch_monte_carlo_sharded

        result = mismatch_monte_carlo_sharded(
            tsmc65_like(), samples=samples, seed=seed, shards=shards, engine=engine
        )
    else:
        job = Job(
            fn=_montecarlo_job,
            args=(samples, seed),
            name=f"montecarlo[{samples}]",
            key=job_key("service-montecarlo", tsmc65_like(), samples, seed),
            encode=lambda result: Artifact(arrays=dict(result)),
            decode=lambda artifact: dict(artifact.arrays),
        )
        result = engine.run_one(job)
    sigmas = {
        f"{float(t) * 1e9:.1f}ns": float(s)
        for t, s in zip(result["sampling_times"], result["sigma_at_sampling_times"])
    }
    return {
        "command": "montecarlo",
        "samples": samples,
        "seed": seed,
        "shards": shards,
        "sigma_v_blb": sigmas,
    }
