"""Sweep workloads the service can run, keyed by wire-protocol name.

A workload is a plain function ``fn(params, engine) -> payload``:

* ``params`` — the (already JSON-decoded) ``params`` object of the submit
  request;
* ``engine`` — a :class:`repro.runtime.SweepEngine` view whose ``progress``
  callback streams ticks back to every subscribed client; workloads route
  all heavy lifting through it so caching, executor choice and progress
  reporting come for free;
* return value — any JSON-serialisable object; it becomes the ``payload``
  of the terminal ``result`` event.

Workload functions run on a worker thread (the service wraps them in
``loop.run_in_executor``), so they may block; they must not touch the event
loop.  The built-ins mirror the ``python -m repro run`` subcommands'
``--json`` payloads, so a service client and a batch CLI run produce
comparable documents.

The registry is open: tests and downstream deployments add workloads with
:func:`register_workload` (used as a decorator or called directly).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.runtime import SweepEngine

WorkloadFn = Callable[[Dict[str, Any], SweepEngine], Any]

_WORKLOADS: Dict[str, WorkloadFn] = {}


def register_workload(name: str, fn: Optional[WorkloadFn] = None):
    """Register ``fn`` under ``name``; usable as ``@register_workload("x")``."""

    def _register(workload: WorkloadFn) -> WorkloadFn:
        _WORKLOADS[name] = workload
        return workload

    if fn is not None:
        return _register(fn)
    return _register


def unregister_workload(name: str) -> None:
    """Remove a workload (primarily for test isolation)."""
    _WORKLOADS.pop(name, None)


def get_workload(name: str) -> WorkloadFn:
    """Look up a workload; raises ``KeyError`` with the known names."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None


def workload_names() -> List[str]:
    """Sorted names of every registered workload."""
    return sorted(_WORKLOADS)


# ----------------------------------------------------------------------
# Built-in paper workloads (imports deferred so the service layer stays
# importable without pulling the whole modelling stack upfront)
# ----------------------------------------------------------------------
@register_workload("dse")
def run_dse(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """48-corner design-space exploration; ``{"fast": true}`` for the quick grid."""
    from repro.analysis.design_space import corner_summary_rows, run_design_space_exploration
    from repro.circuits.technology import tsmc65_like
    from repro.core.calibration import calibrated_suite
    from repro.core.characterization import CharacterizationPlan
    from repro.core.dse import DesignSpace

    fast = bool(params.get("fast", False))
    technology = tsmc65_like()
    plan = CharacterizationPlan.quick() if fast else None
    space = DesignSpace.quick() if fast else None
    suite = calibrated_suite(technology, plan=plan, engine=engine).suite
    result = run_design_space_exploration(technology, suite=suite, space=space, engine=engine)
    return {
        "command": "dse",
        "fast": fast,
        "corner_count": len(result.points),
        "corners": result.table(),
        "selected": corner_summary_rows(result),
    }


@register_workload("characterize")
def run_characterize(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """Reference characterisation sweeps; ``{"fast": true}`` for the quick plan."""
    from repro.circuits.technology import tsmc65_like
    from repro.core.characterization import CharacterizationPlan, characterize

    fast = bool(params.get("fast", False))
    technology = tsmc65_like()
    plan = CharacterizationPlan.quick() if fast else CharacterizationPlan()
    data = characterize(technology, plan, engine=engine)
    return {
        "command": "characterize",
        "fast": fast,
        "records": {
            "base": len(data.base),
            "supply": len(data.supply),
            "temperature": len(data.temperature),
            "mismatch": len(data.mismatch),
            "write_energy": len(data.write_energy),
            "discharge_energy": len(data.discharge_energy),
        },
        "total_records": data.record_count(),
    }


def _eventsim_shard(pairs: tuple, fast: bool) -> Dict[str, Any]:
    """Module-level shard body (picklable for the process-pool executor).

    Runs one contiguous slice of ``(x, d)`` operand pairs through the
    event-driven :class:`~repro.eventsim.testbench.MultiplierTestbench`
    and returns per-pair arrays for an artifact-friendly merge.
    """
    import numpy as np

    from repro.circuits.technology import tsmc65_like
    from repro.core.calibration import calibrated_suite
    from repro.core.characterization import CharacterizationPlan
    from repro.eventsim.testbench import MultiplierTestbench
    from repro.multiplier.config import MultiplierConfig

    plan = CharacterizationPlan.quick() if fast else None
    suite = calibrated_suite(tsmc65_like(), plan=plan).suite
    testbench = MultiplierTestbench(suite, MultiplierConfig(name="service-eventsim"))
    results = testbench.run_sweep([tuple(pair) for pair in pairs])
    return {
        "x": np.array([result.x for result in results], dtype=int),
        "d": np.array([result.d for result in results], dtype=int),
        "product": np.array([result.product for result in results], dtype=int),
        "expected": np.array([result.expected for result in results], dtype=int),
        "model": np.array(
            [testbench.model_result(result.x, result.d) for result in results],
            dtype=int,
        ),
        "executed_events": np.array(
            [result.executed_events for result in results], dtype=int
        ),
        "finish_time": np.array(
            [result.finish_time for result in results], dtype=float
        ),
    }


@register_workload("eventsim")
def run_eventsim(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """Event-driven multiplier testbench sweep (paper Fig. 3 sequence).

    Parameters: ``pairs`` (list of ``[x, d]`` operand pairs; default a
    4x4 corner grid of the operand range), ``fast`` (quick calibration
    plan), ``shards`` (split the pair list into that many contiguous
    engine jobs — under a ``distributed`` executor they spread across
    cluster workers, and every shard is content-addressed so warm repeats
    resolve from the artifact cache).

    The payload reports each pair's event-driven ``product`` next to the
    direct model's result; ``matches_model`` is the end-to-end check that
    the event framework and the vectorised multiplier model agree.
    """
    import numpy as np

    from repro.circuits.technology import tsmc65_like
    from repro.runtime import Artifact, Job, SweepSpec, job_key

    fast = bool(params.get("fast", False))
    shards = int(params.get("shards", 1))
    raw_pairs = params.get("pairs")
    if raw_pairs is None:
        corners = (0, 5, 10, 15)
        raw_pairs = [[x, d] for x in corners for d in corners]
    if not isinstance(raw_pairs, list) or not raw_pairs:
        raise ValueError("pairs must be a non-empty list of [x, d] pairs")
    pairs = []
    for pair in raw_pairs:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ValueError(f"malformed operand pair {pair!r} (expected [x, d])")
        x, d = int(pair[0]), int(pair[1])
        if not 0 <= x <= 15 or not 0 <= d <= 15:
            raise ValueError(f"operand pair {pair!r} out of range 0..15")
        pairs.append((x, d))
    if shards < 1:
        raise ValueError("shards must be at least 1")
    shards = min(shards, len(pairs))
    bounds = np.linspace(0, len(pairs), shards + 1, dtype=int)
    jobs = []
    for index in range(shards):
        shard = tuple(pairs[int(bounds[index]):int(bounds[index + 1])])
        jobs.append(
            Job(
                fn=_eventsim_shard,
                args=(shard, fast),
                name=f"eventsim[{len(shard)}]",
                key=job_key("service-eventsim", tsmc65_like(), shard, fast),
                encode=lambda result: Artifact(arrays=dict(result)),
                decode=lambda artifact: dict(artifact.arrays),
            )
        )
    outputs = engine.run(SweepSpec(f"eventsim[{len(pairs)}x{shards}]", jobs))
    merged = {
        name: np.concatenate([output[name] for output in outputs])
        for name in outputs[0]
    }
    return {
        "command": "eventsim",
        "fast": fast,
        "pairs": len(pairs),
        "shards": shards,
        "matches_model": bool(np.array_equal(merged["product"], merged["model"])),
        "max_abs_error": int(np.max(np.abs(merged["product"] - merged["expected"]))),
        "total_events": int(merged["executed_events"].sum()),
        "results": [
            {
                "x": int(x),
                "d": int(d),
                "product": int(product),
                "expected": int(expected),
            }
            for x, d, product, expected in zip(
                merged["x"], merged["d"], merged["product"], merged["expected"]
            )
        ],
    }


#: Execution modes of the paper's Table II / III protocol the ``dnn``
#: workload can evaluate (FLOAT32, exact INT4, and the DSE corner LUTs).
DNN_MODES = ("float32", "int4", "fom", "power", "variation")


def _dnn_shard(
    model: str, modes: tuple, quick: bool, bounds: tuple
) -> Dict[str, Any]:
    """Module-level shard body (picklable for the process-pool executor).

    Trains / quantises the model deterministically (fixed seeds) and
    evaluates one contiguous ``[lo, hi)`` slice of the effective test set,
    returning integer top-1 / top-5 hit counts so the merged accuracy is
    bit-identical to evaluating the whole test set in one call.
    """
    import numpy as np

    from repro.analysis.dnn_tables import (
        DnnExperimentConfig,
        corner_backends,
        model_builders,
    )
    from repro.dnn.datasets import imagenet_like
    from repro.dnn.quantization import QuantizationScheme, quantize_network
    from repro.dnn.training import TrainingConfig, train_network

    config = DnnExperimentConfig.quick() if quick else DnnExperimentConfig()
    dataset = imagenet_like(
        image_size=config.image_size,
        train_per_class=config.train_per_class,
        test_per_class=config.test_per_class,
    )
    builders = dict(model_builders(config.image_size, dataset.classes))
    network = builders[model]()
    train_network(
        network,
        dataset,
        TrainingConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            seed=config.seed,
        ),
    )
    calibration = dataset.train_images[: config.calibration_samples]
    quantized = quantize_network(network, calibration, QuantizationScheme())
    corner_modes = [mode for mode in modes if mode not in ("float32", "int4")]
    backends = corner_backends(seed=config.seed) if corner_modes else {}

    images = dataset.test_images
    labels = np.asarray(dataset.test_labels)
    if config.max_eval_samples is not None and images.shape[0] > config.max_eval_samples:
        images = images[: config.max_eval_samples]
        labels = labels[: config.max_eval_samples]
    lo, hi = int(bounds[0]), int(bounds[1])
    images, labels = images[lo:hi], labels[lo:hi]

    def hits(scores: np.ndarray, k: int) -> int:
        # Mirrors repro.core.metrics.top_k_accuracy row by row; returning
        # the integer hit count (not the mean) keeps the sharded merge an
        # exact sum, so ``sum(hits) / samples`` is bit-identical to the
        # unsharded ``np.mean``.
        top_k = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
        return int(np.any(top_k == labels[:, np.newaxis], axis=1).sum())

    counts: Dict[str, int] = {"samples": hi - lo}
    for mode in modes:
        if mode == "float32":
            net = network
        elif mode == "int4":
            net = quantized
        else:
            net = quantized.with_backend(backends[mode], name_suffix=f"-{mode}")
        scores = np.asarray(
            net.predict(images, batch_size=config.batch_size), dtype=float
        )
        counts[f"{mode}_top1"] = hits(scores, 1)
        counts[f"{mode}_top5"] = hits(scores, min(5, scores.shape[1]))
    return counts


@register_workload("dnn")
def run_dnn(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """DNN accuracy pipeline (paper Table II protocol) as a sharded sweep.

    Parameters: ``model`` (one of the four Table II backbones, default
    ``"VGG16"``), ``modes`` (subset of :data:`DNN_MODES`, default
    ``["float32", "int4"]`` — corner modes pull in the DSE), ``quick``
    (default true: the test-scale :meth:`DnnExperimentConfig.quick`
    preset) and ``shards`` (split the test-set evaluation into that many
    contiguous engine jobs).

    Every shard trains the same deterministic network (fixed seeds) and
    evaluates its slice of the test split, returning integer hit counts;
    the merged top-1 / top-5 accuracies are bit-identical to calling the
    evaluation directly on the full test set, for any shard count.
    """
    import numpy as np

    from repro.analysis.dnn_tables import DnnExperimentConfig
    from repro.runtime import Artifact, Job, SweepSpec, job_key

    model = str(params.get("model", "VGG16"))
    if model not in ("VGG16", "VGG19", "ResNet50", "ResNet101"):
        raise ValueError(f"unknown model {model!r}")
    modes = tuple(params.get("modes", ["float32", "int4"]))
    if not modes:
        raise ValueError("modes must be a non-empty list")
    for mode in modes:
        if mode not in DNN_MODES:
            raise ValueError(f"unknown mode {mode!r}; available: {', '.join(DNN_MODES)}")
    quick = bool(params.get("quick", True))
    shards = int(params.get("shards", 1))
    if shards < 1:
        raise ValueError("shards must be at least 1")

    config = DnnExperimentConfig.quick() if quick else DnnExperimentConfig()
    total = 20 * config.test_per_class  # imagenet_like has 20 classes
    if config.max_eval_samples is not None:
        total = min(total, config.max_eval_samples)
    shards = min(shards, total)
    bounds = np.linspace(0, total, shards + 1, dtype=int)
    jobs = []
    for index in range(shards):
        window = (int(bounds[index]), int(bounds[index + 1]))
        jobs.append(
            Job(
                fn=_dnn_shard,
                args=(model, modes, quick, window),
                name=f"dnn[{model}:{window[0]}:{window[1]}]",
                key=job_key("service-dnn", model, modes, quick, window),
                encode=lambda result: Artifact(
                    arrays={name: np.array(value) for name, value in result.items()}
                ),
                decode=lambda artifact: {
                    name: int(value) for name, value in artifact.arrays.items()
                },
            )
        )
    outputs = engine.run(SweepSpec(f"dnn[{model}x{shards}]", jobs))
    samples = sum(output["samples"] for output in outputs)
    reports = {}
    for mode in modes:
        top1 = sum(output[f"{mode}_top1"] for output in outputs) / samples
        top5 = sum(output[f"{mode}_top5"] for output in outputs) / samples
        reports[mode] = {
            "model": model,
            "mode": mode,
            "top1": top1,
            "top5": top5,
            "top1_percent": 100.0 * top1,
            "top5_percent": 100.0 * top5,
            "samples": samples,
        }
    return {
        "command": "dnn",
        "model": model,
        "quick": quick,
        "shards": shards,
        "samples": samples,
        "reports": reports,
    }


def _montecarlo_job(samples: int, seed: int) -> Dict[str, Any]:
    """Module-level job body (picklable for the process-pool executor)."""
    from repro.analysis.pvt_sweeps import mismatch_monte_carlo
    from repro.circuits.technology import tsmc65_like

    return mismatch_monte_carlo(tsmc65_like(), samples=samples, seed=seed)


@register_workload("montecarlo")
def run_montecarlo(params: Dict[str, Any], engine: SweepEngine) -> Dict[str, Any]:
    """Fig. 5d Monte-Carlo mismatch spread; ``samples`` / ``seed`` / ``shards``.

    With ``shards`` (default 1) the per-sample workload splits into that
    many contiguous :func:`numpy.random.SeedSequence`-stable sample ranges
    submitted through the engine — under a ``distributed`` executor the
    shards spread across cluster workers, their progress ticks merge into
    the request's single progress stream, and the merged panel is
    bit-identical to the unsharded one.  Each shard is content-addressed,
    so repeat requests resolve engine-side from the artifact cache and warm
    shards never reach a worker.

    Unsharded, the panel is one vectorised solver call riding the engine as
    a single cacheable job, exactly as before.
    """
    from repro.circuits.technology import tsmc65_like
    from repro.runtime import Artifact, Job, job_key

    samples = int(params.get("samples", 200))
    seed = int(params.get("seed", 2024))
    shards = int(params.get("shards", 1))
    if samples < 1:
        raise ValueError("samples must be at least 1")
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards > 1:
        from repro.analysis.pvt_sweeps import mismatch_monte_carlo_sharded

        result = mismatch_monte_carlo_sharded(
            tsmc65_like(), samples=samples, seed=seed, shards=shards, engine=engine
        )
    else:
        job = Job(
            fn=_montecarlo_job,
            args=(samples, seed),
            name=f"montecarlo[{samples}]",
            key=job_key("service-montecarlo", tsmc65_like(), samples, seed),
            encode=lambda result: Artifact(arrays=dict(result)),
            decode=lambda artifact: dict(artifact.arrays),
        )
        result = engine.run_one(job)
    sigmas = {
        f"{float(t) * 1e9:.1f}ns": float(s)
        for t, s in zip(result["sampling_times"], result["sigma_at_sampling_times"])
    }
    return {
        "command": "montecarlo",
        "samples": samples,
        "seed": seed,
        "shards": shards,
        "sigma_v_blb": sigmas,
    }
