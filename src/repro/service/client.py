"""Client side of the sweep service protocol.

:class:`ServiceClient` is the asyncio client (one TCP connection, one
request at a time, progress callbacks as events arrive); :func:`run_sweep`
is the synchronous one-call convenience for scripts and examples::

    from repro.service import run_sweep

    result = run_sweep("127.0.0.1", 7463, "dse", {"fast": True},
                       on_progress=lambda done, total, label: ...)
    print(result.payload["selected"])

Async use::

    async with ServiceClient("127.0.0.1", 7463) as client:
        result = await client.submit("dse", {"fast": True})

Server-side failures surface as **typed exceptions** keyed by the stable
``code`` field of the terminal ``error`` event (see ``docs/protocol.md``),
so callers can distinguish a transport problem (``ConnectionError``) from

* :class:`ServiceBusyError` — per-client backpressure rejected the
  request (``retry_after`` hints how long to back off);
* :class:`ServiceCancelledError` — the request (or its underlying
  single-flighted sweep) was cancelled;
* :class:`ServiceBadRequestError` — the request itself was invalid;
* :class:`ServiceError` — the workload failed (and the base class of all
  of the above).

A submit in flight can be aborted from a concurrent task with
:meth:`ServiceClient.cancel`; the awaiting ``submit`` then raises
:class:`ServiceCancelledError`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
from typing import Any, AsyncIterator, Callable, Dict, Optional, Type

from repro.runtime.executors import ProgressCallback
from repro.service import protocol


class ServiceError(RuntimeError):
    """The server answered a request with a terminal ``error`` event.

    Attributes
    ----------
    code:
        The stable error class from the wire (``failed`` for workload
        failures; subclasses carry their own).
    retry_after:
        Backoff hint in seconds (rate-limit rejections only), else None.
    """

    code = "failed"

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceBusyError(ServiceError):
    """Per-client backpressure rejected the request (``code="busy"``)."""

    code = "busy"


class ServiceCancelledError(ServiceError):
    """The request or its sweep was cancelled (``code="cancelled"``)."""

    code = "cancelled"


class ServiceBadRequestError(ServiceError):
    """The request itself was invalid (``code="bad-request"``)."""

    code = "bad-request"


_ERROR_TYPES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (ServiceError, ServiceBusyError, ServiceCancelledError, ServiceBadRequestError)
}


def error_from_event(message: Dict[str, Any]) -> ServiceError:
    """Build the typed exception for one terminal ``error`` event."""
    code = str(message.get("code", "failed"))
    retry_after = message.get("retry_after_seconds")
    exc_type = _ERROR_TYPES.get(code, ServiceError)
    return exc_type(
        str(message.get("error")),
        retry_after=float(retry_after) if retry_after is not None else None,
    )


@dataclasses.dataclass
class SweepResult:
    """Outcome of one submit: payload plus how the request was served."""

    payload: Any
    key: str
    deduplicated: bool
    elapsed_seconds: float
    progress_events: int
    #: Server-minted observability id of the sweep (protocol v3); every
    #: metric sample and ``watch`` event of the run carries it, across the
    #: service, engine, coordinator and worker tiers (see :mod:`repro.obs`).
    trace: str = ""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.SweepService`.

    The client is deliberately sequential: one outstanding request per
    connection (open several clients for concurrency — connections are
    cheap, and the server single-flights identical sweeps anyway).

    Parameters
    ----------
    host, port:
        Service endpoint (the ``serve`` banner prints the bound port).

    Raises
    ------
    ServiceError (or a subclass, by error ``code``)
        When the server reports a terminal error for a request.
    ConnectionError / OSError
        For transport-level failures (server gone, connection refused).
    RuntimeError
        For client-side misuse: requests before :meth:`connect`, or a
        second concurrent :meth:`submit` on one connection.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._request_ids = itertools.count(1)
        self._busy = False
        self._active_submit: Optional[str] = None

    async def connect(self, timeout: Optional[float] = None) -> "ServiceClient":
        """Open the connection; already-connected clients return immediately.

        ``timeout`` enables bounded retry-with-backoff on connection
        failures (see :func:`repro.wire.open_connection`): a server that is
        still binding its socket — the usual race when client and server
        start together, e.g. against a subprocess ``python -m repro serve``
        — is retried until the deadline instead of failing instantly.
        ``timeout=None`` keeps the historical single-attempt behaviour.
        """
        if self._writer is None:
            self._reader, self._writer = await protocol.open_connection(
                self.host, self.port, timeout=timeout, limit=protocol.MAX_MESSAGE_BYTES
            )
        return self

    async def aclose(self) -> None:
        """Close the connection (the server cancels any in-flight submit)."""
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one non-streaming request and return its matching reply.

        Frames for other request ids — e.g. the terminal event of an
        earlier submit that raced a :meth:`cancel` — are skipped, exactly
        as the submit loop skips them; only a connection-level error
        (``id`` null) or this request's own reply terminates the wait.
        """
        reader, writer = self._require_connection()
        request_id = message.get("id")
        writer.write(protocol.encode_message(message))
        await writer.drain()
        while True:
            reply = await protocol.read_message(reader)
            if reply is None:
                raise ConnectionError("server closed the connection")
            if reply.get("id") != request_id and reply.get("id") is not None:
                continue  # stale event from an earlier, already-settled request
            if reply.get("event") == "error":
                raise error_from_event(reply)
            return reply

    async def ping(self) -> bool:
        """Liveness probe; ``True`` when the server answers ``pong``."""
        reply = await self._roundtrip(protocol.ping_request(self._next_id()))
        return reply.get("event") == "pong"

    async def status(self) -> Dict[str, Any]:
        """Server status document (engine / cache / journal stats, limits)."""
        return await self._roundtrip(protocol.status_request(self._next_id()))

    async def cancel(self) -> bool:
        """Abort the submit currently in flight on this connection.

        Safe to call from a task running concurrently with :meth:`submit`
        (the whole point: the submit loop owns the reader, ``cancel`` only
        writes).  The awaiting ``submit`` raises
        :class:`ServiceCancelledError` once the server confirms.  Returns
        ``False`` when no submit is in flight.
        """
        request_id = self._active_submit
        if request_id is None:
            return False
        _, writer = self._require_connection()
        writer.write(protocol.encode_message(protocol.cancel_request(request_id)))
        await writer.drain()
        return True

    async def submit(
        self,
        workload: str,
        params: Optional[Dict[str, Any]] = None,
        on_progress: Optional[ProgressCallback] = None,
        trace: Optional[str] = None,
        on_accepted: Optional[Callable[[str, bool, str], None]] = None,
        sched: Optional[Any] = None,
    ) -> SweepResult:
        """Run ``workload`` on the server, streaming progress along the way.

        Parameters
        ----------
        workload:
            Registered workload name (``status()["workloads"]`` lists them).
        params:
            JSON-serialisable workload parameters; together with the name
            they form the single-flight fingerprint.
        on_progress:
            Receives ``(done, total, label)`` for every progress event.
        trace:
            Optional client-proposed observability id.  The id actually in
            force — this one, or the first submitter's when the request
            deduplicates onto an in-flight sweep — comes back on
            :attr:`SweepResult.trace`.
        on_accepted:
            Receives ``(key, deduplicated, trace)`` as soon as the server
            acknowledges the submit — i.e. the *served* trace id, before
            the result.  The gateway uses this to start bridging ``watch``
            events for a sweep while it is still running; plain callers
            can ignore it and read :attr:`SweepResult.trace` at the end.
        sched:
            Optional scheduling tag (protocol v4) — a job-class name
            (``"interactive"`` / ``"batch"``) or a ``{"class": ...,
            "priority": ...}`` object; see :mod:`repro.sched`.  A
            deduplicated submit keeps the first submitter's policy.

        Raises
        ------
        ServiceBusyError
            The server's per-client backpressure rejected the submit
            (check :attr:`~ServiceError.retry_after`).
        ServiceCancelledError
            The request was cancelled — via :meth:`cancel`, or because the
            single-flighted sweep was cancelled server-side.
        ServiceBadRequestError
            Unknown workload or malformed request.
        ServiceError
            The workload raised on the server.
        """
        if self._busy:
            raise RuntimeError("one request at a time per ServiceClient connection")
        reader, writer = self._require_connection()
        request_id = self._next_id()
        self._busy = True
        self._active_submit = request_id
        try:
            writer.write(
                protocol.encode_message(
                    protocol.submit_request(
                        request_id, workload, params, trace=trace, sched=sched
                    )
                )
            )
            await writer.drain()
            key = ""
            deduplicated = False
            served_trace = ""
            progress_events = 0
            while True:
                message = await protocol.read_message(reader)
                if message is None:
                    raise ConnectionError("server closed the connection mid-request")
                if message.get("id") != request_id:
                    continue  # stale event from an aborted earlier request
                event = message.get("event")
                if event == "accepted":
                    key = str(message.get("key", ""))
                    deduplicated = bool(message.get("deduplicated", False))
                    served_trace = str(message.get("trace", ""))
                    if on_accepted is not None:
                        on_accepted(key, deduplicated, served_trace)
                elif event == "progress":
                    progress_events += 1
                    if on_progress is not None:
                        on_progress(
                            int(message.get("done", 0)),
                            int(message.get("total", 0)),
                            str(message.get("label", "")),
                        )
                elif event == "result":
                    payload = message.get("payload")
                    attached = message.get(protocol.PAYLOAD_KEY)
                    if attached is not None:
                        # Protocol v5 binary result: the JSON-encoded
                        # payload followed the header line as raw bytes.
                        payload = json.loads(bytes(attached).decode("utf-8"))
                    return SweepResult(
                        payload=payload,
                        key=key,
                        deduplicated=deduplicated,
                        elapsed_seconds=float(message.get("elapsed_seconds", 0.0)),
                        progress_events=progress_events,
                        trace=served_trace,
                    )
                elif event == "error":
                    raise error_from_event(message)
        finally:
            self._busy = False
            self._active_submit = None

    async def watch(self) -> AsyncIterator[Dict[str, Any]]:
        """Follow the server's live observability event stream (v3).

        Async generator yielding one event dict per :mod:`repro.obs` event
        the server emits (``seq`` / ``ts`` / ``type`` / optional ``trace``
        plus type-specific fields) until the stream is cancelled — via
        :meth:`cancel` from a concurrent task (the generator then simply
        ends), the generator being closed, or the server stopping.  Like
        :meth:`submit`, a watch owns the connection while it runs.
        """
        if self._busy:
            raise RuntimeError("one request at a time per ServiceClient connection")
        reader, writer = self._require_connection()
        request_id = self._next_id()
        self._busy = True
        self._active_submit = request_id  # cancel() targets the watch too
        try:
            writer.write(protocol.encode_message(protocol.watch_request(request_id)))
            await writer.drain()
            while True:
                message = await protocol.read_message(reader)
                if message is None:
                    return  # server stopped: the stream is over
                if message.get("id") != request_id:
                    continue
                event = message.get("event")
                if event == "watching":
                    continue
                if event == "obs":
                    yield dict(message.get("data") or {})
                elif event == "error":
                    if message.get("code") == "cancelled":
                        return  # cancelled by this client: a normal end
                    raise error_from_event(message)
        finally:
            self._busy = False
            self._active_submit = None

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"req-{next(self._request_ids)}"

    def _require_connection(self) -> tuple:
        if self._reader is None or self._writer is None:
            raise RuntimeError("client is not connected; call connect() first")
        return self._reader, self._writer


def run_sweep(
    host: str,
    port: int,
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    on_progress: Optional[ProgressCallback] = None,
    timeout: Optional[float] = None,
    connect_timeout: Optional[float] = None,
    trace: Optional[str] = None,
    sched: Optional[Any] = None,
) -> SweepResult:
    """Synchronous one-shot submit for scripts: connect, run, disconnect.

    Parameters
    ----------
    host, port:
        Service endpoint.
    workload, params, on_progress:
        As for :meth:`ServiceClient.submit`.
    timeout:
        Bound on the whole call (``asyncio.TimeoutError`` on expiry).
    connect_timeout:
        Additionally enables retry-with-backoff while the server is still
        binding (see :meth:`ServiceClient.connect`).

    Raises
    ------
    ServiceError (or its typed subclasses)
        As for :meth:`ServiceClient.submit`.

    Example
    -------
    ::

        result = run_sweep("127.0.0.1", 7463, "montecarlo",
                           {"samples": 1000, "shards": 4},
                           timeout=600, connect_timeout=10)
        print(result.payload["sigma_v_blb"])
    """

    async def _run() -> SweepResult:
        client = ServiceClient(host, port)
        await client.connect(timeout=connect_timeout)
        try:
            return await client.submit(
                workload, params, on_progress=on_progress, trace=trace, sched=sched
            )
        finally:
            await client.aclose()

    coro: Any = _run()
    if timeout is not None:
        coro = asyncio.wait_for(coro, timeout)
    return asyncio.run(coro)
