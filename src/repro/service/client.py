"""Client side of the sweep service protocol.

:class:`ServiceClient` is the asyncio client (one TCP connection, one
request at a time, progress callbacks as events arrive); :func:`run_sweep`
is the synchronous one-call convenience for scripts and examples::

    from repro.service import run_sweep

    result = run_sweep("127.0.0.1", 7463, "dse", {"fast": True},
                       on_progress=lambda done, total, label: ...)
    print(result.payload["selected"])

Async use::

    async with ServiceClient("127.0.0.1", 7463) as client:
        result = await client.submit("dse", {"fast": True})
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
from typing import Any, Callable, Dict, Optional

from repro.runtime.executors import ProgressCallback
from repro.service import protocol


class ServiceError(RuntimeError):
    """The server answered a request with a terminal ``error`` event."""


@dataclasses.dataclass
class SweepResult:
    """Outcome of one submit: payload plus how the request was served."""

    payload: Any
    key: str
    deduplicated: bool
    elapsed_seconds: float
    progress_events: int


class ServiceClient:
    """One connection to a :class:`~repro.service.server.SweepService`.

    The client is deliberately sequential: one outstanding request per
    connection (open several clients for concurrency — connections are
    cheap, and the server single-flights identical sweeps anyway).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._request_ids = itertools.count(1)
        self._busy = False

    async def connect(self, timeout: Optional[float] = None) -> "ServiceClient":
        """Open the connection; already-connected clients return immediately.

        ``timeout`` enables bounded retry-with-backoff on connection
        failures (see :func:`repro.wire.open_connection`): a server that is
        still binding its socket — the usual race when client and server
        start together, e.g. against a subprocess ``python -m repro serve``
        — is retried until the deadline instead of failing instantly.
        ``timeout=None`` keeps the historical single-attempt behaviour.
        """
        if self._writer is None:
            self._reader, self._writer = await protocol.open_connection(
                self.host, self.port, timeout=timeout, limit=protocol.MAX_MESSAGE_BYTES
            )
        return self

    async def aclose(self) -> None:
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one non-streaming request and return its single reply."""
        reader, writer = self._require_connection()
        writer.write(protocol.encode_message(message))
        await writer.drain()
        reply = await protocol.read_message(reader)
        if reply is None:
            raise ConnectionError("server closed the connection")
        if reply.get("event") == "error":
            raise ServiceError(str(reply.get("error")))
        return reply

    async def ping(self) -> bool:
        """Liveness probe; ``True`` when the server answers ``pong``."""
        reply = await self._roundtrip(protocol.ping_request(self._next_id()))
        return reply.get("event") == "pong"

    async def status(self) -> Dict[str, Any]:
        """Server status document (engine / cache stats, workloads, ...)."""
        return await self._roundtrip(protocol.status_request(self._next_id()))

    async def submit(
        self,
        workload: str,
        params: Optional[Dict[str, Any]] = None,
        on_progress: Optional[ProgressCallback] = None,
    ) -> SweepResult:
        """Run ``workload`` on the server, streaming progress along the way.

        ``on_progress`` receives ``(done, total, label)`` for every progress
        event.  Raises :class:`ServiceError` when the server reports a
        terminal error for this request.
        """
        if self._busy:
            raise RuntimeError("one request at a time per ServiceClient connection")
        reader, writer = self._require_connection()
        request_id = self._next_id()
        self._busy = True
        try:
            writer.write(protocol.encode_message(protocol.submit_request(request_id, workload, params)))
            await writer.drain()
            key = ""
            deduplicated = False
            progress_events = 0
            while True:
                message = await protocol.read_message(reader)
                if message is None:
                    raise ConnectionError("server closed the connection mid-request")
                if message.get("id") != request_id:
                    continue  # stale event from an aborted earlier request
                event = message.get("event")
                if event == "accepted":
                    key = str(message.get("key", ""))
                    deduplicated = bool(message.get("deduplicated", False))
                elif event == "progress":
                    progress_events += 1
                    if on_progress is not None:
                        on_progress(
                            int(message.get("done", 0)),
                            int(message.get("total", 0)),
                            str(message.get("label", "")),
                        )
                elif event == "result":
                    return SweepResult(
                        payload=message.get("payload"),
                        key=key,
                        deduplicated=deduplicated,
                        elapsed_seconds=float(message.get("elapsed_seconds", 0.0)),
                        progress_events=progress_events,
                    )
                elif event == "error":
                    raise ServiceError(str(message.get("error")))
        finally:
            self._busy = False

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"req-{next(self._request_ids)}"

    def _require_connection(self) -> tuple:
        if self._reader is None or self._writer is None:
            raise RuntimeError("client is not connected; call connect() first")
        return self._reader, self._writer


def run_sweep(
    host: str,
    port: int,
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    on_progress: Optional[ProgressCallback] = None,
    timeout: Optional[float] = None,
    connect_timeout: Optional[float] = None,
) -> SweepResult:
    """Synchronous one-shot submit for scripts: connect, run, disconnect.

    ``timeout`` bounds the whole call; ``connect_timeout`` additionally
    enables retry-with-backoff while the server is still binding (see
    :meth:`ServiceClient.connect`).
    """

    async def _run() -> SweepResult:
        client = ServiceClient(host, port)
        await client.connect(timeout=connect_timeout)
        try:
            return await client.submit(workload, params, on_progress=on_progress)
        finally:
            await client.aclose()

    coro: Any = _run()
    if timeout is not None:
        coro = asyncio.wait_for(coro, timeout)
    return asyncio.run(coro)
