"""Thread-safe fan-out of engine progress callbacks to asyncio consumers.

:class:`repro.runtime.SweepEngine` reports progress through a synchronous
callback that — inside the service — fires on a worker thread (sweeps run
behind ``loop.run_in_executor`` so the event loop stays responsive).  Every
client following the same single-flight sweep needs those ticks on the
event-loop side.  :class:`ProgressBroadcaster` bridges the two worlds:

* the worker thread calls :meth:`callback` (a valid
  :data:`repro.runtime.ProgressCallback`), which trampolines the tick onto
  the event loop with ``loop.call_soon_threadsafe``;
* each interested client :meth:`subscribe`-s an ``asyncio.Queue`` and reads
  ticks until the :data:`CLOSED` sentinel, published exactly once by
  :meth:`close` when the sweep finishes.

A subscriber that joins mid-sweep simply starts receiving ticks from that
point on — progress is monotonic, so the first tick it sees already carries
the correct ``done``/``total``.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Set

#: Terminal sentinel delivered to every subscriber queue when the sweep ends.
CLOSED = object()


class ProgressBroadcaster:
    """One sweep's progress hub: worker-thread producer, asyncio consumers."""

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._queues: Set[asyncio.Queue] = set()
        self._closed = False

    # -- event-loop side ------------------------------------------------
    def subscribe(self) -> "asyncio.Queue":
        """Register a consumer queue (event-loop thread only)."""
        queue: asyncio.Queue = asyncio.Queue()
        if self._closed:
            queue.put_nowait(CLOSED)
        else:
            self._queues.add(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue") -> None:
        """Detach a consumer; safe to call after :meth:`close`."""
        self._queues.discard(queue)

    def _publish(self, item: object) -> None:
        for queue in list(self._queues):
            queue.put_nowait(item)

    def _close_now(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._publish(CLOSED)
        self._queues.clear()

    # -- worker-thread side ---------------------------------------------
    def callback(self, done: int, total: int, label: str) -> None:
        """Engine :data:`~repro.runtime.ProgressCallback`; thread-safe."""
        tick: Dict[str, object] = {"done": int(done), "total": int(total), "label": str(label)}
        self._loop.call_soon_threadsafe(self._publish, tick)

    def close(self) -> None:
        """Publish :data:`CLOSED` to every subscriber (any thread)."""
        self._loop.call_soon_threadsafe(self._close_now)


async def drain(queue: "asyncio.Queue") -> List[Dict[str, object]]:
    """Collect ticks from ``queue`` until :data:`CLOSED`; test/debug helper."""
    ticks: List[Dict[str, object]] = []
    while True:
        item = await queue.get()
        if item is CLOSED:
            return ticks
        ticks.append(item)  # type: ignore[arg-type]
