"""Wire protocol of the sweep service: newline-delimited JSON over TCP.

One message per line, UTF-8 JSON objects, ``\\n`` terminated — trivially
debuggable with ``nc`` and language-agnostic on the client side.  The full
frame-by-frame specification (both listeners, size limits, version rules)
lives in ``docs/protocol.md``; this docstring is the summary.

Client → server messages carry an ``op``:

``{"op": "submit", "id": <str>, "workload": <name>, "params": {...}}``
    Run a sweep workload.  ``id`` is a client-chosen request id echoed on
    every event the server emits for this request.  An optional ``sched``
    field (protocol v4) tags the sweep for the multi-tenant scheduler:
    either a job-class name (``"interactive"`` / ``"batch"``) or an
    object ``{"class": ..., "priority": <int>}`` — anything
    :meth:`repro.sched.SchedPolicy.parse` accepts.  Higher-priority
    sweeps dispatch first on the distributed executor and may preempt
    lower-priority in-flight work; an absent field means the batch
    default, preserving pre-v4 behaviour.  Deduplicated submits keep the
    first submitter's policy (like ``trace``).
``{"op": "cancel", "id": <str>}``
    Abort the in-flight submit with the same ``id`` on this connection.
    The submit terminates with an ``error`` event (``code="cancelled"``);
    the underlying sweep stops at the next job/chunk boundary once its
    *last* subscribed client has cancelled (single-flighted requests keep
    running while anyone is still waiting).  Closing the connection implies
    cancelling every in-flight submit on it.
``{"op": "status", "id": <str>}``
    Engine / cache / journal / in-flight statistics.
``{"op": "ping", "id": <str>}``
    Liveness probe.
``{"op": "watch", "id": <str>}``
    Subscribe to the live :mod:`repro.obs` event stream (protocol v3).
    Answered with ``watching`` and then one ``obs`` event per
    observability event — submits, cache hits/misses/evictions, chunk
    dispatch/split/steal, cancellations, journal replays — until the
    client cancels the id, disconnects, or the server stops.  A slow
    watcher drops its oldest frames rather than stalling the server.

Server → client messages carry an ``event`` and the originating ``id``:

``accepted``   — submit validated; ``key`` is the request fingerprint,
                 ``deduplicated`` tells whether the request piggybacks on
                 an identical in-flight sweep (single-flight), and
                 ``trace`` is the server-minted observability id that
                 every metric sample and ``obs`` event of this sweep
                 carries across all tiers (see :mod:`repro.obs`).
``progress``   — one engine progress tick: ``done`` / ``total`` / ``label``.
``result``     — terminal success; ``payload`` is the workload's return
                 value, ``elapsed_seconds`` the server-side wall time.
``error``      — terminal failure (or protocol-level complaint when ``id``
                 is null).  Carries a stable ``code``:

                 * ``bad-request`` — the request itself was invalid
                   (unknown workload, malformed fields, cancel of an
                   unknown id);
                 * ``busy``       — rejected by per-client backpressure
                   (in-flight cap, queued-bytes cap or the token-bucket
                   rate limit); may carry ``retry_after_seconds``;
                 * ``cancelled``  — the sweep was cancelled (by this
                   client, the last subscriber, or server shutdown);
                 * ``failed``     — the workload raised or its result
                   could not be serialised.

``watching``   — watch subscription acknowledged; ``obs`` events follow.
``obs``        — one observability event: ``data`` is the event dict
                 (``seq`` / ``ts`` / ``type`` / optional ``trace`` plus
                 type-specific fields; see :data:`repro.obs.EVENT_TYPES`).
``pong`` / ``status`` — replies to the matching ops.

The protocol is intentionally schema-light: :func:`read_message` enforces
only framing (line length, valid JSON, top-level object); per-op field
validation lives with the server, which answers violations with ``error``
events instead of dropping the connection.

The framing itself (``encode_message`` / ``decode_message`` /
``read_message``, the line-length guard and :class:`ProtocolError`) lives in
:mod:`repro.wire` and is shared with the cluster protocol
(:mod:`repro.cluster.protocol`); this module re-exports it so existing
imports keep working and adds the service's message constructors.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

# Shared NDJSON framing, re-exported for backwards compatibility.
from repro.wire import (  # noqa: F401  (re-exports)
    MAX_BINARY_BYTES,
    MAX_MESSAGE_BYTES,
    PAYLOAD_KEY,
    ProtocolError,
    decode_message,
    encode_binary,
    encode_message,
    open_connection,
    read_message,
)

#: Bumped on incompatible wire changes; the server reports it in ``status``.
#: Version 2 added the ``cancel`` op, the ``busy`` backpressure rejection
#: and the stable ``code`` field on ``error`` events.  Version 3 added the
#: ``watch`` op (``watching`` ack + ``obs`` event stream) and the ``trace``
#: observability id on ``accepted`` events and ``submit`` requests.
#: Version 4 added the optional ``sched`` field on ``submit`` (job class +
#: priority for the multi-tenant scheduler, :mod:`repro.sched`).
#: Version 5 added binary ``result`` frames for large payloads: the event
#: header declares ``{"binary": N}`` and the JSON-encoded payload follows
#: as N raw bytes with its own :data:`repro.wire.MAX_BINARY_BYTES` bound
#: (the cluster protocol jumped 3 -> 5 in the same release so both tiers
#: advertise one version for the shared binary-frame substrate).
PROTOCOL_VERSION = 5

#: Stable machine-readable failure classes carried by ``error`` events.
ERROR_CODES = ("bad-request", "busy", "cancelled", "failed")

#: Every client -> server ``op`` the service understands.  These tuples
#: are the protocol's *vocabulary*: ``docs/protocol.md`` documents each
#: member (pinned by ``tests/test_docs.py``) and the ``REPRO-PROTO01``
#: lint rule pins every frame-type literal in the codebase against them,
#: so an op can only be added here, in the docs, and in the code together.
SERVICE_OPS = ("submit", "cancel", "status", "ping", "watch")

#: Every server -> client ``event`` the service emits.
SERVICE_EVENTS = (
    "accepted",
    "progress",
    "result",
    "error",
    "watching",
    "obs",
    "pong",
    "status",
)


# ----------------------------------------------------------------------
# Message constructors (shared by server and client so field names can
# never drift apart)
# ----------------------------------------------------------------------
def submit_request(
    request_id: str,
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    trace: Optional[str] = None,
    sched: Optional[Any] = None,
) -> Dict[str, Any]:
    """Submit a workload.  ``trace`` (optional, v3) proposes a client-side
    observability id; the server echoes it on ``accepted`` when the request
    starts a fresh flight, or answers with the first submitter's id when
    the request deduplicates onto an in-flight sweep.  ``sched`` (optional,
    v4) is the scheduling tag — a job-class name or a ``{"class": ...,
    "priority": ...}`` object (:meth:`repro.sched.SchedPolicy.parse`)."""
    message = {
        "op": "submit",
        "id": request_id,
        "workload": workload,
        "params": dict(params or {}),
    }
    if trace is not None:
        message["trace"] = trace
    if sched is not None:
        message["sched"] = sched
    return message


def cancel_request(request_id: str) -> Dict[str, Any]:
    """Abort the in-flight submit with this ``id`` on this connection."""
    return {"op": "cancel", "id": request_id}


def status_request(request_id: str) -> Dict[str, Any]:
    return {"op": "status", "id": request_id}


def ping_request(request_id: str) -> Dict[str, Any]:
    return {"op": "ping", "id": request_id}


def accepted_event(
    request_id: str, key: str, deduplicated: bool, trace: str = ""
) -> Dict[str, Any]:
    return {
        "event": "accepted",
        "id": request_id,
        "key": key,
        "deduplicated": deduplicated,
        "trace": trace,
    }


def watch_request(request_id: str) -> Dict[str, Any]:
    """Subscribe to the service's live observability event stream (v3)."""
    return {"op": "watch", "id": request_id}


def watching_event(request_id: str) -> Dict[str, Any]:
    return {"event": "watching", "id": request_id}


def obs_event(request_id: str, data: Dict[str, Any]) -> Dict[str, Any]:
    """One streamed observability event (see :data:`repro.obs.EVENT_TYPES`)."""
    return {"event": "obs", "id": request_id, "data": data}


def progress_event(request_id: str, done: int, total: int, label: str) -> Dict[str, Any]:
    return {"event": "progress", "id": request_id, "done": done, "total": total, "label": label}


def result_event(request_id: str, payload: Any, elapsed_seconds: float) -> Dict[str, Any]:
    return {
        "event": "result",
        "id": request_id,
        "payload": payload,
        "elapsed_seconds": elapsed_seconds,
    }


#: Results whose JSON encoding exceeds this leave the JSON line for a
#: binary frame (v5): header + raw payload bytes, bounded by
#: :data:`repro.wire.MAX_BINARY_BYTES` instead of the line limit.
RESULT_BINARY_BYTES = 256 * 1024


def result_header(request_id: str, elapsed_seconds: float) -> Dict[str, Any]:
    """Header of a binary ``result`` frame (v5): no inline ``payload`` —
    the JSON-encoded payload follows the line as declared raw bytes."""
    return {
        "event": "result",
        "id": request_id,
        "elapsed_seconds": elapsed_seconds,
    }


def error_event(
    request_id: Optional[str], message: str, code: str = "failed"
) -> Dict[str, Any]:
    """Terminal failure for one request (``code`` from :data:`ERROR_CODES`)."""
    return {"event": "error", "id": request_id, "error": message, "code": code}


def busy_event(
    request_id: Optional[str],
    message: str,
    retry_after_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """Backpressure rejection: the per-client budget is exhausted.

    ``retry_after_seconds`` (when the limit is the token-bucket rate) tells
    a well-behaved client how long to back off before resubmitting.
    """
    event = error_event(request_id, message, code="busy")
    if retry_after_seconds is not None:
        event["retry_after_seconds"] = retry_after_seconds
    return event
