"""Wire protocol of the sweep service: newline-delimited JSON over TCP.

One message per line, UTF-8 JSON objects, ``\\n`` terminated — trivially
debuggable with ``nc`` and language-agnostic on the client side.

Client → server messages carry an ``op``:

``{"op": "submit", "id": <str>, "workload": <name>, "params": {...}}``
    Run a sweep workload.  ``id`` is a client-chosen request id echoed on
    every event the server emits for this request.
``{"op": "status", "id": <str>}``
    Engine / cache / in-flight statistics.
``{"op": "ping", "id": <str>}``
    Liveness probe.

Server → client messages carry an ``event`` and the originating ``id``:

``accepted``   — submit validated; ``key`` is the request fingerprint and
                 ``deduplicated`` tells whether the request piggybacks on
                 an identical in-flight sweep (single-flight).
``progress``   — one engine progress tick: ``done`` / ``total`` / ``label``.
``result``     — terminal success; ``payload`` is the workload's return
                 value, ``elapsed_seconds`` the server-side wall time.
``error``      — terminal failure (or protocol-level complaint when ``id``
                 is null).
``pong`` / ``status`` — replies to the matching ops.

The protocol is intentionally schema-light: :func:`read_message` enforces
only framing (line length, valid JSON, top-level object); per-op field
validation lives with the server, which answers violations with ``error``
events instead of dropping the connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

#: Hard bound on one framed message.  Generous enough for corner tables
#: (the fast DSE payload is ~10 kB), small enough to stop a rogue peer
#: from ballooning server memory.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

#: Bumped on incompatible wire changes; the server reports it in ``status``.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A peer violated the framing rules (oversized line, bad JSON, ...)."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (JSON + newline)."""
    data = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_MESSAGE_BYTES} byte limit"
        )
    return data + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"message is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


async def read_message(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on clean end-of-stream.

    The caller must have opened the stream with ``limit=MAX_MESSAGE_BYTES``
    (both :class:`repro.service.server.SweepService` and
    :class:`repro.service.client.ServiceClient` do), so an oversized line
    surfaces here as a :class:`ProtocolError` rather than unbounded
    buffering.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-message") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            f"message exceeds the {MAX_MESSAGE_BYTES} byte limit"
        ) from None
    return decode_message(line)


# ----------------------------------------------------------------------
# Message constructors (shared by server and client so field names can
# never drift apart)
# ----------------------------------------------------------------------
def submit_request(request_id: str, workload: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    return {"op": "submit", "id": request_id, "workload": workload, "params": dict(params or {})}


def status_request(request_id: str) -> Dict[str, Any]:
    return {"op": "status", "id": request_id}


def ping_request(request_id: str) -> Dict[str, Any]:
    return {"op": "ping", "id": request_id}


def accepted_event(request_id: str, key: str, deduplicated: bool) -> Dict[str, Any]:
    return {"event": "accepted", "id": request_id, "key": key, "deduplicated": deduplicated}


def progress_event(request_id: str, done: int, total: int, label: str) -> Dict[str, Any]:
    return {"event": "progress", "id": request_id, "done": done, "total": total, "label": label}


def result_event(request_id: str, payload: Any, elapsed_seconds: float) -> Dict[str, Any]:
    return {
        "event": "result",
        "id": request_id,
        "payload": payload,
        "elapsed_seconds": elapsed_seconds,
    }


def error_event(request_id: Optional[str], message: str) -> Dict[str, Any]:
    return {"event": "error", "id": request_id, "error": message}
