"""Pluggable sweep executors.

Three strategies run the same list of :class:`~repro.runtime.jobs.Job`
objects and are required to produce bit-identical, order-preserving results:

* :class:`SerialExecutor` — runs jobs inline; the reference behaviour every
  other executor must match and the default of :class:`repro.runtime.SweepEngine`.
* :class:`ParallelExecutor` — fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with configurable
  chunking; chunks keep the pickling overhead per job low on fine-grained
  grids.  Falls back to in-process execution when the pool cannot be
  created (single-CPU hosts, sandboxed environments) or when there is
  nothing to parallelise — still through the sweep's ``batch_fn`` when it
  has one, so degraded hosts keep the vectorised inner loop.
* :class:`BatchExecutor` — groups jobs and hands whole groups to a sweep's
  vectorised ``batch_fn`` (when provided), amortising shared setup across a
  corner-grid batch; without a ``batch_fn`` it degrades to a chunked serial
  loop.

A fourth strategy lives one layer up and registers here by name:
``make_executor("distributed", workers=..., connect=...)`` builds a
:class:`repro.cluster.DistributedExecutor`, which shards chunks across
long-lived worker *processes* (local subprocesses and/or workers on other
hosts) with heartbeats, work stealing and retry-on-worker-death — same
contract, same bit-identical results.

Executors never reorder results: job ``i``'s result is always at index
``i``, whatever completes first.

Every strategy also honours **cooperative cancellation**: ``execute``
accepts an optional ``cancel`` :class:`threading.Event` and raises
:class:`SweepCancelled` at the next job / chunk / batch boundary once it is
set.  Work that is already running finishes (blocking solver calls cannot
be interrupted), but nothing further starts — this is what lets the serving
tier abort a sweep whose every client disconnected without burning CPU to
the end (see :mod:`repro.service`).

``execute`` also accepts an optional ``trace`` id (the observability
layer's cross-tier request id, see :mod:`repro.obs`).  The in-process
strategies run where the engine already emitted the trace-stamped events,
so they accept and ignore it; the distributed strategy forwards it into
every chunk frame so worker-side completions stay attributable.

``execute`` likewise accepts an optional ``sched`` policy
(:mod:`repro.sched`): the in-process strategies have no queue to
prioritise — a sweep that reached them runs immediately — so they accept
and ignore it, while the distributed strategy forwards it to the
coordinator's multi-tenant scheduler for priority dispatch and
preemption.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Any, Callable, List, Optional, Sequence

from repro.runtime.jobs import Job

# progress callbacks receive (jobs done, jobs total, label of the last unit)
ProgressCallback = Callable[[int, int, str], None]

# cooperative cancellation: executors poll this between work units / chunks
CancelEvent = threading.Event


class SweepCancelled(RuntimeError):
    """The sweep was cooperatively cancelled before it completed.

    Raised by every executor when the ``cancel`` event passed to
    :meth:`execute` is set.  Cancellation is *cooperative*: a work unit that
    is already running finishes (a blocking solver call cannot be interrupted
    mid-flight), but no further unit starts — the guarantee is "stops within
    one chunk boundary", not "stops instantly".  Partial results are
    discarded; nothing is written to the artifact cache for a cancelled
    sweep.
    """


def _check_cancel(cancel: Optional[CancelEvent], context: str) -> None:
    if cancel is not None and cancel.is_set():
        raise SweepCancelled(f"sweep cancelled {context}")


def _notify(progress: Optional[ProgressCallback], done: int, total: int, label: str) -> None:
    if progress is not None:
        progress(done, total, label)


def _run_chunk(jobs: Sequence[Job]) -> List[Any]:
    """Run a chunk of jobs in the current process (process-pool task body)."""
    return [job.run() for job in jobs]


def _chunked(jobs: Sequence[Job], size: int) -> List[List[Job]]:
    size = max(1, int(size))
    return [list(jobs[start : start + size]) for start in range(0, len(jobs), size)]


class SerialExecutor:
    """Run every job inline, in submission order.

    The reference executor: every other strategy must produce the same
    results in the same order.  ``cancel`` is checked before each job, so a
    cancelled sweep stops within one job boundary.
    """

    name = "serial"

    def execute(
        self,
        jobs: Sequence[Job],
        progress: Optional[ProgressCallback] = None,
        batch_fn: Optional[Callable[[Sequence[Job]], List[Any]]] = None,
        cancel: Optional[CancelEvent] = None,
        trace: Optional[str] = None,
        sched: Optional[Any] = None,
    ) -> List[Any]:
        results: List[Any] = []
        total = len(jobs)
        for index, job in enumerate(jobs):
            _check_cancel(cancel, f"before job {index}/{total}")
            results.append(job.run())
            _notify(progress, index + 1, total, job.name)
        return results


def _serial_fallback(
    jobs: Sequence[Job],
    progress: Optional[ProgressCallback],
    batch_fn: Optional[Callable[[Sequence[Job]], List[Any]]],
    cancel: Optional[CancelEvent],
) -> List[Any]:
    """Degrade to in-process execution without losing the vectorised path.

    Every executor that falls back to running jobs locally (nothing to
    parallelise, pool creation failed, no cluster workers) routes through
    here: a sweep that carries a ``batch_fn`` keeps its whole-chunk NumPy
    inner loop via :class:`BatchExecutor` — so sandboxed single-core hosts
    still get the vectorised hot path — and only batch-less sweeps drop to
    the per-job serial loop.
    """
    if batch_fn is not None:
        return BatchExecutor().execute(jobs, progress, batch_fn=batch_fn, cancel=cancel)
    return SerialExecutor().execute(jobs, progress, cancel=cancel)


class ParallelExecutor:
    """Process-pool executor with configurable chunking.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to the host CPU count.
    chunksize:
        Jobs per pool task.  The default splits the sweep into roughly four
        chunks per worker, which balances scheduling overhead against load
        imbalance on heterogeneous grids.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None, chunksize: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize

    def _default_chunksize(self, job_count: int) -> int:
        return max(1, job_count // (4 * self.max_workers))

    def execute(
        self,
        jobs: Sequence[Job],
        progress: Optional[ProgressCallback] = None,
        batch_fn: Optional[Callable[[Sequence[Job]], List[Any]]] = None,
        cancel: Optional[CancelEvent] = None,
        trace: Optional[str] = None,
        sched: Optional[Any] = None,
    ) -> List[Any]:
        _check_cancel(cancel, "before dispatch")
        if len(jobs) <= 1 or self.max_workers <= 1:
            return _serial_fallback(jobs, progress, batch_fn, cancel)
        chunksize = self.chunksize or self._default_chunksize(len(jobs))
        chunks = _chunked(jobs, chunksize)
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.max_workers, len(chunks)))
        except (OSError, ValueError, PermissionError):
            # Sandboxes without working semaphores / fork land here; the
            # sweep still completes, just without the parallel speedup.
            return _serial_fallback(jobs, progress, batch_fn, cancel)
        results: List[Any] = [None] * len(jobs)
        total = len(jobs)
        done = 0
        try:
            futures = {pool.submit(_run_chunk, chunk): index for index, chunk in enumerate(chunks)}
            for future in as_completed(futures):
                # Checked between completed chunks: a cancelled sweep stops
                # collecting, revokes the not-yet-started chunks and raises.
                if cancel is not None and cancel.is_set():
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise SweepCancelled("sweep cancelled between parallel chunks")
                chunk_index = futures[future]
                chunk = chunks[chunk_index]
                chunk_results = future.result()
                offset = chunk_index * chunksize
                for position, value in enumerate(chunk_results):
                    results[offset + position] = value
                done += len(chunk)
                _notify(progress, done, total, chunk[-1].name)
        except BrokenExecutor:
            # Pool construction succeeded but the workers could not start
            # (process limits, seccomp sandboxes): degrade to serial, same
            # as when the pool cannot be created at all.
            pool.shutdown()
            return _serial_fallback(jobs, progress, batch_fn, cancel)
        finally:
            pool.shutdown()
        return results


class BatchExecutor:
    """Grouped executor for vectorisable corner grids.

    Jobs are split into groups of ``batch_size`` and each group is handed to
    the sweep's ``batch_fn`` in one call, letting the sweep amortise shared
    setup (model tables, operating-condition objects) across the whole
    batch.  A sweep without a ``batch_fn`` runs as a chunked serial loop.
    """

    name = "batch"

    def __init__(self, batch_size: int = 8):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.batch_size = batch_size

    def execute(
        self,
        jobs: Sequence[Job],
        progress: Optional[ProgressCallback] = None,
        batch_fn: Optional[Callable[[Sequence[Job]], List[Any]]] = None,
        cancel: Optional[CancelEvent] = None,
        trace: Optional[str] = None,
        sched: Optional[Any] = None,
    ) -> List[Any]:
        evaluate = batch_fn if batch_fn is not None else _run_chunk
        results: List[Any] = []
        total = len(jobs)
        for batch in _chunked(jobs, self.batch_size):
            _check_cancel(cancel, "between batches")
            batch_results = list(evaluate(batch))
            if len(batch_results) != len(batch):
                raise RuntimeError(
                    f"batch_fn returned {len(batch_results)} results for {len(batch)} jobs"
                )
            results.extend(batch_results)
            _notify(progress, len(results), total, batch[-1].name)
        return results


def _make_distributed(**kwargs: Any):
    # Imported lazily: repro.runtime stays free of any cluster (and hence
    # asyncio/socket) machinery unless the distributed strategy is chosen.
    from repro.cluster.executor import DistributedExecutor

    return DistributedExecutor(**kwargs)


_EXECUTOR_SPECS = {
    "serial": (SerialExecutor, frozenset()),
    "parallel": (ParallelExecutor, frozenset({"max_workers", "chunksize"})),
    "batch": (BatchExecutor, frozenset({"batch_size"})),
    "distributed": (
        _make_distributed,
        frozenset(
            {
                "workers",
                "connect",
                "chunksize",
                "chunk_window",
                "min_workers",
                "heartbeat_interval",
                "heartbeat_timeout",
                "start_timeout",
            }
        ),
    ),
}


def make_executor(name: str, **kwargs: Any):
    """Build an executor by CLI name (``serial``/``parallel``/``batch``/``distributed``).

    Parameters
    ----------
    name:
        Registered strategy name.  ``serial`` takes no options; ``parallel``
        accepts ``max_workers`` / ``chunksize``; ``batch`` accepts
        ``batch_size``; ``distributed`` accepts ``workers`` / ``connect`` /
        ``chunksize`` / ``chunk_window`` / ``min_workers`` /
        ``heartbeat_interval`` / ``heartbeat_timeout`` / ``start_timeout``
        (see :class:`repro.cluster.DistributedExecutor`; ``chunk_window``
        enables the adaptive telemetry-driven scheduler).
    **kwargs:
        Options forwarded to the strategy's constructor.  ``None``-valued
        options mean "not set" (so CLI defaults can always be forwarded).

    Raises
    ------
    ValueError
        For an unknown strategy name, for an option the chosen executor
        does not understand (``make_executor("serial", max_workers=8)``
        raises instead of silently ignoring the flag), and for invalid
        values (``batch_size=0``, ``max_workers=0``), which propagate the
        constructor's ``ValueError`` instead of being coerced to a default.

    Examples
    --------
    >>> make_executor("serial").name
    'serial'
    >>> make_executor("parallel", max_workers=2).max_workers
    2
    >>> make_executor("batch", batch_size=None).batch_size  # None = default
    8
    >>> make_executor("serial", max_workers=8)
    Traceback (most recent call last):
        ...
    ValueError: executor 'serial' does not accept max_workers (it accepts no options)
    """
    try:
        factory, accepted = _EXECUTOR_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; choose from {sorted(_EXECUTOR_SPECS)}"
        ) from None
    options = {key: value for key, value in kwargs.items() if value is not None}
    rejected = sorted(set(options) - accepted)
    if rejected:
        accepts = ", ".join(sorted(accepted)) if accepted else "no options"
        raise ValueError(
            f"executor {name!r} does not accept {', '.join(rejected)} "
            f"(it accepts {accepts})"
        )
    return factory(**options)
