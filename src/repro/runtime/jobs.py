"""Work units of the sweep-execution engine.

Every driver workload in the repository — characterisation sweeps,
design-space corner grids, PVT sensitivity scans, Monte-Carlo batches, DNN
table evaluations — decomposes into independent, deterministic work units.
A :class:`Job` captures one such unit as a picklable callable plus its
arguments, so any executor (in-process, process pool, vectorised batch) can
run it and every executor produces bit-identical results.

Jobs are *content-addressed*: :func:`fingerprint` reduces the job's inputs
(technology card, sweep plan, operating conditions, multiplier configuration,
code version, ...) to a stable SHA-256 digest that is identical across
processes and Python invocations.  The digest keys the on-disk artifact cache
(:mod:`repro.runtime.cache`), which is what makes warm re-runs of expensive
sweeps near-instant.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Version string folded into every job fingerprint.

    Combines :data:`repro.__version__` with a digest of the package's Python
    sources, so *any* code change — not just a version bump — invalidates
    every cached artifact.  A cache can therefore never serve sweeps
    computed by older model physics.  The digest is computed once per
    process and is identical across processes running the same tree.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import pathlib

        import repro

        digest = hashlib.sha256()
        package_root = pathlib.Path(repro.__file__).resolve().parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(path.read_bytes())
        _CODE_VERSION = f"{repro.__version__}+{digest.hexdigest()[:16]}"
    return _CODE_VERSION


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a canonical, JSON-serialisable structure.

    The mapping is injective enough for cache keys: two values that canonise
    identically produce identical sweep results.  Unknown types raise so an
    unstable ``repr`` can never leak into a fingerprint silently.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() round-trips doubles exactly and is stable across platforms;
        # float() first strips numpy float subclasses whose repr differs.
        return ["f", repr(float(value))]
    if isinstance(value, enum.Enum):
        return ["enum", type(value).__name__, value.name]
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return [
            "ndarray",
            data.dtype.str,
            list(data.shape),
            hashlib.sha256(data.tobytes()).hexdigest(),
        ]
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [
            [field.name, _canonical(getattr(value, field.name))]
            for field in dataclasses.fields(value)
        ]
        return ["dataclass", type(value).__name__, fields]
    if isinstance(value, dict):
        # Keys are canonicalised like any other value (NOT stringified):
        # ``{1: x}`` and ``{"1": x}`` are distinct inputs and must not
        # collide in the fingerprint.  Mixed key types sort by their JSON
        # canonical form, which is deterministic across processes.
        items = sorted(
            ([_canonical(key), _canonical(item)] for key, item in value.items()),
            key=lambda pair: json.dumps(pair[0], sort_keys=True, separators=(",", ":")),
        )
        return ["dict", items]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canonical(item) for item in value]]
    if isinstance(value, (set, frozenset)):
        return ["set", sorted(json.dumps(_canonical(item)) for item in value)]
    if callable(value):
        return ["fn", getattr(value, "__module__", "?"), getattr(value, "__qualname__", repr(value))]
    if hasattr(value, "to_dict"):
        return ["obj", type(value).__name__, _canonical(value.to_dict())]
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def fingerprint(*parts: Any) -> str:
    """Stable SHA-256 content hash of arbitrarily nested sweep inputs.

    The hash is identical across processes and interpreter runs (it never
    relies on ``hash()`` / ``id()`` / ``repr`` of objects), which the cache
    tests assert by recomputing keys in a subprocess.
    """
    canonical = _canonical(list(parts))
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_key(kind: str, *parts: Any) -> str:
    """Cache key of one job: kind tag + code version + content fingerprint."""
    return fingerprint(kind, code_version(), *parts)


@dataclasses.dataclass
class Job:
    """One independently executable, deterministic unit of sweep work.

    Attributes
    ----------
    fn:
        Module-level callable (must be picklable for the process-pool
        executor).  Given identical arguments it must return identical
        results — that determinism is what lets serial, parallel and batch
        executors produce bit-identical sweeps.
    args, kwargs:
        Arguments passed to ``fn``.
    name:
        Display name surfaced through progress callbacks.
    key:
        Content-address of the job (from :func:`job_key`); ``None`` marks
        the job as uncacheable.
    encode, decode:
        Optional codecs translating the job result to / from a cacheable
        :class:`repro.runtime.cache.Artifact`.  Both must be set for the
        engine to cache the result.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    name: str = ""
    key: Optional[str] = None
    encode: Optional[Callable[[Any], Any]] = None
    decode: Optional[Callable[[Any], Any]] = None

    def run(self) -> Any:
        """Execute the job in the current process."""
        return self.fn(*self.args, **self.kwargs)

    @property
    def cacheable(self) -> bool:
        """Whether the engine may serve / store this job from the cache."""
        return self.key is not None and self.encode is not None and self.decode is not None


@dataclasses.dataclass
class SweepSpec:
    """A named collection of jobs submitted to the engine as one sweep.

    Attributes
    ----------
    name:
        Sweep label used in progress reporting and engine statistics.
    jobs:
        The work units; the engine returns their results in this order
        regardless of executor scheduling.
    batch_fn:
        Optional vectorised evaluator: given a sequence of jobs it returns
        their results in order, amortising shared setup across the batch.
        Used by the batch executor for corner grids; executors without
        batch support simply run the jobs individually.
    """

    name: str
    jobs: List[Job]
    batch_fn: Optional[Callable[[Sequence[Job]], List[Any]]] = None

    def __len__(self) -> int:
        return len(self.jobs)
