"""repro.runtime — parallel sweep execution with content-addressed caching.

Every heavyweight driver in the repository (reference characterisation, the
48-corner design-space exploration, PVT / Monte-Carlo batches, DNN table
evaluations) submits its work to one front door, the :class:`SweepEngine`:

* workloads are decomposed into deterministic :class:`~repro.runtime.jobs.Job`
  units with stable content hashes (:mod:`repro.runtime.jobs`),
* execution strategy is pluggable — serial, process-pool parallel with
  configurable chunking, vectorised batches (:mod:`repro.runtime.executors`)
  or the cluster-backed ``distributed`` strategy (:mod:`repro.cluster`,
  long-lived worker processes on any host) — and every strategy produces
  bit-identical results,
* results of cache-enabled jobs are persisted as content-addressed ``.npz``
  artifacts (:mod:`repro.runtime.cache`); ``ArtifactCache(max_bytes=...)``
  additionally LRU-evicts cold artifacts so the cache stays size-bounded,
* the unified CLI (``python -m repro run dse|pvt|characterize|tables``)
  routes every paper figure / table through the engine
  (:mod:`repro.runtime.cli`), and ``python -m repro serve`` exposes the
  same engine to many concurrent network clients (:mod:`repro.service`).

Typical use::

    from repro.runtime import ArtifactCache, ParallelExecutor, SweepEngine

    engine = SweepEngine(ParallelExecutor(max_workers=8), cache=ArtifactCache())
    result = explore_design_space(suite, engine=engine)   # 48 corners, parallel
    data = characterize(technology, engine=engine)        # warm cache: instant

Long-lived serving (see :mod:`repro.service` for the protocol)::

    engine = SweepEngine(cache=ArtifactCache(max_bytes=2_000_000_000))
    service = SweepService(engine, port=7463)     # asyncio TCP front door
    await service.serve_forever()                 # single-flight + streaming

Progress callbacks always see the *true* sweep size: cache hits count as
completed work, so a warm re-run still reports ``total`` ticks instead of
going dark.

Sweeps are **cooperatively cancellable**: ``SweepEngine.run(...,
cancel_event=threading.Event())`` (or an engine-level default) makes every
executor stop at the next job / chunk boundary and raise
:class:`SweepCancelled` once the event is set — the mechanism behind the
service's wire-level ``cancel`` and disconnect-implies-cancel semantics
(see ``docs/architecture.md``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.runtime.cache import Artifact, ArtifactCache, CacheStats, default_cache_dir
from repro.runtime.executors import (
    BatchExecutor,
    CancelEvent,
    ParallelExecutor,
    ProgressCallback,
    SerialExecutor,
    SweepCancelled,
    make_executor,
)
from repro.runtime.jobs import Job, SweepSpec, code_version, fingerprint, job_key

__all__ = [
    "Artifact",
    "ArtifactCache",
    "BatchExecutor",
    "CacheStats",
    "CancelEvent",
    "EngineStats",
    "Job",
    "ParallelExecutor",
    "ProgressCallback",
    "SerialExecutor",
    "SweepCancelled",
    "SweepEngine",
    "SweepSpec",
    "code_version",
    "default_cache_dir",
    "default_engine",
    "fingerprint",
    "job_key",
    "make_executor",
]


# Process-wide mirrors of the per-instance EngineStats counters, so the
# Prometheus endpoint sees every engine in the process with no polling.
_SWEEPS_TOTAL = obs.counter("repro_engine_sweeps_total", "Sweeps started.")
_JOBS_SUBMITTED = obs.counter("repro_engine_jobs_submitted_total", "Jobs submitted to engines.")
_JOBS_EXECUTED = obs.counter("repro_engine_jobs_executed_total", "Jobs actually executed (cache misses).")
_CACHE_HITS = obs.counter("repro_engine_cache_hits_total", "Jobs served from the artifact cache.")
_RUN_SECONDS = obs.histogram("repro_engine_run_seconds", "Wall time of completed engine runs.")

#: Jobs per vectorised batch when the engine auto-selects the batch
#: strategy for a ``batch_fn``-carrying spec.  Large enough to amortise
#: per-pass Python overhead across a Monte-Carlo / corner-grid group,
#: small enough that cooperative cancellation still lands within a
#: reasonable boundary.
AUTO_BATCH_SIZE = 64


@dataclasses.dataclass
class EngineStats:
    """Aggregate counters of one :class:`SweepEngine` instance."""

    sweeps: int = 0
    jobs_submitted: int = 0
    jobs_executed: int = 0
    cache_hits: int = 0

    def describe(self) -> str:
        """Short human-readable counter summary."""
        return (
            f"{self.sweeps} sweeps, {self.jobs_submitted} jobs submitted, "
            f"{self.jobs_executed} executed, {self.cache_hits} served from cache"
        )


class SweepEngine:
    """Unified front door for sweep execution.

    Parameters
    ----------
    executor:
        Execution strategy.  Any object with the executor ``execute``
        contract works — the registry names (:func:`make_executor`) are
        ``serial``, ``parallel``, ``batch`` and ``distributed``.  When left
        ``None`` the engine runs in **auto** mode: sweeps whose spec
        carries a vectorised ``batch_fn`` execute through the batch
        strategy (the whole-chunk NumPy hot path), everything else runs
        serially — numerically identical either way, since every strategy
        is bit-identical by contract.  An explicitly passed executor always
        wins: the engine then never second-guesses the caller's strategy.
    cache:
        Optional :class:`ArtifactCache`.  Jobs that carry a content hash and
        codecs are served from the cache when possible and stored after
        execution; jobs without them always execute.
    progress:
        Default progress callback used by :meth:`run` when the caller does
        not pass one (the CLI installs its progress line here).
    cancel_event:
        Default cooperative-cancellation event used by :meth:`run` when the
        caller does not pass one.  Setting it makes the *next* ``run`` (and
        any run currently executing through this engine) raise
        :class:`SweepCancelled` at the next job / chunk boundary.  The
        serving tier gives every single-flighted request its own engine view
        with a per-flight event here, so a cancelled request aborts without
        touching unrelated sweeps.

    Raises
    ------
    SweepCancelled
        From :meth:`run` / :meth:`run_one` / :meth:`map` when the effective
        cancel event is set before the sweep completes.  No partial results
        are returned and nothing is written to the cache.

    Examples
    --------
    >>> engine = SweepEngine()
    >>> engine.map(lambda a, b: a + b, [(1, 2), (3, 4)])
    [3, 7]
    >>> engine.stats.sweeps, engine.stats.jobs_executed
    (1, 2)
    """

    def __init__(
        self,
        executor: Optional[Any] = None,
        cache: Optional[ArtifactCache] = None,
        progress: Optional[ProgressCallback] = None,
        cancel_event: Optional[CancelEvent] = None,
    ):
        self.executor = executor if executor is not None else SerialExecutor()
        # Auto-select (engine constructed without an explicit strategy):
        # specs carrying a batch_fn take the vectorised batch strategy.
        self._auto_batch = executor is None
        self.cache = cache
        self.progress = progress
        self.cancel_event = cancel_event
        # Trace id of the originating request (set per engine view by the
        # serving tier); stamped on every observability event this run
        # emits and forwarded to trace-aware executors.
        self.trace_id: Optional[str] = None
        # Scheduling policy of the originating request (:mod:`repro.sched`;
        # set per engine view by the serving tier): forwarded to
        # sched-aware executors so the coordinator can prioritise and
        # preempt.  ``None`` = untagged, the batch default.
        self.sched: Optional[Any] = None
        self.stats = EngineStats()
        # Counter updates are read-modify-write; the serving layer runs
        # sweeps from several worker threads against shallow engine copies
        # that share this lock (and the stats object), so fleet-wide
        # counters stay exact under concurrency.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        work: Union[SweepSpec, Sequence[Job]],
        progress: Optional[ProgressCallback] = None,
        cancel_event: Optional[CancelEvent] = None,
    ) -> List[Any]:
        """Execute a sweep and return the job results in submission order.

        Cacheable jobs are resolved against the artifact cache first; only
        the misses are handed to the executor, and their results are stored
        back so the next run of the same sweep is near-instant.

        ``cancel_event`` (or the engine-level :attr:`cancel_event` default)
        enables cooperative cancellation: once set, the run raises
        :class:`SweepCancelled` at the next job / chunk boundary — during
        cache resolution, between executed jobs, or (for the distributed
        executor) after the coordinator revokes the outstanding chunks.  A
        cancelled run stores nothing in the cache.
        """
        spec = work if isinstance(work, SweepSpec) else SweepSpec("sweep", list(work))
        progress = progress if progress is not None else self.progress
        cancel = cancel_event if cancel_event is not None else self.cancel_event
        trace = self.trace_id
        started = time.monotonic()
        with self._stats_lock:
            self.stats.sweeps += 1
            self.stats.jobs_submitted += len(spec.jobs)
        _SWEEPS_TOTAL.inc()
        _JOBS_SUBMITTED.inc(len(spec.jobs))
        obs.EVENTS.emit("run_started", trace=trace, sweep=spec.name, jobs=len(spec.jobs))

        # Progress is always reported against the true sweep size: cache
        # hits count as completed work, so a warm run still emits events
        # and a mixed run never jumps from a smaller executed-only total.
        total = len(spec.jobs)
        results: List[Any] = [None] * len(spec.jobs)
        pending: List[Tuple[int, Job]] = []
        hits = 0
        for index, job in enumerate(spec.jobs):
            if cancel is not None and cancel.is_set():
                raise SweepCancelled(f"sweep {spec.name!r} cancelled during cache resolution")
            if self.cache is not None and job.cacheable:
                artifact = self.cache.get(job.key)
                if artifact is not None:
                    results[index] = job.decode(artifact)
                    with self._stats_lock:
                        self.stats.cache_hits += 1
                    _CACHE_HITS.inc()
                    hits += 1
                    if progress is not None:
                        progress(hits, total, f"{job.name or 'job'} (cached)")
                    continue
            pending.append((index, job))

        obs.EVENTS.emit(
            "cache_resolved", trace=trace, sweep=spec.name, hits=hits, pending=len(pending)
        )
        if pending:
            pending_jobs = [job for _, job in pending]
            executor_progress = None
            if progress is not None:
                offset = hits

                def executor_progress(done: int, _executed_total: int, label: str) -> None:
                    progress(offset + done, total, label)

            # Optional keywords are only forwarded when armed, so
            # third-party executors that predate the cancel / trace /
            # sched contracts keep working for every plain run.
            extra = {}
            if cancel is not None:
                extra["cancel"] = cancel
            if trace is not None:
                extra["trace"] = trace
            if self.sched is not None:
                extra["sched"] = self.sched
            executor = self.executor
            if self._auto_batch and spec.batch_fn is not None:
                # Auto mode: a sweep that brought its vectorised inner
                # loop runs through the batch strategy by default —
                # whole groups of jobs per NumPy pass instead of one
                # Python call per job.  Bit-identical by the executor
                # contract (the differential property suite enforces it).
                executor = BatchExecutor(batch_size=AUTO_BATCH_SIZE)
            executed = executor.execute(
                pending_jobs,
                progress=executor_progress,
                batch_fn=spec.batch_fn,
                **extra,
            )
            with self._stats_lock:
                self.stats.jobs_executed += len(pending_jobs)
            _JOBS_EXECUTED.inc(len(pending_jobs))
            for (index, job), value in zip(pending, executed):
                results[index] = value
                if self.cache is not None and job.cacheable:
                    self.cache.put(job.key, job.encode(value))
        elapsed = time.monotonic() - started
        _RUN_SECONDS.observe(elapsed)
        obs.EVENTS.emit(
            "run_finished",
            trace=trace,
            sweep=spec.name,
            jobs=total,
            executed=len(pending),
            seconds=elapsed,
        )
        return results

    def run_one(self, job: Job) -> Any:
        """Execute a single job through the engine (cache included)."""
        return self.run(SweepSpec(job.name or "job", [job]))[0]

    def map(
        self,
        fn: Callable[..., Any],
        argument_tuples: Iterable[Tuple[Any, ...]],
        name: str = "map",
        progress: Optional[ProgressCallback] = None,
        batch_fn: Optional[Callable[[Sequence[Job]], List[Any]]] = None,
    ) -> List[Any]:
        """Convenience: run ``fn(*args)`` for every tuple as one sweep.

        ``batch_fn`` (optional) registers a vectorised whole-group
        evaluator on the spec, exactly as constructing the
        :class:`~repro.runtime.jobs.SweepSpec` by hand would — an
        auto-mode engine (and the batch strategy) then evaluates grouped
        jobs in single NumPy passes.
        """
        jobs = [
            Job(fn=fn, args=tuple(args), name=f"{name}[{index}]")
            for index, args in enumerate(argument_tuples)
        ]
        return self.run(SweepSpec(name, jobs, batch_fn=batch_fn), progress=progress)

    def describe(self) -> str:
        """Human-readable engine summary (executor, cache, counters)."""
        executor_name = getattr(self.executor, "name", type(self.executor).__name__)
        cache_part = self.cache.describe() if self.cache is not None else "no cache"
        return f"SweepEngine[{executor_name}] — {self.stats.describe()} — {cache_part}"


def default_engine(
    executor: Optional[str] = None,
    cache_dir: Optional[Any] = None,
    use_cache: bool = False,
    **executor_kwargs: Any,
) -> SweepEngine:
    """Build an engine from CLI-style options.

    ``executor=None`` (the default) builds an **auto** engine: sweeps
    carrying a ``batch_fn`` run through the vectorised batch strategy,
    everything else serially.  Passing a registry name pins the strategy.
    ``use_cache=True`` attaches an :class:`ArtifactCache` rooted at
    ``cache_dir`` (or the :func:`default_cache_dir`).
    """
    cache = ArtifactCache(cache_dir) if use_cache else None
    if executor is None:
        if executor_kwargs:
            raise ValueError(
                f"executor options {sorted(executor_kwargs)} need an explicit executor"
            )
        return SweepEngine(cache=cache)
    return SweepEngine(make_executor(executor, **executor_kwargs), cache=cache)
