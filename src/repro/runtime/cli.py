"""Unified command-line front door: ``python -m repro``.

Every paper figure / table driver is reachable through one entry point and
runs through the :class:`repro.runtime.SweepEngine`::

    python -m repro run dse          # 48-corner design-space exploration
    python -m repro run pvt          # Fig. 5 sweeps + Fig. 8 robustness
    python -m repro run characterize # reference characterisation sweeps
    python -m repro run tables       # DNN accuracy tables (Table II protocol)
    python -m repro serve            # long-lived sweep service (repro.service)
    python -m repro gateway          # HTTP/SSE front door over a service (repro.gateway)
    python -m repro worker           # long-lived cluster worker (repro.cluster)
    python -m repro cluster status   # live coordinator / worker statistics
    python -m repro cluster status --watch   # follow the live event stream
    python -m repro cache info       # artifact-cache statistics (--json for tools)
    python -m repro cache clear      # drop every cached artifact
    python -m repro cache evict --max-bytes 500M   # LRU-trim the cache
    python -m repro lint             # project-aware static analysis (docs/lint.md)

Running sweeps at scale
-----------------------
The engine options apply to every ``run`` subcommand:

* Without ``--executor`` the engine runs in **auto** mode: sweeps that
  register a vectorised ``batch_fn`` (PVT Monte-Carlo, characterisation,
  the DSE corner grid) are evaluated as whole NumPy batches — the default
  hot path — and everything else runs serially.  Results are bit-identical
  to every explicit strategy.
* ``--executor parallel --workers N`` fans independent jobs (characterisation
  operating points, design-space corners, PVT sensitivity points) out over a
  process pool.  Results are bit-identical to serial execution — jobs are
  deterministic work units and the engine preserves submission order.
* ``--executor distributed --workers N`` shards the same jobs across N
  long-lived worker *processes* through the cluster coordinator
  (:mod:`repro.cluster`) — still bit-identical.  Add ``--connect H:P`` to
  bind the cluster endpoint on a routable address so additional
  ``python -m repro worker --connect H:P`` processes (any host) join the
  pool mid-run; ``python -m repro cluster status --connect H:P`` shows
  live worker / dispatch / steal / retry statistics plus each worker's
  measured EWMA throughput.
* ``--chunk-window SECONDS`` (distributed only) switches the coordinator
  to the adaptive scheduler: each worker's next chunk is sized to its
  measured throughput times the window, and stragglers' in-flight chunks
  are split so idle workers take over the unstarted tail — the knob that
  keeps heterogeneous pools saturated (see ``docs/scheduling.md``).
* ``--chunksize K`` tunes how many jobs ride in one pool task (default:
  about four chunks per worker), trading scheduling overhead against load
  balance; ``--executor batch --batch-size K`` instead evaluates grouped
  corner batches in-process through the sweep's vectorised batch function.
* Artifact caching is on by default (``--cache-dir`` overrides the location,
  ``--no-cache`` disables it).  Artifacts are content-addressed by the sweep
  plan, technology card, operating conditions and code version, so a warm
  re-run of a characterisation never touches the reference solver and a
  repeated exploration is served from disk in milliseconds.
* ``--fast`` switches every workload to its reduced test-scale preset;
  ``--json PATH`` additionally writes the regenerated rows as JSON.
* ``--max-bytes N`` (accepts ``K``/``M``/``G`` suffixes) bounds the cache:
  least-recently-used artifacts are evicted whenever a write pushes the
  cache over the limit.  ``python -m repro cache evict --max-bytes N``
  applies the same policy on demand.

Serving sweeps to many clients
------------------------------
``python -m repro serve --host H --port P`` starts the long-lived
:mod:`repro.service` front door on top of the same engine: concurrent
clients submit DSE / PVT / characterisation sweeps over a
newline-delimited-JSON TCP protocol, identical in-flight requests are
deduplicated (single-flight), and per-job progress events stream back to
every client (see :mod:`repro.service` for the client API).

The serve command also owns the resilience knobs: per-client backpressure
(``--max-inflight``, ``--max-queued-bytes``, ``--rate``/``--burst`` —
over-budget submits are answered with a structured ``busy`` error), and
the persistent job journal (``--journal PATH``, ``--no-journal``) with
``--resume`` to re-enqueue whatever a killed server left interrupted.
See ``docs/operations.md`` for deployment guidance and the recovery
runbook, and ``docs/protocol.md`` for the wire protocol.

``python -m repro gateway --service H:P`` puts the HTTP/SSE front door
(:mod:`repro.gateway`) in front of a running service: REST submits,
Server-Sent-Events progress streams, content-addressed artifact spill
(``--artifact-root``, ``--spill-bytes``) and HMAC-signed completion
webhooks.  Gateway replicas are stateless — run several behind a load
balancer against one service.  See ``docs/gateway.md``.

Observability
-------------
``--metrics-port N`` (on ``run``, ``serve`` and ``worker``) serves the
process-wide Prometheus metrics (:mod:`repro.obs`) on
``http://127.0.0.1:N/metrics`` for the lifetime of the command; ``0``
binds an ephemeral port, printed on start.  ``python -m repro cluster
status --watch`` follows the coordinator's live event stream and redraws
the per-worker table on every change (``--duration`` bounds the session).
See ``docs/observability.md`` for the metric reference and the trace-id
propagation model.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from repro.runtime import ArtifactCache, SweepEngine, default_cache_dir, make_executor
from repro.sched import JOB_CLASSES, SchedPolicy

_SCALE_EPILOG = """\
running sweeps at scale:
  (no --executor)                   auto: vectorised batches for sweeps
                                    with a batch_fn, serial otherwise
  --executor parallel --workers 8   fan jobs out over a process pool
  --executor distributed --workers 8  shard over long-lived cluster workers
  --executor batch --batch-size 16  vectorised corner-grid batches
  --chunksize 4                     jobs per pool task / cluster chunk
  --chunk-window 0.5                adaptive scheduling: size each worker's
                                    chunks to a 0.5 s wall-time window and
                                    split stragglers (distributed only)
  --connect 0.0.0.0:7500            cluster endpoint (external workers join)
  --no-cache / --cache-dir DIR      control the content-addressed artifact cache
  --max-bytes 500M                  LRU-bound the cache (also: cache evict)
  --fast                            reduced test-scale presets
  --metrics-port 9100               serve Prometheus metrics while running
Serial, parallel, batch and distributed execution produce bit-identical
results; the cache is keyed by plan + technology + conditions + code version,
so warm re-runs skip the reference solver entirely.  `python -m repro serve`
exposes the same engine to many concurrent clients over TCP (see
`serve --help`); `python -m repro worker` joins a cluster endpoint.

Full documentation lives in docs/: docs/architecture.md (the three-tier
execution architecture and its data flows), docs/protocol.md (the NDJSON
wire protocols of both listeners), docs/scheduling.md (the adaptive
telemetry-driven cluster scheduler and its tuning), docs/operations.md
(deployment, cache sizing, backpressure tuning, slow/mixed worker pools
and the journal recovery runbook).
"""


def _progress_printer(stream=sys.stderr):
    """Single-line progress callback for interactive runs."""

    def progress(done: int, total: int, label: str) -> None:
        stream.write(f"\r  [{done}/{total}] {label:<40.40}")
        stream.flush()
        if done >= total:
            stream.write("\n")

    return progress


class EngineOptionError(ValueError):
    """Invalid engine option on the command line (bad --workers etc.)."""


def parse_size(text: str) -> int:
    """Parse a byte count with optional K/M/G suffix.

    >>> parse_size("500M")
    500000000
    >>> parse_size("1.5k")
    1500
    >>> parse_size("2GB")
    2000000000
    >>> parse_size("many")
    Traceback (most recent call last):
        ...
    ValueError: invalid size 'many' (expected e.g. 500000000, 500M, 2G)
    """
    raw = text.strip().lower().removesuffix("b")
    multipliers = {"k": 10**3, "m": 10**6, "g": 10**9}
    multiplier = 1
    if raw and raw[-1] in multipliers:
        multiplier = multipliers[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * multiplier)
    except (ValueError, OverflowError):  # OverflowError: "inf", "1e999"
        raise ValueError(f"invalid size {text!r} (expected e.g. 500000000, 500M, 2G)") from None
    if value < 0:
        raise ValueError("size must be non-negative")
    return value


def build_engine(args: argparse.Namespace) -> SweepEngine:
    """Construct the SweepEngine described by the common CLI options."""
    if args.executor is None:
        # Auto (the default): sweeps that carry a vectorised batch_fn run
        # through the batch strategy — the whole-chunk NumPy hot path —
        # and everything else serially.  Bit-identical either way; an
        # explicit --executor always pins the strategy.
        for flag, value in (
            ("--workers", args.workers),
            ("--chunksize", args.chunksize),
            ("--batch-size", args.batch_size),
            ("--connect", args.connect),
            ("--chunk-window", args.chunk_window),
        ):
            if value is not None:
                raise EngineOptionError(f"{flag} requires an explicit --executor")
        executor = None
    elif args.executor == "distributed":
        # The distributed executor names its options differently (worker
        # *processes*, a cluster endpoint) but rides the same CLI flags.
        if args.batch_size is not None:
            raise EngineOptionError(
                "--batch-size only applies to --executor batch, not 'distributed'"
            )
        options = {
            "workers": args.workers,
            "chunksize": args.chunksize,
            "chunk_window": args.chunk_window,
            "connect": args.connect,
        }
    else:
        options = {
            "max_workers": args.workers,
            "chunksize": args.chunksize,
            "batch_size": args.batch_size,
        }
        if args.connect is not None:
            raise EngineOptionError(
                f"--connect only applies to --executor distributed, not {args.executor!r}"
            )
        if args.chunk_window is not None:
            raise EngineOptionError(
                f"--chunk-window only applies to --executor distributed, "
                f"not {args.executor!r}"
            )
    if args.executor is not None:
        try:
            executor = make_executor(args.executor, **options)
        except ValueError as error:
            raise EngineOptionError(str(error)) from error
    cache = (
        None
        if args.no_cache
        else ArtifactCache(args.cache_dir, max_bytes=args.max_bytes)
    )
    # Commands without a --quiet flag (serve) never print a progress line:
    # their progress streams to clients instead of the server console.
    progress = None if getattr(args, "quiet", True) else _progress_printer()
    engine = SweepEngine(executor, cache=cache, progress=progress)
    sched_class = getattr(args, "sched_class", None)
    sched_priority = getattr(args, "sched_priority", None)
    if sched_class is not None or sched_priority is not None:
        policy: Dict[str, Any] = {"class": sched_class or "batch"}
        if sched_priority is not None:
            policy["priority"] = sched_priority
        try:
            engine.sched = SchedPolicy.parse(policy).to_dict()
        except ValueError as error:
            raise EngineOptionError(str(error)) from error
    return engine


def _add_cache_size_option(group) -> None:
    group.add_argument(
        "--max-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="cache size bound with LRU eviction (accepts K/M/G suffixes)",
    )


def _add_engine_options(parser: argparse.ArgumentParser, run_options: bool = True) -> None:
    group = parser.add_argument_group("engine options")
    group.add_argument(
        "--executor",
        choices=("serial", "parallel", "batch", "distributed"),
        default=None,
        help="execution strategy (default: auto — vectorised batch for "
        "sweeps that carry a batch_fn, serial otherwise; all strategies "
        "are bit-identical)",
    )
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size / cluster worker processes",
    )
    group.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="jobs per pool task (parallel) or dispatched chunk (distributed)",
    )
    group.add_argument(
        "--chunk-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="adaptive scheduling: target wall-time per dispatched chunk; "
        "sizes chunks to each worker's measured throughput and splits "
        "stragglers (distributed executor only)",
    )
    group.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="cluster endpoint bind address (distributed executor; external "
        "`python -m repro worker` processes join here)",
    )
    group.add_argument(
        "--batch-size", type=int, default=None, help="jobs per vectorised batch (batch)"
    )
    group.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help=f"artifact cache root (default: {default_cache_dir()})",
    )
    group.add_argument(
        "--no-cache", action="store_true", help="disable the artifact cache"
    )
    _add_cache_size_option(group)
    group.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus metrics on http://127.0.0.1:PORT/metrics "
        "for the lifetime of the command (0 picks a free port)",
    )
    if not run_options:
        return
    group.add_argument(
        "--sched-class",
        choices=JOB_CLASSES,
        default=None,
        help="multi-tenant scheduling class for this sweep; interactive "
        "outranks batch on the distributed executor (docs/scheduling.md)",
    )
    group.add_argument(
        "--sched-priority",
        type=int,
        default=None,
        metavar="N",
        help="explicit integer priority (higher dispatches first and may "
        "preempt lower-priority in-flight work; default: the class's "
        "built-in priority)",
    )
    group.add_argument(
        "--fast", action="store_true", help="reduced test-scale presets"
    )
    group.add_argument(
        "--json", type=pathlib.Path, default=None, help="write results as JSON to PATH"
    )
    group.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )


def _emit_json(args: argparse.Namespace, payload: Dict[str, Any]) -> None:
    if args.json is None:
        return
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")


def _finish(engine: SweepEngine, elapsed: float) -> None:
    print(f"\n{engine.describe()}")
    print(f"total wall time: {elapsed:.2f} s")
    close = getattr(engine.executor, "close", None)
    if callable(close):  # distributed executor: stop spawned workers
        close()


# ----------------------------------------------------------------------
# run subcommands
# ----------------------------------------------------------------------
def _cmd_run_dse(args: argparse.Namespace) -> int:
    from repro.analysis.design_space import (
        corner_summary_rows,
        format_table1,
        run_design_space_exploration,
    )
    from repro.circuits.technology import tsmc65_like
    from repro.core.calibration import calibrated_suite
    from repro.core.characterization import CharacterizationPlan
    from repro.core.dse import DesignSpace

    engine = build_engine(args)
    start = time.perf_counter()

    technology = tsmc65_like()
    plan = CharacterizationPlan.quick() if args.fast else None
    space = DesignSpace.quick() if args.fast else None
    print("calibrating OPTIMA models (characterisation via SweepEngine) ...")
    suite = calibrated_suite(technology, plan=plan, engine=engine).suite
    print(f"exploring the {(space or DesignSpace()).corner_count}-corner design space ...")
    result = run_design_space_exploration(
        technology, suite=suite, space=space, engine=engine
    )
    elapsed = time.perf_counter() - start

    print()
    print(result.describe())
    print()
    rows = corner_summary_rows(result)
    print("Table I reproduction (measured vs paper):")
    print(format_table1(rows))
    _finish(engine, elapsed)
    _emit_json(
        args,
        {
            "command": "dse",
            "fast": args.fast,
            "corner_count": len(result.points),
            "corners": result.table(),
            "selected": rows,
            "elapsed_seconds": elapsed,
        },
    )
    return 0


def _cmd_run_pvt(args: argparse.Namespace) -> int:
    from repro.analysis.pvt_sweeps import (
        corner_sweep,
        mismatch_monte_carlo,
        supply_sweep,
        temperature_sweep,
    )
    from repro.circuits.technology import tsmc65_like
    from repro.core.calibration import calibrated_suite
    from repro.core.characterization import CharacterizationPlan
    from repro.core.dse import DesignSpace, explore_design_space
    from repro.core.pvt import analyze_corner_robustness

    engine = build_engine(args)
    start = time.perf_counter()
    technology = tsmc65_like()
    samples = 200 if args.fast else 1000

    print("Fig. 5: PVT influence on the bit-line discharge (reference simulator)")
    supply = supply_sweep(technology, engine=engine)
    for vdd, trace in sorted(item for item in supply.items() if item[0] > 0):
        print(f"  VDD={vdd:.1f} V: final V_BLB = {trace[-1]:.3f} V")
    temperature = temperature_sweep(technology, engine=engine)
    for temp_c, trace in sorted(item for item in temperature.items() if item[0] >= 0):
        print(f"  T={temp_c:5.1f} degC: final V_BLB = {trace[-1]:.3f} V")
    corners = corner_sweep(technology, engine=engine)
    for name in ("fast", "typical", "slow"):
        print(f"  corner {name:<8}: final V_BLB = {corners[name][-1]:.3f} V")
    monte_carlo = mismatch_monte_carlo(technology, samples=samples)
    sigmas = {
        float(t): float(s)
        for t, s in zip(
            monte_carlo["sampling_times"], monte_carlo["sigma_at_sampling_times"]
        )
    }
    for sample_time, sigma in sigmas.items():
        print(f"  sigma(V_BLB) at {sample_time * 1e9:.1f} ns = {sigma * 1e3:5.2f} mV")

    print("\nFig. 8: robustness of the fom corner (OPTIMA models via SweepEngine)")
    plan = CharacterizationPlan.quick() if args.fast else None
    space = DesignSpace.quick() if args.fast else None
    suite = calibrated_suite(technology, plan=plan, engine=engine).suite
    exploration = explore_design_space(suite, space=space, engine=engine)
    fom = exploration.best_fom().config.renamed("fom")
    report = analyze_corner_robustness(suite, fom, engine=engine)
    print("  " + report.describe())
    elapsed = time.perf_counter() - start
    _finish(engine, elapsed)
    _emit_json(
        args,
        {
            "command": "pvt",
            "fast": args.fast,
            "mismatch_sigma_mv": {str(k): v * 1e3 for k, v in sigmas.items()},
            "fom_corner": fom.to_dict(),
            "supply_sweep_error_lsb": [float(v) for v in report.supply_sweep.mean_error_lsb],
            "temperature_sweep_error_lsb": [
                float(v) for v in report.temperature_sweep.mean_error_lsb
            ],
            "elapsed_seconds": elapsed,
        },
    )
    return 0


def _cmd_run_characterize(args: argparse.Namespace) -> int:
    from repro.circuits.technology import tsmc65_like
    from repro.core.characterization import CharacterizationPlan, characterize

    engine = build_engine(args)
    start = time.perf_counter()
    technology = tsmc65_like()
    plan = CharacterizationPlan.quick() if args.fast else CharacterizationPlan()
    print(
        f"characterising {technology.name} "
        f"({len(plan.times)} times x {len(plan.wordline_voltages)} V_WL, "
        f"{len(plan.supply_voltages)} supplies, "
        f"{len(plan.temperatures_celsius)} temperatures) ..."
    )
    data = characterize(technology, plan, engine=engine)
    elapsed = time.perf_counter() - start

    counts = {
        "base": len(data.base),
        "supply": len(data.supply),
        "temperature": len(data.temperature),
        "mismatch": len(data.mismatch),
        "write_energy": len(data.write_energy),
        "discharge_energy": len(data.discharge_energy),
    }
    for sweep, count in counts.items():
        print(f"  {sweep:<17} {count:6d} records")
    print(f"  {'total':<17} {data.record_count():6d} records")
    _finish(engine, elapsed)
    _emit_json(
        args,
        {
            "command": "characterize",
            "fast": args.fast,
            "records": counts,
            "total_records": data.record_count(),
            "elapsed_seconds": elapsed,
        },
    )
    return 0


def _cmd_run_tables(args: argparse.Namespace) -> int:
    from repro.analysis.dnn_tables import (
        DnnExperimentConfig,
        corner_backends,
        format_accuracy_table,
        model_builders,
        paper_table2_reference,
        run_dnn_accuracy_experiment,
    )
    from repro.circuits.technology import tsmc65_like
    from repro.core.calibration import calibrated_suite
    from repro.core.characterization import CharacterizationPlan
    from repro.core.dse import DesignSpace, explore_design_space, select_corners
    from repro.dnn.datasets import imagenet_like

    engine = build_engine(args)
    start = time.perf_counter()
    technology = tsmc65_like()
    plan = CharacterizationPlan.quick() if args.fast else None
    space = DesignSpace.quick() if args.fast else None

    print("selecting multiplier corners (calibration + DSE via SweepEngine) ...")
    suite = calibrated_suite(technology, plan=plan, engine=engine).suite
    corners = select_corners(explore_design_space(suite, space=space, engine=engine))
    backends = corner_backends(technology, suite=suite, corners=corners)

    config = DnnExperimentConfig.quick() if args.fast else DnnExperimentConfig()
    dataset = imagenet_like(
        image_size=config.image_size,
        train_per_class=config.train_per_class,
        test_per_class=config.test_per_class,
    )
    models = model_builders(config.image_size, dataset.classes)
    if args.fast:
        models = models[:1]
    print(
        f"training + evaluating {len(models)} model(s) on {dataset.name} "
        f"({dataset.classes} classes) ..."
    )
    results = run_dnn_accuracy_experiment(dataset, backends, config=config, models=models)
    elapsed = time.perf_counter() - start

    print()
    print("Table II protocol (measured vs paper):")
    print(format_accuracy_table(results, paper_table2_reference()))
    _finish(engine, elapsed)
    _emit_json(
        args,
        {
            "command": "tables",
            "fast": args.fast,
            "accuracy": {
                model: {
                    mode: {"top1": report.top1, "top5": report.top5}
                    for mode, report in reports.items()
                }
                for model, reports in results.items()
            },
            "elapsed_seconds": elapsed,
        },
    )
    return 0


_RUN_COMMANDS = {
    "dse": _cmd_run_dse,
    "pvt": _cmd_run_pvt,
    "characterize": _cmd_run_characterize,
    "tables": _cmd_run_tables,
}


# ----------------------------------------------------------------------
# serve subcommand
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.journal import JobJournal, default_journal_path
    from repro.service import SweepService, workload_names

    engine = build_engine(args)
    journal = None
    if not args.no_journal:
        journal_path = args.journal or default_journal_path(args.cache_dir)
        journal = JobJournal(journal_path)
    elif args.resume:
        print("error: --resume requires the journal (drop --no-journal)", file=sys.stderr)
        return 2
    if args.burst is not None and args.rate is None:
        print("error: --burst only applies together with --rate", file=sys.stderr)
        return 2
    service = SweepService(
        engine,
        host=args.host,
        port=args.port,
        max_workers=args.service_workers,
        max_inflight=args.max_inflight,
        max_queued_bytes=args.max_queued_bytes,
        rate=args.rate,
        burst=args.burst,
        journal=journal,
    )

    async def _serve() -> None:
        from repro import obs

        host, port = await service.start()
        print(
            f"serving sweeps on {host}:{port} "
            f"(workloads: {', '.join(workload_names())})",
            flush=True,
        )
        metrics_server = None
        if args.metrics_port is not None:
            metrics_server = await obs.MetricsServer(port=args.metrics_port).start()
            print(
                f"metrics on http://127.0.0.1:{metrics_server.port}/metrics",
                flush=True,
            )
        print(engine.describe(), flush=True)
        if journal is not None:
            print(journal.describe(), flush=True)
        if args.resume:
            resumed = await service.resume()
            print(f"resumed {resumed} interrupted job(s) from the journal", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()
            if metrics_server is not None:
                await metrics_server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# gateway subcommand
# ----------------------------------------------------------------------
def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster.worker import parse_address
    from repro.gateway import Gateway, GatewayConfig

    try:
        service_host, service_port = parse_address(args.service)
        config = GatewayConfig(
            service_host=service_host,
            service_port=service_port,
            host=args.host,
            port=args.port,
            artifact_root=str(args.artifact_root),
            spill_bytes=args.spill_bytes,
            max_body_bytes=args.max_body_bytes,
            webhook_secret=args.webhook_secret,
            webhook_attempts=args.webhook_attempts,
        ).validate()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        from repro import obs

        gateway = await Gateway(config).start()
        print(
            f"gateway on {config.host}:{gateway.port} "
            f"(service {config.service_host}:{config.service_port}, "
            f"spill over {config.spill_bytes} bytes to {config.artifact_root})",
            flush=True,
        )
        metrics_server = None
        if args.metrics_port is not None:
            metrics_server = await obs.MetricsServer(port=args.metrics_port).start()
            print(
                f"metrics on http://127.0.0.1:{metrics_server.port}/metrics",
                flush=True,
            )
        try:
            await asyncio.Event().wait()  # until interrupted
        finally:
            await gateway.stop()
            if metrics_server is not None:
                await metrics_server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# worker / cluster subcommands
# ----------------------------------------------------------------------
def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.cluster import run_worker

    return run_worker(
        args.connect,
        slots=args.slots,
        name=args.name,
        connect_timeout=args.connect_timeout,
        throttle=args.throttle,
        metrics_port=args.metrics_port,
    )


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ControlError, fetch_status, format_status, watch_status

    if args.watch:
        if args.json:
            print("error: --json does not apply to --watch", file=sys.stderr)
            return 2
        try:
            watch_status(
                args.connect, duration=args.duration, timeout=args.connect_timeout
            )
        except KeyboardInterrupt:
            print("", file=sys.stderr)
        except (ControlError, OSError, ValueError) as error:
            print(
                f"error: cannot watch cluster at {args.connect}: {error}",
                file=sys.stderr,
            )
            return 2
        return 0
    if args.duration is not None:
        print("error: --duration only applies with --watch", file=sys.stderr)
        return 2
    try:
        status = fetch_status(args.connect, timeout=args.connect_timeout)
    except (ControlError, OSError, ValueError) as error:
        print(f"error: cannot reach cluster at {args.connect}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(format_status(status))
    return 0


# ----------------------------------------------------------------------
# cache subcommands
# ----------------------------------------------------------------------
def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ArtifactCache(args.cache_dir, max_bytes=args.max_bytes)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} artifacts from {cache.root}")
    elif args.cache_command == "evict":
        if args.max_bytes is None:
            print("error: cache evict requires --max-bytes", file=sys.stderr)
            return 2
        removed = cache.evict()
        print(
            f"evicted {removed} files from {cache.root}; "
            f"now {cache.size_bytes() / 1e6:.2f} MB in {len(cache)} artifacts"
        )
    elif args.json:
        # Machine-readable `cache info --json`: one JSON document on stdout
        # for cluster status tooling and CI assertions.  Counters are this
        # process's view (a fresh CLI run starts at zero); count/bytes are
        # measured on disk.
        import dataclasses as _dataclasses

        print(
            json.dumps(
                {
                    "root": str(cache.root),
                    "count": len(cache),
                    "bytes": cache.size_bytes(),
                    "max_bytes": cache.max_bytes,
                    "stats": _dataclasses.asdict(cache.stats),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(cache.describe())
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    import repro

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "OPTIMA reproduction runner: every paper figure / table driver "
            "behind one sweep-execution engine with parallel executors and a "
            "content-addressed artifact cache."
        ),
        epilog=_SCALE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run a paper workload through the SweepEngine",
        epilog=_SCALE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_parser.add_argument(
        "workload",
        choices=sorted(_RUN_COMMANDS),
        help="dse: 48-corner exploration; pvt: Fig. 5/8 sweeps; "
        "characterize: reference sweeps; tables: DNN accuracy tables",
    )
    _add_engine_options(run_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve sweep requests to many clients (repro.service)",
        description=(
            "Long-lived sweep service: accepts DSE / PVT / characterisation "
            "requests from concurrent clients over newline-delimited JSON, "
            "single-flights identical in-flight requests and streams per-job "
            "progress events back to every client."
        ),
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=7463, help="TCP port (0 picks a free port)"
    )
    serve_parser.add_argument(
        "--service-workers",
        type=int,
        default=4,
        help="worker threads running blocking sweeps (distinct sweeps in flight)",
    )
    backpressure = serve_parser.add_argument_group(
        "backpressure (per-client; over-budget submits are answered `busy`)"
    )
    backpressure.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="max concurrently in-flight submits per connection (default: 8)",
    )
    backpressure.add_argument(
        "--max-queued-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="max summed request bytes in flight per connection (K/M/G suffixes)",
    )
    backpressure.add_argument(
        "--rate",
        type=float,
        default=None,
        help="token-bucket submit rate limit per connection (submits/second)",
    )
    backpressure.add_argument(
        "--burst",
        type=int,
        default=None,
        help="token-bucket burst size; only applies with --rate "
        "(default: max(1, --rate))",
    )
    journal_group = serve_parser.add_argument_group(
        "job journal (crash recovery; see docs/operations.md)"
    )
    journal_group.add_argument(
        "--journal",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="journal file (default: <cache root>/journal.ndjson)",
    )
    journal_group.add_argument(
        "--no-journal", action="store_true", help="disable the job journal"
    )
    journal_group.add_argument(
        "--resume",
        action="store_true",
        help="re-enqueue jobs the journal records as interrupted, then serve",
    )
    _add_engine_options(serve_parser, run_options=False)

    gateway_parser = subparsers.add_parser(
        "gateway",
        help="HTTP/SSE front door over a running service (repro.gateway)",
        description=(
            "Serve the REST + Server-Sent-Events API in front of a running "
            "`python -m repro serve` instance: submit sweeps over HTTP, "
            "stream progress as SSE, fetch spilled results from the "
            "content-addressed artifact store, and receive HMAC-signed "
            "completion webhooks.  Replicas are stateless: run several "
            "behind a load balancer against one service.  See "
            "docs/gateway.md."
        ),
    )
    gateway_parser.add_argument(
        "--service", required=True, metavar="HOST:PORT",
        help="the sweep service endpoint to front",
    )
    gateway_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    gateway_parser.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: 0 = pick a free port, printed on start)",
    )
    gateway_parser.add_argument(
        "--artifact-root",
        default="gateway-artifacts",
        metavar="DIR",
        help="artifact object store directory (default: %(default)s)",
    )
    gateway_parser.add_argument(
        "--spill-bytes",
        type=parse_size,
        default=65536,
        metavar="SIZE",
        help="results whose JSON encoding exceeds SIZE leave the response "
        "body for the artifact store (default: 64k; accepts k/M/G suffixes)",
    )
    gateway_parser.add_argument(
        "--max-body-bytes",
        type=parse_size,
        default=1_000_000,
        metavar="SIZE",
        help="reject request bodies over SIZE with 413 (default: 1M)",
    )
    gateway_parser.add_argument(
        "--webhook-secret",
        default="repro-gateway",
        metavar="SECRET",
        help="HMAC-SHA256 key for the X-Repro-Signature webhook header",
    )
    gateway_parser.add_argument(
        "--webhook-attempts",
        type=int,
        default=3,
        metavar="N",
        help="webhook delivery attempts before giving up (default: 3)",
    )
    gateway_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve repro_gateway_* Prometheus metrics on "
        "http://127.0.0.1:PORT/metrics (0 picks a free port)",
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help="run a long-lived cluster worker (repro.cluster)",
        description=(
            "Connect to a cluster coordinator, register (with heartbeats) "
            "and execute dispatched job chunks until the coordinator shuts "
            "the cluster down.  Spawn one worker per core, on any host that "
            "can reach the endpoint."
        ),
    )
    worker_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="coordinator endpoint"
    )
    worker_parser.add_argument(
        "--slots", type=int, default=1, help="chunks run concurrently (default: 1)"
    )
    worker_parser.add_argument(
        "--name", default=None, help="worker name shown in cluster status"
    )
    worker_parser.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="retry-with-backoff budget while the coordinator is binding",
    )
    worker_parser.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="artificial per-job delay: a reproducible straggler for "
        "exercising the adaptive scheduler (benchmarks/chaos only)",
    )
    worker_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve this worker's Prometheus metrics on "
        "http://127.0.0.1:PORT/metrics (0 picks a free port)",
    )

    cluster_parser = subparsers.add_parser(
        "cluster", help="inspect a live cluster endpoint"
    )
    cluster_parser.add_argument("cluster_command", choices=("status",))
    cluster_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="coordinator endpoint"
    )
    cluster_parser.add_argument(
        "--json", action="store_true", help="print the raw status document as JSON"
    )
    cluster_parser.add_argument(
        "--watch",
        action="store_true",
        help="follow the live event stream and redraw the worker table "
        "on every change (Ctrl-C to stop)",
    )
    cluster_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="bound a --watch session (default: until interrupted)",
    )
    cluster_parser.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        help="connection retry budget (seconds)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="project-aware static analysis (repro.lint); exit 0 = clean",
        description=(
            "Check the repository's contracts at the AST level: async-safety "
            "(REPRO-ASYNC01), solver-path determinism (REPRO-DET01), the "
            "pickle allowlist (REPRO-WIRE01), silent exception swallows "
            "(REPRO-ERR01), metric naming (REPRO-OBS01) and protocol frame "
            "vocabulary (REPRO-PROTO01).  Suppress inline with "
            "`# repro: ignore[RULE] -- reason`; grandfather with "
            "--write-baseline.  See docs/lint.md."
        ),
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect / clear / LRU-evict the artifact cache"
    )
    cache_parser.add_argument("cache_command", choices=("info", "clear", "evict"))
    cache_parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help=f"artifact cache root (default: {default_cache_dir()})",
    )
    cache_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable cache info (count, bytes, limit, counters)",
    )
    _add_cache_size_option(cache_parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "gateway":
            return _cmd_gateway(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "lint":
            from repro.lint.cli import run_lint_command

            return run_lint_command(args)
        if args.metrics_port is not None:
            # `run` has no event loop of its own (the distributed executor
            # hides one on a private thread), so the endpoint gets a daemon
            # loop-thread that lives for the duration of the workload.
            from repro import obs

            metrics_server = obs.MetricsServer(port=args.metrics_port).start_in_thread()
            print(
                f"metrics on http://127.0.0.1:{metrics_server.port}/metrics",
                flush=True,
            )
            try:
                return _RUN_COMMANDS[args.workload](args)
            finally:
                metrics_server.stop_in_thread()
        return _RUN_COMMANDS[args.workload](args)
    except EngineOptionError as error:
        # Bad engine options (e.g. --workers 0) surface as a clean CLI
        # error; genuine workload failures keep their traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
