"""Content-addressed on-disk artifact cache.

Expensive sweep results (reference-simulator characterisation tables,
design-space corner evaluations) are stored as ``.npz`` artifacts addressed
by the SHA-256 content hash of everything that determines them: the sweep
plan, the technology card, the operating conditions and the code version
(see :func:`repro.runtime.jobs.job_key`).  A warm re-run of a sweep
therefore never touches the reference solver — it deserialises the artifact
and returns.

Robustness properties the tests assert:

* **hash stability** — keys are reproducible across processes, so a cache
  written by one run is valid for every later one;
* **invalidation** — any change to the technology card, the plan, the
  operating conditions or :data:`repro.__version__` changes the key, so
  stale artifacts are never served;
* **corrupt-artifact recovery** — an unreadable artifact is treated as a
  miss and deleted, never as an error;
* **atomic writes** — artifacts are written to a temporary file and
  ``os.replace``-d into place, so a crashed run cannot leave a truncated
  artifact under a live key.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import zipfile
from typing import Dict, Iterator, Optional, Union

import numpy as np

_META_KEY = "__meta__"

PathLike = Union[str, pathlib.Path]


def default_cache_dir() -> pathlib.Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-optima``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-optima"


@dataclasses.dataclass
class Artifact:
    """One cached sweep result: named arrays plus JSON-serialisable metadata."""

    arrays: Dict[str, np.ndarray] = dataclasses.field(default_factory=dict)
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if _META_KEY in self.arrays:
            raise ValueError(f"array name {_META_KEY!r} is reserved")


@dataclasses.dataclass
class CacheStats:
    """Hit / miss counters of one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_dropped: int = 0

    def describe(self) -> str:
        """Short human-readable counter summary."""
        return (
            f"{self.hits} hits, {self.misses} misses, {self.writes} writes, "
            f"{self.corrupt_dropped} corrupt artifacts dropped"
        )


class ArtifactCache:
    """Content-addressed ``.npz`` artifact store.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir`.  Artifacts
        are sharded into two-character subdirectories by key prefix so the
        directory stays navigable at scale.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of the artifact for ``key``."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be lowercase hex digests, got {key!r}")
        return self.root / key[:2] / f"{key}.npz"

    def has(self, key: str) -> bool:
        """Whether an artifact (possibly corrupt) exists for ``key``."""
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Artifact]:
        """Load the artifact for ``key``; a corrupt artifact counts as a miss.

        Corrupt or unreadable files are deleted so the next ``put`` rebuilds
        them from scratch.
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta_bytes = bytes(bytearray(archive[_META_KEY]))
                meta = json.loads(meta_bytes.decode("utf-8"))
                arrays = {
                    name: archive[name] for name in archive.files if name != _META_KEY
                }
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, json.JSONDecodeError):
            self.stats.corrupt_dropped += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return Artifact(arrays=arrays, meta=meta)

    def put(self, key: str, artifact: Artifact) -> pathlib.Path:
        """Atomically store ``artifact`` under ``key`` and return its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta_bytes = json.dumps(artifact.meta, sort_keys=True).encode("utf-8")
        payload = dict(artifact.arrays)
        payload[_META_KEY] = np.frombuffer(meta_bytes, dtype=np.uint8)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Iterate over every stored artifact key."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.npz")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total on-disk footprint of the cache in bytes."""
        if not self.root.exists():
            return 0
        return sum(path.stat().st_size for path in self.root.glob("*/*.npz"))

    def clear(self) -> int:
        """Delete every artifact; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in list(self.root.glob("*/*.npz")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        """Human-readable cache summary used by ``python -m repro cache info``."""
        count = len(self)
        return (
            f"artifact cache at {self.root}: {count} artifacts, "
            f"{self.size_bytes() / 1e6:.2f} MB ({self.stats.describe()})"
        )
