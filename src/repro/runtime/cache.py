"""Content-addressed on-disk artifact cache.

Expensive sweep results (reference-simulator characterisation tables,
design-space corner evaluations) are stored as ``.npz`` artifacts addressed
by the SHA-256 content hash of everything that determines them: the sweep
plan, the technology card, the operating conditions and the code version
(see :func:`repro.runtime.jobs.job_key`).  A warm re-run of a sweep
therefore never touches the reference solver — it deserialises the artifact
and returns.

Robustness properties the tests assert:

* **hash stability** — keys are reproducible across processes, so a cache
  written by one run is valid for every later one;
* **invalidation** — any change to the technology card, the plan, the
  operating conditions or :data:`repro.__version__` changes the key, so
  stale artifacts are never served;
* **corrupt-artifact recovery** — an unreadable artifact is treated as a
  miss and deleted, never as an error;
* **atomic writes** — artifacts are written to a temporary file and
  ``os.replace``-d into place, so a crashed run cannot leave a truncated
  artifact under a live key.  Temporary files orphaned by a crashed
  ``put`` still occupy disk, so :meth:`ArtifactCache.size_bytes` counts
  them and :meth:`ArtifactCache.clear` / :meth:`ArtifactCache.evict`
  sweep them;
* **size-bounded LRU eviction** — a cache built with ``max_bytes`` evicts
  least-recently-used artifacts whenever a ``put`` pushes it over the
  limit (never the artifact just written).  Recency is tracked through
  the filesystem: every ``get`` hit bumps the artifact's timestamps via
  ``os.utime``, so eviction order survives process restarts and needs no
  sidecar index.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import threading
import time
import zipfile
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro import obs

_META_KEY = "__meta__"

# Process-wide mirrors of the per-instance CacheStats counters (one label
# per accounting event), plus the footprint gauge: `status`, `cache info`
# and the Prometheus endpoint all read the same accounting.
_CACHE_EVENTS = obs.counter(
    "repro_cache_events_total",
    "Artifact-cache accounting events (hit/miss/write/corrupt/evict).",
    labels=("event",),
)
_CACHE_SIZE = obs.gauge(
    "repro_cache_size_bytes",
    "Last measured on-disk footprint of the artifact cache.",
)

# A tmp file this old cannot belong to an in-flight put(); evict() treats it
# as garbage from a crashed writer.  clear() sweeps tmp files regardless.
_STALE_TMP_SECONDS = 3600.0

PathLike = Union[str, pathlib.Path]


def default_cache_dir() -> pathlib.Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-optima``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-optima"


@dataclasses.dataclass
class Artifact:
    """One cached sweep result: named arrays plus JSON-serialisable metadata."""

    arrays: Dict[str, np.ndarray] = dataclasses.field(default_factory=dict)
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if _META_KEY in self.arrays:
            raise ValueError(f"array name {_META_KEY!r} is reserved")


@dataclasses.dataclass
class CacheStats:
    """Hit / miss counters of one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_dropped: int = 0
    evictions: int = 0

    def describe(self) -> str:
        """Short human-readable counter summary."""
        return (
            f"{self.hits} hits, {self.misses} misses, {self.writes} writes, "
            f"{self.corrupt_dropped} corrupt artifacts dropped, "
            f"{self.evictions} evicted"
        )


class ArtifactCache:
    """Content-addressed ``.npz`` artifact store.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir`.  Artifacts
        are sharded into two-character subdirectories by key prefix so the
        directory stays navigable at scale.
    max_bytes:
        Optional size bound.  When set, every :meth:`put` that pushes the
        on-disk footprint over the limit evicts least-recently-used
        artifacts (never the one just written) until the cache fits;
        :meth:`evict` applies the same policy on demand.

    Raises
    ------
    ValueError
        For a negative ``max_bytes``, or (from :meth:`path_for` /
        :meth:`get` / :meth:`put`) for keys that are not lowercase hex
        digests.

    Examples
    --------
    >>> import tempfile
    >>> import numpy as np
    >>> cache = ArtifactCache(tempfile.mkdtemp())
    >>> key = "ab" * 32                       # content hash from job_key()
    >>> path = cache.put(key, Artifact(arrays={"x": np.arange(3)}))
    >>> cache.get(key).arrays["x"].tolist()
    [0, 1, 2]
    >>> len(cache), cache.stats.hits
    (1, 1)
    >>> cache.get("cd" * 32) is None          # miss
    True
    """

    def __init__(self, root: Optional[PathLike] = None, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        # Guards counter updates and the footprint estimate: the serving
        # layer drives one cache from several worker threads.
        self._lock = threading.Lock()
        # Running footprint estimate so a put() below the limit never has
        # to rescan the whole store.  Seeded from disk on first use; other
        # writer processes are invisible to it, which only delays (never
        # prevents) an eviction pass — evict() always measures exactly.
        self._size_estimate: Optional[int] = None

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of the artifact for ``key``."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be lowercase hex digests, got {key!r}")
        return self.root / key[:2] / f"{key}.npz"

    def has(self, key: str) -> bool:
        """Whether an artifact (possibly corrupt) exists for ``key``."""
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Artifact]:
        """Load the artifact for ``key``; a corrupt artifact counts as a miss.

        Corrupt or unreadable files are deleted so the next ``put`` rebuilds
        them from scratch.
        """
        path = self.path_for(key)
        if not path.exists():
            with self._lock:
                self.stats.misses += 1
            _CACHE_EVENTS.inc(event="miss")
            obs.EVENTS.emit("cache_miss", key=key)
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta_bytes = bytes(bytearray(archive[_META_KEY]))
                meta = json.loads(meta_bytes.decode("utf-8"))
                arrays = {
                    name: archive[name] for name in archive.files if name != _META_KEY
                }
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, json.JSONDecodeError):
            with self._lock:
                self.stats.corrupt_dropped += 1
                self.stats.misses += 1
            _CACHE_EVENTS.inc(event="corrupt")
            _CACHE_EVENTS.inc(event="miss")
            obs.EVENTS.emit("cache_miss", key=key, corrupt=True)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        with self._lock:
            self.stats.hits += 1
        _CACHE_EVENTS.inc(event="hit")
        obs.EVENTS.emit("cache_hit", key=key)
        try:
            # Bump the timestamps so LRU eviction sees this artifact as
            # recently used even on filesystems mounted noatime.
            os.utime(path)
        except OSError:
            pass
        return Artifact(arrays=arrays, meta=meta)

    def put(self, key: str, artifact: Artifact) -> pathlib.Path:
        """Atomically store ``artifact`` under ``key`` and return its path.

        With ``max_bytes`` configured, a write that pushes the cache over
        the limit triggers LRU eviction; the artifact just written is
        always protected from it.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta_bytes = json.dumps(artifact.meta, sort_keys=True).encode("utf-8")
        payload = dict(artifact.arrays)
        payload[_META_KEY] = np.frombuffer(meta_bytes, dtype=np.uint8)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        over_limit = False
        try:
            written = path.stat().st_size
        except OSError:
            written = 0
        with self._lock:
            self.stats.writes += 1
            if self.max_bytes is not None:
                if self._size_estimate is None:
                    self._size_estimate = self.size_bytes()
                else:
                    self._size_estimate += written
                over_limit = self._size_estimate > self.max_bytes
                _CACHE_SIZE.set(self._size_estimate)
        _CACHE_EVENTS.inc(event="write")
        obs.EVENTS.emit("cache_write", key=key, bytes=written)
        if over_limit:
            self.evict(protect=(key,))
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _artifact_paths(self) -> List[pathlib.Path]:
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.npz"))

    def _tmp_paths(self) -> List[pathlib.Path]:
        """Temporary files orphaned by a ``put`` that crashed mid-write."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.npz.tmp"))

    def keys(self) -> Iterator[str]:
        """Iterate over every stored artifact key."""
        for path in self._artifact_paths():
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total on-disk footprint in bytes, stray tmp files included."""
        total = 0
        for path in self._artifact_paths() + self._tmp_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass  # deleted concurrently
        return total

    def clear(self) -> int:
        """Delete every artifact and stray tmp file; returns files removed."""
        removed = 0
        for path in self._artifact_paths() + self._tmp_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        with self._lock:
            self._size_estimate = 0
        _CACHE_SIZE.set(0)
        return removed

    def evict(
        self,
        max_bytes: Optional[int] = None,
        protect: Sequence[str] = (),
    ) -> int:
        """Evict least-recently-used artifacts until the cache fits.

        Parameters
        ----------
        max_bytes:
            Size bound to enforce; defaults to the cache's configured
            ``max_bytes``.  Raises :class:`ValueError` when neither is set.
        protect:
            Keys that must survive this pass whatever their recency —
            ``put`` uses it so eviction never drops the artifact just
            written.

        Returns the number of files removed.  Stale tmp files (older than
        one hour, i.e. certainly not an in-flight write) are swept first;
        artifacts are then removed oldest-first, where age is the newest of
        ``st_atime`` / ``st_mtime`` (every cache hit bumps both).
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        if limit is None:
            raise ValueError("evict() needs max_bytes (argument or constructor)")
        removed = 0
        stale_before = time.time() - _STALE_TMP_SECONDS
        for tmp in self._tmp_paths():
            try:
                if tmp.stat().st_mtime < stale_before:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
        entries = []
        for path in self._artifact_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((max(stat.st_atime, stat.st_mtime), stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        protected = {self.path_for(key) for key in protect}
        for _, size, path in sorted(entries, key=lambda entry: (entry[0], entry[2])):
            if total <= limit:
                break
            if path in protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            with self._lock:
                self.stats.evictions += 1
            _CACHE_EVENTS.inc(event="evict")
            obs.EVENTS.emit("cache_evict", key=path.stem, bytes=size)
        with self._lock:
            self._size_estimate = total
        _CACHE_SIZE.set(total)
        return removed

    def describe(self) -> str:
        """Human-readable cache summary used by ``python -m repro cache info``."""
        count = len(self)
        limit = "unbounded" if self.max_bytes is None else f"limit {self.max_bytes / 1e6:.2f} MB"
        return (
            f"artifact cache at {self.root}: {count} artifacts, "
            f"{self.size_bytes() / 1e6:.2f} MB, {limit} ({self.stats.describe()})"
        )
