"""Accuracy evaluation across multiplier backends (Tables II / III).

The paper reports top-1 and top-5 classification accuracy for each network
under five execution modes: FLOAT32, exact INT4, and the three in-SRAM
multiplier corners.  This module provides the evaluation primitives and the
one-call comparison used by the table-reproduction benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

import numpy as np

from repro.core.metrics import top_k_accuracy
from repro.dnn.datasets import Dataset
from repro.dnn.imc_injection import MultiplierBackend
from repro.dnn.network import Network
from repro.dnn.quantization import QuantizedNetwork

NetworkLike = Union[Network, QuantizedNetwork]


@dataclasses.dataclass
class AccuracyReport:
    """Top-1 / top-5 accuracy of one network under one execution mode."""

    model: str
    mode: str
    top1: float
    top5: float
    samples: int

    def as_row(self) -> Dict[str, object]:
        """Row representation used by the table benchmarks."""
        return {
            "model": self.model,
            "mode": self.mode,
            "top1_percent": 100.0 * self.top1,
            "top5_percent": 100.0 * self.top5,
            "samples": self.samples,
        }

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"{self.model:<14} {self.mode:<12} "
            f"top-1 {100.0 * self.top1:5.1f} %  top-5 {100.0 * self.top5:5.1f} %"
        )


def evaluate_accuracy(
    network: NetworkLike,
    images: np.ndarray,
    labels: np.ndarray,
    mode: str = "float32",
    top_k: int = 5,
    batch_size: int = 64,
) -> AccuracyReport:
    """Evaluate top-1 / top-``top_k`` accuracy of ``network``."""
    labels = np.asarray(labels)
    scores = network.predict(images, batch_size=batch_size)
    classes = scores.shape[1]
    k = min(top_k, classes)
    return AccuracyReport(
        model=getattr(network, "name", "network"),
        mode=mode,
        top1=top_k_accuracy(scores, labels, k=1),
        top5=top_k_accuracy(scores, labels, k=k),
        samples=int(labels.shape[0]),
    )


def evaluate_backends(
    float_network: Network,
    quantized_network: QuantizedNetwork,
    backends: Dict[str, MultiplierBackend],
    dataset: Dataset,
    max_samples: Optional[int] = None,
    batch_size: int = 64,
) -> Dict[str, AccuracyReport]:
    """Evaluate every execution mode of the paper's Tables II / III.

    Returns a mapping from mode name (``"float32"``, ``"int4"`` and one
    entry per backend) to its accuracy report.

    Parameters
    ----------
    float_network:
        The trained FLOAT32 network.
    quantized_network:
        Its INT4 quantisation (exact backend); corners are evaluated by
        re-binding the backend, so calibration is shared.
    backends:
        Mapping from corner name to multiplier backend.
    dataset:
        Dataset whose test split is evaluated.
    max_samples:
        Optional cap on the number of evaluated test samples (the LUT
        backends are slower than plain matrix products).
    """
    images = dataset.test_images
    labels = dataset.test_labels
    if max_samples is not None and images.shape[0] > max_samples:
        images = images[:max_samples]
        labels = labels[:max_samples]

    reports: Dict[str, AccuracyReport] = {}
    reports["float32"] = evaluate_accuracy(
        float_network, images, labels, mode="float32", batch_size=batch_size
    )
    reports["int4"] = evaluate_accuracy(
        quantized_network, images, labels, mode="int4", batch_size=batch_size
    )
    for name, backend in backends.items():
        corner_network = quantized_network.with_backend(backend, name_suffix=f"-{name}")
        reports[name] = evaluate_accuracy(
            corner_network, images, labels, mode=name, batch_size=batch_size
        )
    return reports


def accuracy_table(reports: Dict[str, Dict[str, AccuracyReport]]) -> str:
    """Format a {model: {mode: report}} mapping as a fixed-width text table."""
    if not reports:
        return "(no results)"
    modes = list(next(iter(reports.values())).keys())
    header = f"{'model':<14}" + "".join(f"{mode:>22}" for mode in modes)
    lines = [header]
    for model, model_reports in reports.items():
        cells = []
        for mode in modes:
            report = model_reports[mode]
            cells.append(f"{100 * report.top1:7.1f}/{100 * report.top5:5.1f} %    ")
        lines.append(f"{model:<14}" + "".join(f"{cell:>22}" for cell in cells))
    lines.append("(cells are top-1 / top-5 accuracy)")
    return "\n".join(lines)
