"""Neural-network layers with forward and backward passes.

Everything operates on NHWC tensors (batch, height, width, channels) for
convolutional layers and (batch, features) matrices for dense layers, in
float32.  The layer set covers what the scaled-down VGG-style and
ResNet-style models need: convolution (via im2col), dense, batch
normalisation, ReLU, max pooling, global average pooling, flatten and a
residual block composite.

Backward passes exist so the models can be trained from scratch on the
synthetic datasets; the quantised / in-memory-computing inference path
re-uses only the forward structure (see :mod:`repro.dnn.quantization`).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclasses.dataclass
class Parameter:
    """A trainable tensor and its gradient accumulator."""

    name: str
    value: np.ndarray
    grad: np.ndarray

    @classmethod
    def create(cls, name: str, value: np.ndarray) -> "Parameter":
        """Build a parameter with a zero-initialised gradient."""
        value = np.asarray(value, dtype=np.float32)
        return cls(name=name, value=value, grad=np.zeros_like(value))

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad[...] = 0.0


class Layer:
    """Base class of all layers."""

    name: str = "layer"

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for ``inputs``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output``; returns the gradient w.r.t. input."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of the layer (empty for stateless layers)."""
        return []

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output for a given input shape (excluding batch)."""
        return input_shape

    def multiplication_count(self, input_shape: Tuple[int, ...]) -> int:
        """Number of scalar multiplications per single-sample inference."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# Dense
# ----------------------------------------------------------------------
class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, name: str = "dense", rng: Optional[np.random.Generator] = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.name = name
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter.create(
            f"{name}.weight", rng.normal(0.0, scale, size=(in_features, out_features))
        )
        self.bias = Parameter.create(f"{name}.bias", np.zeros(out_features))
        self._inputs: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (batch, {self.in_features}) input, got {inputs.shape}"
            )
        if training:
            self._inputs = inputs
        return inputs @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError(f"{self.name}: backward() before forward(training=True)")
        self.weight.grad += self._inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)

    def multiplication_count(self, input_shape: Tuple[int, ...]) -> int:
        return self.in_features * self.out_features


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def im2col(
    inputs: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Extract sliding patches as rows.

    Returns ``(patches, out_h, out_w)`` where ``patches`` has shape
    ``(batch * out_h * out_w, kernel * kernel * channels)``.
    """
    batch, height, width, channels = inputs.shape
    if padding > 0:
        inputs = np.pad(
            inputs,
            ((0, 0), (padding, padding), (padding, padding), (0, 0)),
            mode="constant",
        )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    strides = inputs.strides
    window_view = np.lib.stride_tricks.as_strided(
        inputs,
        shape=(batch, out_h, out_w, kernel, kernel, channels),
        strides=(
            strides[0],
            strides[1] * stride,
            strides[2] * stride,
            strides[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    patches = window_view.reshape(batch * out_h * out_w, kernel * kernel * channels)
    return np.ascontiguousarray(patches), out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter patch-gradients back onto the (padded) input tensor."""
    batch, height, width, channels = input_shape
    padded = np.zeros(
        (batch, height + 2 * padding, width + 2 * padding, channels), dtype=cols.dtype
    )
    cols = cols.reshape(batch, out_h, out_w, kernel, kernel, channels)
    for ky in range(kernel):
        for kx in range(kernel):
            padded[
                :,
                ky : ky + stride * out_h : stride,
                kx : kx + stride * out_w : stride,
                :,
            ] += cols[:, :, :, ky, kx, :]
    if padding > 0:
        return padded[:, padding:-padding, padding:-padding, :]
    return padded


class Conv2D(Layer):
    """2-D convolution with square kernels (NHWC layout, im2col implementation)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: Optional[int] = None,
        name: str = "conv",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel <= 0 or stride <= 0:
            raise ValueError("kernel and stride must be positive")
        self.name = name
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = (kernel // 2) if padding is None else padding
        rng = rng or np.random.default_rng(0)
        fan_in = kernel * kernel * in_channels
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter.create(
            f"{name}.weight", rng.normal(0.0, scale, size=(fan_in, out_channels))
        )
        self.bias = Parameter.create(f"{name}.bias", np.zeros(out_channels))
        self._cache: Optional[Tuple] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.ndim != 4 or inputs.shape[3] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (batch, h, w, {self.in_channels}) input, got {inputs.shape}"
            )
        patches, out_h, out_w = im2col(inputs, self.kernel, self.stride, self.padding)
        output = patches @ self.weight.value + self.bias.value
        batch = inputs.shape[0]
        output = output.reshape(batch, out_h, out_w, self.out_channels)
        if training:
            self._cache = (inputs.shape, patches, out_h, out_w)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward() before forward(training=True)")
        input_shape, patches, out_h, out_w = self._cache
        batch = input_shape[0]
        grad_flat = grad_output.reshape(batch * out_h * out_w, self.out_channels)
        self.weight.grad += patches.T @ grad_flat
        self.bias.grad += grad_flat.sum(axis=0)
        grad_patches = grad_flat @ self.weight.value.T
        return col2im(
            grad_patches,
            input_shape,
            self.kernel,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        height, width, _ = input_shape
        out_h = (height + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel) // self.stride + 1
        return (out_h, out_w, self.out_channels)

    def multiplication_count(self, input_shape: Tuple[int, ...]) -> int:
        out_h, out_w, _ = self.output_shape(input_shape)
        return out_h * out_w * self.kernel * self.kernel * self.in_channels * self.out_channels


# ----------------------------------------------------------------------
# Normalisation and activations
# ----------------------------------------------------------------------
class BatchNorm(Layer):
    """Batch normalisation over the channel (last) axis."""

    def __init__(self, channels: int, momentum: float = 0.9, epsilon: float = 1e-5, name: str = "bn") -> None:
        if channels <= 0:
            raise ValueError("channels must be positive")
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must lie in (0, 1)")
        self.name = name
        self.channels = channels
        self.momentum = momentum
        self.epsilon = epsilon
        self.gamma = Parameter.create(f"{name}.gamma", np.ones(channels))
        self.beta = Parameter.create(f"{name}.beta", np.zeros(channels))
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: Optional[Tuple] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.shape[-1] != self.channels:
            raise ValueError(
                f"{self.name}: expected last axis of size {self.channels}, got {inputs.shape}"
            )
        axes = tuple(range(inputs.ndim - 1))
        if training:
            mean = inputs.mean(axis=axes)
            var = inputs.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1.0 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1.0 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normalised = (inputs - mean) * inv_std
        if training:
            self._cache = (normalised, inv_std, axes, inputs.shape)
        return self.gamma.value * normalised + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward() before forward(training=True)")
        normalised, inv_std, axes, shape = self._cache
        count = int(np.prod([shape[a] for a in axes]))
        self.gamma.grad += (grad_output * normalised).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        grad_norm = grad_output * self.gamma.value
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=axes)
            - normalised * (grad_norm * normalised).mean(axis=axes)
        ) * inv_std
        # The mean subtraction above already divides by the element count via
        # .mean(); multiplying back by count/count keeps the expression exact.
        del count
        return grad_input

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def effective_scale_shift(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel affine (scale, shift) for inference-time folding."""
        inv_std = 1.0 / np.sqrt(self.running_var + self.epsilon)
        scale = self.gamma.value * inv_std
        shift = self.beta.value - self.running_mean * scale
        return scale, shift


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self, name: str = "relu") -> None:
        self.name = name
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        if training:
            self._mask = inputs > 0.0
        return np.maximum(inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward() before forward(training=True)")
        return grad_output * self._mask


# ----------------------------------------------------------------------
# Pooling and reshaping
# ----------------------------------------------------------------------
class MaxPool2D(Layer):
    """2x2 (or ``size`` x ``size``) max pooling with matching stride."""

    def __init__(self, size: int = 2, name: str = "maxpool") -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.name = name
        self.size = size
        self._cache: Optional[Tuple] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        batch, height, width, channels = inputs.shape
        if height % self.size or width % self.size:
            raise ValueError(
                f"{self.name}: spatial size {height}x{width} not divisible by {self.size}"
            )
        out_h, out_w = height // self.size, width // self.size
        reshaped = inputs.reshape(batch, out_h, self.size, out_w, self.size, channels)
        output = reshaped.max(axis=(2, 4))
        if training:
            mask = reshaped == output[:, :, np.newaxis, :, np.newaxis, :]
            self._cache = (mask, inputs.shape)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward() before forward(training=True)")
        mask, input_shape = self._cache
        batch, height, width, channels = input_shape
        out_h, out_w = height // self.size, width // self.size
        expanded = grad_output[:, :, np.newaxis, :, np.newaxis, :] * mask
        return expanded.reshape(input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        height, width, channels = input_shape
        return (height // self.size, width // self.size, channels)


class GlobalAveragePool(Layer):
    """Average over the spatial dimensions, producing (batch, channels)."""

    def __init__(self, name: str = "gap") -> None:
        self.name = name
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        if training:
            self._input_shape = inputs.shape
        return inputs.mean(axis=(1, 2))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward() before forward(training=True)")
        batch, height, width, channels = self._input_shape
        scale = 1.0 / (height * width)
        return (
            np.broadcast_to(
                grad_output[:, np.newaxis, np.newaxis, :], self._input_shape
            )
            * scale
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (input_shape[2],)


class Flatten(Layer):
    """Flatten everything except the batch dimension."""

    def __init__(self, name: str = "flatten") -> None:
        self.name = name
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        if training:
            self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward() before forward(training=True)")
        return grad_output.reshape(self._input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)


# ----------------------------------------------------------------------
# Residual block
# ----------------------------------------------------------------------
class ResidualBlock(Layer):
    """Basic residual block: two conv/BN/ReLU stages plus a skip connection.

    When the channel count changes (or ``stride`` is not 1), the skip path
    uses a 1x1 projection convolution, mirroring the ResNet basic-block
    design the scaled-down models are built from.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        name: str = "resblock",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.name = name
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2D(
            in_channels, out_channels, kernel=3, stride=stride, name=f"{name}.conv1", rng=rng
        )
        self.bn1 = BatchNorm(out_channels, name=f"{name}.bn1")
        self.relu1 = ReLU(name=f"{name}.relu1")
        self.conv2 = Conv2D(
            out_channels, out_channels, kernel=3, stride=1, name=f"{name}.conv2", rng=rng
        )
        self.bn2 = BatchNorm(out_channels, name=f"{name}.bn2")
        self.relu_out = ReLU(name=f"{name}.relu_out")
        self.projection: Optional[Conv2D] = None
        if stride != 1 or in_channels != out_channels:
            self.projection = Conv2D(
                in_channels,
                out_channels,
                kernel=1,
                stride=stride,
                padding=0,
                name=f"{name}.proj",
                rng=rng,
            )
        self._skip_input: Optional[np.ndarray] = None

    # -- helpers ---------------------------------------------------------
    def sublayers(self) -> List[Layer]:
        """Layers in execution order (main path, then projection if any)."""
        layers: List[Layer] = [self.conv1, self.bn1, self.relu1, self.conv2, self.bn2]
        if self.projection is not None:
            layers.append(self.projection)
        layers.append(self.relu_out)
        return layers

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._skip_input = inputs
        main = self.conv1.forward(inputs, training)
        main = self.bn1.forward(main, training)
        main = self.relu1.forward(main, training)
        main = self.conv2.forward(main, training)
        main = self.bn2.forward(main, training)
        if self.projection is not None:
            skip = self.projection.forward(inputs, training)
        else:
            skip = inputs
        return self.relu_out.forward(main + skip, training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_output)
        grad_main = self.bn2.backward(grad_sum)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        if self.projection is not None:
            grad_skip = self.projection.backward(grad_sum)
        else:
            grad_skip = grad_sum
        return grad_main + grad_skip

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.sublayers():
            params.extend(layer.parameters())
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return self.conv1.output_shape(input_shape)

    def multiplication_count(self, input_shape: Tuple[int, ...]) -> int:
        count = self.conv1.multiplication_count(input_shape)
        intermediate = self.conv1.output_shape(input_shape)
        count += self.conv2.multiplication_count(intermediate)
        if self.projection is not None:
            count += self.projection.multiplication_count(input_shape)
        return count
