"""Multiplier backends: how INT4 products are actually computed.

The quantised layers of :mod:`repro.dnn.quantization` reduce every
convolution / dense layer to sums of INT4 products between unsigned
activation codes (0..15) and signed weight codes (-8..7).  *How* each product
is computed is delegated to a backend:

* :class:`ExactBackend` — ideal digital INT4 multiplication (the paper's
  "Baseline INT4" column).
* :class:`LutBackend` — the in-SRAM multiplier, represented by the
  :class:`~repro.multiplier.lut.ProductLookupTable` of a design corner.
  Signs are applied digitally (sign-magnitude execution); optionally each
  product is perturbed with the corner's mismatch sigma.

Both backends expose one operation, ``matmul(activations, weights)``, which
computes ``sum_k product(a[m, k], w[k, n])``.  The LUT backend evaluates it
with a one-hot decomposition over the 16 possible weight values, so the whole
sum runs as 16 dense matrix products instead of a per-element Python loop —
this is what keeps the Table II/III experiments tractable.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

import numpy as np

from repro.multiplier.lut import ProductLookupTable


class MultiplierBackend(Protocol):
    """Protocol every multiplier backend implements."""

    name: str

    def matmul(
        self,
        activation_codes: np.ndarray,
        weight_codes: np.ndarray,
        activation_zero_point: int = 0,
    ) -> np.ndarray:
        """Accumulated products ``sum_k product(a[m, k], w[k, n])``.

        Parameters
        ----------
        activation_codes:
            Unsigned activation codes, shape ``(m, k)``, values 0..15.
        weight_codes:
            Signed weight codes, shape ``(k, n)``, values -8..7.
        activation_zero_point:
            Activation code whose dequantised value is exactly zero.  An
            accelerator skips those analogue operations (zero-skipping), so
            their contribution is the exact product rather than an analogue
            approximation of it.
        """
        ...  # pragma: no cover - protocol definition


class ExactBackend:
    """Ideal digital INT4 multiply-accumulate."""

    name = "int4"

    def matmul(
        self,
        activation_codes: np.ndarray,
        weight_codes: np.ndarray,
        activation_zero_point: int = 0,
    ) -> np.ndarray:
        """Exact integer products accumulated in float32."""
        del activation_zero_point  # exact products need no special casing
        activations = np.asarray(activation_codes, dtype=np.float32)
        weights = np.asarray(weight_codes, dtype=np.float32)
        return activations @ weights

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "ExactBackend()"


class LutBackend:
    """In-SRAM multiplier backend driven by a product lookup table.

    Parameters
    ----------
    table:
        Product lookup table of one multiplier corner (mean result and
        per-product sigma, both in product-code units).
    stochastic:
        When true, every accumulated output receives Gaussian noise whose
        variance is the sum of the per-product mismatch variances — the
        exact distribution of summing independently perturbed products.
    rng:
        Random generator used for the stochastic mode.
    name:
        Backend name in reports; defaults to the table's corner name.
    """

    def __init__(
        self,
        table: ProductLookupTable,
        stochastic: bool = False,
        rng: Optional[np.random.Generator] = None,
        name: Optional[str] = None,
    ) -> None:
        self.table = table
        self.stochastic = stochastic
        self.rng = rng or np.random.default_rng(0)
        self.name = name or table.name
        self._signed_product, self._variance = self._build_signed_tables(table)

    @staticmethod
    def _build_signed_tables(table: ProductLookupTable) -> tuple:
        """Tables indexed by (weight value + 8, activation code).

        ``signed_product[w + 8, a]`` is the signed mean result of multiplying
        activation code ``a`` by weight value ``w``; ``variance`` holds the
        matching mismatch variance.
        """
        max_code = table.max_operand
        weight_values = np.arange(-8, 8)
        signed = np.zeros((weight_values.size, max_code + 1))
        variance = np.zeros_like(signed)
        for row, weight in enumerate(weight_values):
            magnitude = min(abs(int(weight)), max_code)
            sign = np.sign(weight)
            signed[row] = sign * table.mean[:, magnitude]
            variance[row] = table.sigma[:, magnitude] ** 2
        return signed, variance

    def matmul(
        self,
        activation_codes: np.ndarray,
        weight_codes: np.ndarray,
        activation_zero_point: int = 0,
    ) -> np.ndarray:
        """Accumulate in-SRAM products via one-hot weight decomposition.

        Activations equal to ``activation_zero_point`` represent an exact
        real value of zero; the accelerator zero-skips them, so their
        contribution is the exact product ``zero_point * w`` (which the
        quantised layer's zero-point correction then cancels) instead of an
        analogue result.
        """
        activations = np.asarray(activation_codes)
        weights = np.asarray(weight_codes)
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("matmul expects 2-D code matrices")
        if activations.shape[1] != weights.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {activations.shape} vs {weights.shape}"
            )
        if activations.min() < 0 or activations.max() > self.table.max_operand:
            raise ValueError("activation codes out of the 4-bit unsigned range")
        if weights.min() < -8 or weights.max() > 7:
            raise ValueError("weight codes out of the 4-bit signed range")

        activation_index = activations.astype(np.intp)
        weight_rows = (weights.astype(np.intp) + 8)

        signed_product = self._signed_product
        variance_table = self._variance
        if 0 <= activation_zero_point <= self.table.max_operand:
            signed_product = signed_product.copy()
            variance_table = variance_table.copy()
            weight_values = np.arange(-8, 8, dtype=float)
            signed_product[:, activation_zero_point] = (
                float(activation_zero_point) * weight_values
            )
            variance_table[:, activation_zero_point] = 0.0

        accumulated = np.zeros(
            (activations.shape[0], weights.shape[1]), dtype=np.float32
        )
        variance = (
            np.zeros_like(accumulated) if self.stochastic else None
        )
        present_values = np.unique(weight_rows)
        for value_row in present_values:
            if value_row == 8:
                # Weight value 0: the stored word is all zeros, no discharge
                # occurs and the contribution is exactly zero (including its
                # mismatch), so the term is skipped entirely.
                continue
            indicator = (weight_rows == value_row).astype(np.float32)
            products = signed_product[value_row][activation_index].astype(np.float32)
            accumulated += products @ indicator
            if variance is not None:
                variances = variance_table[value_row][activation_index].astype(np.float32)
                variance += variances @ indicator
        if variance is not None:
            noise = self.rng.normal(0.0, 1.0, size=accumulated.shape).astype(np.float32)
            accumulated = accumulated + noise * np.sqrt(np.maximum(variance, 0.0))
        return accumulated

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LutBackend(name={self.name!r}, stochastic={self.stochastic})"


def backends_for_corners(
    tables: Dict[str, ProductLookupTable],
    stochastic: bool = False,
    seed: int = 0,
) -> Dict[str, "LutBackend"]:
    """Build one LUT backend per named corner table."""
    return {
        name: LutBackend(
            table,
            stochastic=stochastic,
            rng=np.random.default_rng(seed + index),
            name=name,
        )
        for index, (name, table) in enumerate(tables.items())
    }
