"""INT4 post-training quantisation with batch-norm folding.

The paper quantises its pre-trained FLOAT32 networks to INT4 following the
TensorFlow-Lite recipe (affine activation quantisation, symmetric weight
quantisation, INT8 specifications adapted to INT4) and then runs *every*
multiplication through the in-SRAM multiplier.  This module reproduces that
flow:

* batch-norm layers are folded into the preceding convolution / dense layer
  (so their multiplications disappear into the weights, as they do in any
  deployed integer pipeline),
* weights are quantised symmetrically to signed INT4, per output channel by
  default,
* activations are quantised asymmetrically to unsigned INT4 with scale /
  zero-point calibrated on a batch of training data,
* the integer multiply-accumulate is delegated to a
  :class:`~repro.dnn.imc_injection.MultiplierBackend`, so the same quantised
  network can be evaluated with exact INT4 products (baseline) or with any
  in-SRAM multiplier corner (Table II/III).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dnn.imc_injection import ExactBackend, MultiplierBackend
from repro.dnn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePool,
    Layer,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    im2col,
)
from repro.dnn.network import Network


@dataclasses.dataclass(frozen=True)
class QuantizationScheme:
    """Quantisation hyper-parameters.

    Attributes
    ----------
    weight_bits, activation_bits:
        Bit widths; the paper uses 4 for both.
    per_channel_weights:
        Quantise weights with one scale per output channel (True, the
        TFLite default for convolutions) or one scale per tensor.
    calibration_percentile:
        Percentile of the absolute activation range used for calibration;
        99.9 clips extreme outliers, which is standard practice and
        noticeably helps 4-bit activations.
    """

    weight_bits: int = 4
    activation_bits: int = 4
    per_channel_weights: bool = True
    calibration_percentile: float = 99.9

    def __post_init__(self) -> None:
        if not 2 <= self.weight_bits <= 8:
            raise ValueError("weight_bits must lie in [2, 8]")
        if not 2 <= self.activation_bits <= 8:
            raise ValueError("activation_bits must lie in [2, 8]")
        if not 50.0 < self.calibration_percentile <= 100.0:
            raise ValueError("calibration_percentile must lie in (50, 100]")

    @property
    def weight_level(self) -> int:
        """Largest positive weight code (symmetric range)."""
        return (1 << (self.weight_bits - 1)) - 1

    @property
    def activation_levels(self) -> int:
        """Largest activation code (unsigned range)."""
        return (1 << self.activation_bits) - 1


@dataclasses.dataclass
class ActivationQuantizer:
    """Affine (scale / zero-point) quantiser for unsigned activation codes."""

    scale: float
    zero_point: int
    levels: int

    @classmethod
    def calibrate(
        cls, values: np.ndarray, scheme: QuantizationScheme
    ) -> "ActivationQuantizer":
        """Derive scale and zero-point from observed activation values."""
        values = np.asarray(values, dtype=np.float32).ravel()
        low = float(np.percentile(values, 100.0 - scheme.calibration_percentile))
        high = float(np.percentile(values, scheme.calibration_percentile))
        low = min(low, 0.0)
        high = max(high, low + 1e-6)
        levels = scheme.activation_levels
        scale = (high - low) / levels
        zero_point = int(np.clip(round(-low / scale), 0, levels))
        return cls(scale=scale, zero_point=zero_point, levels=levels)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Float values to unsigned integer codes."""
        codes = np.rint(np.asarray(values, dtype=np.float32) / self.scale) + self.zero_point
        return np.clip(codes, 0, self.levels).astype(np.int32)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes back to float values."""
        return (np.asarray(codes, dtype=np.float32) - self.zero_point) * self.scale


def quantize_weights_symmetric(
    weights: np.ndarray, scheme: QuantizationScheme
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric signed quantisation of a (in_features, out_features) matrix.

    Returns ``(codes, scales)`` where ``scales`` has one entry per output
    channel (or a single entry for per-tensor mode).
    """
    weights = np.asarray(weights, dtype=np.float32)
    level = scheme.weight_level
    if scheme.per_channel_weights:
        magnitudes = np.max(np.abs(weights), axis=0)
    else:
        magnitudes = np.full(weights.shape[1], float(np.max(np.abs(weights))))
    scales = np.maximum(magnitudes / level, 1e-12)
    codes = np.clip(np.rint(weights / scales), -level - 1, level).astype(np.int32)
    return codes, scales.astype(np.float32)


# ----------------------------------------------------------------------
# Batch-norm folding
# ----------------------------------------------------------------------
def _fold_pair(layer: Layer, bn: BatchNorm) -> Layer:
    """Fold a BatchNorm into the preceding Conv2D or Dense layer (copies)."""
    scale, shift = bn.effective_scale_shift()
    folded = copy.deepcopy(layer)
    folded.weight.value = (folded.weight.value * scale).astype(np.float32)
    folded.bias.value = (folded.bias.value * scale + shift).astype(np.float32)
    return folded


def fold_batchnorm_layers(layers: Sequence[Layer]) -> List[Layer]:
    """Return a new layer list with every Conv/Dense + BatchNorm pair folded."""
    folded: List[Layer] = []
    index = 0
    while index < len(layers):
        layer = layers[index]
        next_layer = layers[index + 1] if index + 1 < len(layers) else None
        if isinstance(layer, (Conv2D, Dense)) and isinstance(next_layer, BatchNorm):
            folded.append(_fold_pair(layer, next_layer))
            index += 2
        elif isinstance(layer, ResidualBlock):
            folded.append(_fold_residual_block(layer))
            index += 1
        else:
            folded.append(layer)
            index += 1
    return folded


def _fold_residual_block(block: ResidualBlock) -> ResidualBlock:
    """Fold the internal batch-norms of a residual block (returns a copy)."""
    folded = copy.deepcopy(block)
    folded.conv1 = _fold_pair(block.conv1, block.bn1)
    folded.conv2 = _fold_pair(block.conv2, block.bn2)
    # Replace the internal BNs with identity-behaving fresh instances: their
    # effect now lives inside the convolution weights.
    folded.bn1 = BatchNorm(block.conv1.out_channels, name=f"{block.name}.bn1_folded")
    folded.bn2 = BatchNorm(block.conv2.out_channels, name=f"{block.name}.bn2_folded")
    return folded


# ----------------------------------------------------------------------
# Quantised layers
# ----------------------------------------------------------------------
class QuantizedDense:
    """INT4 dense layer executing its products through a multiplier backend."""

    def __init__(
        self,
        weight_codes: np.ndarray,
        weight_scales: np.ndarray,
        bias: np.ndarray,
        quantizer: ActivationQuantizer,
        backend: MultiplierBackend,
        name: str = "qdense",
    ) -> None:
        self.weight_codes = weight_codes
        self.weight_scales = weight_scales
        self.bias = bias
        self.quantizer = quantizer
        self.backend = backend
        self.name = name
        # Per-output-channel sum of weight codes, needed for the zero-point
        # correction term of affine activation quantisation.
        self._weight_column_sum = weight_codes.sum(axis=0).astype(np.float32)

    @classmethod
    def from_float(
        cls,
        layer: Dense,
        calibration_inputs: np.ndarray,
        scheme: QuantizationScheme,
        backend: MultiplierBackend,
    ) -> "QuantizedDense":
        """Quantise a (batch-norm-folded) float dense layer."""
        codes, scales = quantize_weights_symmetric(layer.weight.value, scheme)
        quantizer = ActivationQuantizer.calibrate(calibration_inputs, scheme)
        return cls(
            weight_codes=codes,
            weight_scales=scales,
            bias=layer.bias.value.copy(),
            quantizer=quantizer,
            backend=backend,
            name=f"{layer.name}.q",
        )

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Quantise the input, accumulate integer products, dequantise."""
        del training
        codes = self.quantizer.quantize(inputs)
        accumulated = self.backend.matmul(
            codes, self.weight_codes, activation_zero_point=self.quantizer.zero_point
        )
        corrected = accumulated - self.quantizer.zero_point * self._weight_column_sum
        return (
            corrected * (self.quantizer.scale * self.weight_scales) + self.bias
        ).astype(np.float32)

    def with_backend(self, backend: MultiplierBackend) -> "QuantizedDense":
        """Copy of the layer bound to a different multiplier backend."""
        clone = copy.copy(self)
        clone.backend = backend
        return clone


class QuantizedConv2D:
    """INT4 convolution executing its products through a multiplier backend."""

    def __init__(
        self,
        weight_codes: np.ndarray,
        weight_scales: np.ndarray,
        bias: np.ndarray,
        quantizer: ActivationQuantizer,
        backend: MultiplierBackend,
        kernel: int,
        stride: int,
        padding: int,
        in_channels: int,
        out_channels: int,
        name: str = "qconv",
    ) -> None:
        self.weight_codes = weight_codes
        self.weight_scales = weight_scales
        self.bias = bias
        self.quantizer = quantizer
        self.backend = backend
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.name = name
        self._weight_column_sum = weight_codes.sum(axis=0).astype(np.float32)

    @classmethod
    def from_float(
        cls,
        layer: Conv2D,
        calibration_inputs: np.ndarray,
        scheme: QuantizationScheme,
        backend: MultiplierBackend,
    ) -> "QuantizedConv2D":
        """Quantise a (batch-norm-folded) float convolution layer."""
        codes, scales = quantize_weights_symmetric(layer.weight.value, scheme)
        quantizer = ActivationQuantizer.calibrate(calibration_inputs, scheme)
        return cls(
            weight_codes=codes,
            weight_scales=scales,
            bias=layer.bias.value.copy(),
            quantizer=quantizer,
            backend=backend,
            kernel=layer.kernel,
            stride=layer.stride,
            padding=layer.padding,
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            name=f"{layer.name}.q",
        )

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Quantise, im2col in code space, accumulate, dequantise."""
        del training
        codes = self.quantizer.quantize(inputs)
        if self.padding > 0:
            codes = np.pad(
                codes,
                ((0, 0), (self.padding, self.padding), (self.padding, self.padding), (0, 0)),
                mode="constant",
                constant_values=self.quantizer.zero_point,
            )
        patches, out_h, out_w = im2col(
            codes.astype(np.float32), self.kernel, self.stride, padding=0
        )
        patches = patches.astype(np.int32)
        accumulated = self.backend.matmul(
            patches, self.weight_codes, activation_zero_point=self.quantizer.zero_point
        )
        corrected = accumulated - self.quantizer.zero_point * self._weight_column_sum
        output = corrected * (self.quantizer.scale * self.weight_scales) + self.bias
        batch = inputs.shape[0]
        return output.reshape(batch, out_h, out_w, self.out_channels).astype(np.float32)

    def with_backend(self, backend: MultiplierBackend) -> "QuantizedConv2D":
        """Copy of the layer bound to a different multiplier backend."""
        clone = copy.copy(self)
        clone.backend = backend
        return clone


class QuantizedResidualBlock:
    """Residual block whose convolutions run through quantised layers."""

    def __init__(
        self,
        conv1: QuantizedConv2D,
        conv2: QuantizedConv2D,
        projection: Optional[QuantizedConv2D],
        name: str = "qresblock",
    ) -> None:
        self.conv1 = conv1
        self.conv2 = conv2
        self.projection = projection
        self.name = name

    @classmethod
    def from_float(
        cls,
        block: ResidualBlock,
        calibration_inputs: np.ndarray,
        scheme: QuantizationScheme,
        backend: MultiplierBackend,
    ) -> "QuantizedResidualBlock":
        """Quantise a (batch-norm-folded) residual block."""
        conv1 = QuantizedConv2D.from_float(block.conv1, calibration_inputs, scheme, backend)
        intermediate = block.relu1.forward(
            block.bn1.forward(block.conv1.forward(calibration_inputs))
        )
        conv2 = QuantizedConv2D.from_float(block.conv2, intermediate, scheme, backend)
        projection = None
        if block.projection is not None:
            projection = QuantizedConv2D.from_float(
                block.projection, calibration_inputs, scheme, backend
            )
        return cls(conv1=conv1, conv2=conv2, projection=projection, name=f"{block.name}.q")

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Quantised main path plus float skip connection, then ReLU."""
        del training
        main = np.maximum(self.conv1.forward(inputs), 0.0)
        main = self.conv2.forward(main)
        if self.projection is not None:
            skip = self.projection.forward(inputs)
        else:
            skip = inputs
        return np.maximum(main + skip, 0.0)

    def with_backend(self, backend: MultiplierBackend) -> "QuantizedResidualBlock":
        """Copy of the block bound to a different multiplier backend."""
        return QuantizedResidualBlock(
            conv1=self.conv1.with_backend(backend),
            conv2=self.conv2.with_backend(backend),
            projection=(
                self.projection.with_backend(backend) if self.projection is not None else None
            ),
            name=self.name,
        )


# ----------------------------------------------------------------------
# Quantised network
# ----------------------------------------------------------------------
class QuantizedNetwork:
    """An INT4 network whose products run through a multiplier backend."""

    def __init__(
        self,
        layers: Sequence[object],
        input_shape: Tuple[int, ...],
        name: str,
        backend: MultiplierBackend,
        multiplication_count: int = 0,
    ) -> None:
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        self.backend = backend
        self._multiplication_count = multiplication_count

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass through the mixed quantised / float layer stack."""
        del training
        outputs = np.asarray(inputs, dtype=np.float32)
        for layer in self.layers:
            outputs = layer.forward(outputs)
        return outputs

    def predict(self, inputs: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Batched inference."""
        inputs = np.asarray(inputs, dtype=np.float32)
        outputs: List[np.ndarray] = []
        for start in range(0, inputs.shape[0], batch_size):
            outputs.append(self.forward(inputs[start : start + batch_size]))
        return np.concatenate(outputs, axis=0)

    def multiplication_count(self) -> int:
        """Multiplications per single-sample inference (from the float model)."""
        return self._multiplication_count

    def with_backend(self, backend: MultiplierBackend, name_suffix: str = "") -> "QuantizedNetwork":
        """Clone the network with every quantised layer bound to ``backend``.

        Calibration is reused, so evaluating several multiplier corners only
        costs inference time, not re-quantisation.
        """
        new_layers: List[object] = []
        for layer in self.layers:
            if hasattr(layer, "with_backend"):
                new_layers.append(layer.with_backend(backend))
            else:
                new_layers.append(layer)
        return QuantizedNetwork(
            layers=new_layers,
            input_shape=self.input_shape,
            name=self.name + name_suffix,
            backend=backend,
            multiplication_count=self._multiplication_count,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QuantizedNetwork(name={self.name!r}, backend={self.backend.name!r}, "
            f"layers={len(self.layers)})"
        )


def quantize_network(
    network: Network,
    calibration_images: np.ndarray,
    scheme: Optional[QuantizationScheme] = None,
    backend: Optional[MultiplierBackend] = None,
) -> QuantizedNetwork:
    """Post-training quantisation of a float network.

    Parameters
    ----------
    network:
        Trained float network.
    calibration_images:
        A representative batch used to calibrate activation quantisers.
    scheme:
        Quantisation hyper-parameters (INT4 defaults).
    backend:
        Multiplier backend the quantised layers are initially bound to
        (exact INT4 by default); use
        :meth:`QuantizedNetwork.with_backend` to evaluate other corners.
    """
    scheme = scheme or QuantizationScheme()
    backend = backend or ExactBackend()
    calibration = np.asarray(calibration_images, dtype=np.float32)

    folded_layers = fold_batchnorm_layers(network.layers)
    quantized_layers: List[object] = []
    current = calibration
    for layer in folded_layers:
        if isinstance(layer, Conv2D):
            quantized_layers.append(
                QuantizedConv2D.from_float(layer, current, scheme, backend)
            )
        elif isinstance(layer, Dense):
            quantized_layers.append(
                QuantizedDense.from_float(layer, current, scheme, backend)
            )
        elif isinstance(layer, ResidualBlock):
            quantized_layers.append(
                QuantizedResidualBlock.from_float(layer, current, scheme, backend)
            )
        elif isinstance(layer, BatchNorm):
            # A batch-norm that was not folded (no conv/dense directly before
            # it) stays as a float layer.
            quantized_layers.append(layer)
        elif isinstance(layer, (ReLU, MaxPool2D, GlobalAveragePool, Flatten)):
            quantized_layers.append(layer)
        else:
            quantized_layers.append(layer)
        current = layer.forward(current, training=False)

    return QuantizedNetwork(
        layers=quantized_layers,
        input_shape=network.input_shape,
        name=f"{network.name}-int{scheme.weight_bits}",
        backend=backend,
        multiplication_count=network.multiplication_count(),
    )
