"""Scaled-down VGG-style and ResNet-style model builders.

The paper evaluates VGG16, VGG19, ResNet50 and ResNet101.  Training those at
full scale is out of scope for an offline NumPy substrate, so this module
builds *topology-faithful but scaled-down* counterparts:

* the VGG-style models keep the "blocks of 3x3 convolutions followed by max
  pooling, then a dense classifier" structure, with the 16-layer variant
  using fewer convolutions per block than the 19-layer variant,
* the ResNet-style models keep the "stem convolution, stages of residual
  blocks with channel doubling and spatial down-sampling, global average
  pooling" structure, with the 101-style variant using more blocks per stage
  than the 50-style variant.

What matters for the Table II/III reproduction is that the four models have
different depths and multiplication counts, and that all of their
multiplications run through the same INT4 / in-SRAM multiplier path — which
these models preserve.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dnn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePool,
    Layer,
    MaxPool2D,
    ReLU,
    ResidualBlock,
)
from repro.dnn.network import Network


def _conv_bn_relu(
    in_channels: int,
    out_channels: int,
    name: str,
    rng: np.random.Generator,
) -> List[Layer]:
    """A convolution / batch-norm / ReLU triplet."""
    return [
        Conv2D(in_channels, out_channels, kernel=3, name=f"{name}.conv", rng=rng),
        BatchNorm(out_channels, name=f"{name}.bn"),
        ReLU(name=f"{name}.relu"),
    ]


def build_vgg_like(
    input_shape: Tuple[int, int, int],
    classes: int,
    convs_per_block: Sequence[int],
    channels_per_block: Sequence[int],
    classifier_width: int = 64,
    name: str = "vgg-like",
    seed: int = 0,
) -> Network:
    """Generic VGG-style builder: conv blocks + max pooling + dense head."""
    if len(convs_per_block) != len(channels_per_block):
        raise ValueError("convs_per_block and channels_per_block must align")
    rng = np.random.default_rng(seed)
    layers: List[Layer] = []
    in_channels = input_shape[2]
    spatial = input_shape[0]
    for block_index, (convs, channels) in enumerate(
        zip(convs_per_block, channels_per_block)
    ):
        for conv_index in range(convs):
            layers.extend(
                _conv_bn_relu(
                    in_channels,
                    channels,
                    name=f"{name}.b{block_index}c{conv_index}",
                    rng=rng,
                )
            )
            in_channels = channels
        if spatial >= 2:
            layers.append(MaxPool2D(size=2, name=f"{name}.pool{block_index}"))
            spatial //= 2
    layers.append(Flatten(name=f"{name}.flatten"))
    flat_features = spatial * spatial * in_channels
    layers.append(Dense(flat_features, classifier_width, name=f"{name}.fc1", rng=rng))
    layers.append(ReLU(name=f"{name}.fc1_relu"))
    layers.append(Dense(classifier_width, classes, name=f"{name}.fc2", rng=rng))
    return Network(layers, input_shape=input_shape, name=name)


def build_vgg16_like(
    input_shape: Tuple[int, int, int] = (16, 16, 3),
    classes: int = 20,
    seed: int = 0,
) -> Network:
    """Scaled-down VGG16-style model (three blocks of 2/2/3 convolutions)."""
    return build_vgg_like(
        input_shape=input_shape,
        classes=classes,
        convs_per_block=(2, 2, 3),
        channels_per_block=(8, 16, 32),
        classifier_width=64,
        name="vgg16-like",
        seed=seed,
    )


def build_vgg19_like(
    input_shape: Tuple[int, int, int] = (16, 16, 3),
    classes: int = 20,
    seed: int = 1,
) -> Network:
    """Scaled-down VGG19-style model (three blocks of 2/3/4 convolutions)."""
    return build_vgg_like(
        input_shape=input_shape,
        classes=classes,
        convs_per_block=(2, 3, 4),
        channels_per_block=(8, 16, 32),
        classifier_width=64,
        name="vgg19-like",
        seed=seed,
    )


def build_resnet_like(
    input_shape: Tuple[int, int, int],
    classes: int,
    blocks_per_stage: Sequence[int],
    channels_per_stage: Sequence[int],
    name: str = "resnet-like",
    seed: int = 2,
) -> Network:
    """Generic ResNet-style builder: stem + residual stages + GAP + dense head."""
    if len(blocks_per_stage) != len(channels_per_stage):
        raise ValueError("blocks_per_stage and channels_per_stage must align")
    rng = np.random.default_rng(seed)
    layers: List[Layer] = []
    stem_channels = channels_per_stage[0]
    layers.extend(_conv_bn_relu(input_shape[2], stem_channels, name=f"{name}.stem", rng=rng))
    in_channels = stem_channels
    for stage_index, (blocks, channels) in enumerate(
        zip(blocks_per_stage, channels_per_stage)
    ):
        for block_index in range(blocks):
            stride = 2 if (block_index == 0 and stage_index > 0) else 1
            layers.append(
                ResidualBlock(
                    in_channels,
                    channels,
                    stride=stride,
                    name=f"{name}.s{stage_index}b{block_index}",
                    rng=rng,
                )
            )
            in_channels = channels
    layers.append(GlobalAveragePool(name=f"{name}.gap"))
    layers.append(Dense(in_channels, classes, name=f"{name}.fc", rng=rng))
    return Network(layers, input_shape=input_shape, name=name)


def build_resnet50_like(
    input_shape: Tuple[int, int, int] = (16, 16, 3),
    classes: int = 20,
    seed: int = 2,
) -> Network:
    """Scaled-down ResNet50-style model (three stages of 2/2/2 blocks)."""
    return build_resnet_like(
        input_shape=input_shape,
        classes=classes,
        blocks_per_stage=(2, 2, 2),
        channels_per_stage=(8, 16, 32),
        name="resnet50-like",
        seed=seed,
    )


def build_resnet101_like(
    input_shape: Tuple[int, int, int] = (16, 16, 3),
    classes: int = 20,
    seed: int = 3,
) -> Network:
    """Scaled-down ResNet101-style model (three stages of 3/4/3 blocks)."""
    return build_resnet_like(
        input_shape=input_shape,
        classes=classes,
        blocks_per_stage=(3, 4, 3),
        channels_per_stage=(8, 16, 32),
        name="resnet101-like",
        seed=seed,
    )


def build_mlp(
    input_features: int,
    classes: int,
    hidden: Sequence[int] = (64, 32),
    name: str = "mlp",
    seed: int = 4,
) -> Network:
    """A small fully connected network (used by tests and the quickstart)."""
    rng = np.random.default_rng(seed)
    layers: List[Layer] = []
    in_features = input_features
    for index, width in enumerate(hidden):
        layers.append(Dense(in_features, width, name=f"{name}.fc{index}", rng=rng))
        layers.append(ReLU(name=f"{name}.relu{index}"))
        in_features = width
    layers.append(Dense(in_features, classes, name=f"{name}.out", rng=rng))
    return Network(layers, input_shape=(input_features,), name=name)


def paper_model_builders(
    input_shape: Tuple[int, int, int] = (16, 16, 3), classes: int = 20
) -> List[Tuple[str, "object"]]:
    """The four (name, builder) pairs evaluated in paper Tables II/III."""
    return [
        ("VGG16", lambda: build_vgg16_like(input_shape, classes)),
        ("VGG19", lambda: build_vgg19_like(input_shape, classes)),
        ("ResNet50", lambda: build_resnet50_like(input_shape, classes)),
        ("ResNet101", lambda: build_resnet101_like(input_shape, classes)),
    ]
