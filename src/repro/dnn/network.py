"""Sequential network container.

Residual topologies are expressed through the
:class:`~repro.dnn.layers.ResidualBlock` composite layer, so a plain
sequential container is sufficient for both the VGG-style and ResNet-style
models of the paper's application analysis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dnn.layers import Layer, Parameter


class Network:
    """An ordered stack of layers.

    Parameters
    ----------
    layers:
        Layers in execution order.
    input_shape:
        Shape of one input sample (excluding the batch dimension), e.g.
        ``(16, 16, 3)`` for an image or ``(64,)`` for a flat vector.
    name:
        Model name used in reports (e.g. ``"vgg16-like"``).
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Tuple[int, ...],
        name: str = "network",
    ) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name

    # ------------------------------------------------------------------
    # Inference / training passes
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a forward pass through every layer."""
        outputs = np.asarray(inputs, dtype=np.float32)
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs

    def predict(self, inputs: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Forward pass in inference mode, batched to bound memory."""
        inputs = np.asarray(inputs, dtype=np.float32)
        outputs: List[np.ndarray] = []
        for start in range(0, inputs.shape[0], batch_size):
            outputs.append(self.forward(inputs[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through every layer in reverse order."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters of the network."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def parameter_count(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(parameter.value.size for parameter in self.parameters()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def output_shape(self) -> Tuple[int, ...]:
        """Shape of one output sample."""
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def multiplication_count(self) -> int:
        """Scalar multiplications needed for one single-sample inference.

        This is the quantity reported in the "Number of Multiplications"
        column of paper Table II — every one of these multiplications is
        what the in-SRAM multiplier replaces.
        """
        shape = self.input_shape
        total = 0
        for layer in self.layers:
            total += layer.multiplication_count(shape)
            shape = layer.output_shape(shape)
        return total

    def summary(self) -> str:
        """Multi-line human-readable summary of the topology."""
        lines = [f"{self.name}: input {self.input_shape}"]
        shape = self.input_shape
        for layer in self.layers:
            out_shape = layer.output_shape(shape)
            parameter_count = sum(p.value.size for p in layer.parameters())
            lines.append(
                f"  {type(layer).__name__:<18} {layer.name:<22} "
                f"{str(shape):<15} -> {str(out_shape):<15} params={parameter_count}"
            )
            shape = out_shape
        lines.append(
            f"  total parameters: {self.parameter_count()}, "
            f"multiplications/inference: {self.multiplication_count()}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Network(name={self.name!r}, layers={len(self.layers)})"
