"""Synthetic structured image datasets.

The paper's application analysis uses ImageNet and CIFAR-10; neither is
available in this offline environment, and the experiment does not actually
require them — it requires *a classification task hard enough that replacing
exact INT4 multiplications with the analogue in-SRAM multiplier visibly moves
top-1 / top-5 accuracy*.  The generator below produces such a task:

* every class gets a smooth random prototype image (low-frequency pattern,
  so convolutional features are meaningful),
* samples are the prototype plus per-sample brightness/contrast jitter,
  a small spatial shift and additive Gaussian noise,
* with moderate noise the classes overlap enough that accuracy sits below
  100 % and degrades gracefully as compute error grows.

Two ready-made configurations mirror the paper's datasets in spirit:
:func:`imagenet_like` (20 classes, used for the Table II reproduction) and
:func:`cifar10_like` (10 classes, Table III).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


@dataclasses.dataclass
class Dataset:
    """A train/test split of images and integer labels.

    Images are float32 NHWC tensors scaled to [0, 1]; labels are integer
    class indices.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    classes: int
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.train_images.shape[0] != self.train_labels.shape[0]:
            raise ValueError("train images and labels must have the same length")
        if self.test_images.shape[0] != self.test_labels.shape[0]:
            raise ValueError("test images and labels must have the same length")
        if self.classes <= 1:
            raise ValueError("a classification dataset needs at least two classes")

    @property
    def image_shape(self) -> Tuple[int, ...]:
        """Shape of one image (H, W, C)."""
        return tuple(self.train_images.shape[1:])

    @property
    def train_size(self) -> int:
        """Number of training samples."""
        return int(self.train_images.shape[0])

    @property
    def test_size(self) -> int:
        """Number of test samples."""
        return int(self.test_images.shape[0])

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"{self.name}: {self.classes} classes, "
            f"{self.train_size} train / {self.test_size} test samples of "
            f"shape {self.image_shape}"
        )


def _smooth_random_image(
    rng: np.random.Generator, size: int, channels: int, smoothness: int = 3
) -> np.ndarray:
    """Low-frequency random pattern in [0, 1] used as a class prototype."""
    coarse = rng.uniform(0.0, 1.0, size=(smoothness, smoothness, channels))
    # Bilinear upsample of the coarse grid to the target resolution.
    coords = np.linspace(0.0, smoothness - 1.0, size)
    x0 = np.floor(coords).astype(int)
    x1 = np.minimum(x0 + 1, smoothness - 1)
    frac = coords - x0
    rows = (
        coarse[x0][:, x0] * (1 - frac)[:, None, None] * (1 - frac)[None, :, None]
        + coarse[x1][:, x0] * frac[:, None, None] * (1 - frac)[None, :, None]
        + coarse[x0][:, x1] * (1 - frac)[:, None, None] * frac[None, :, None]
        + coarse[x1][:, x1] * frac[:, None, None] * frac[None, :, None]
    )
    return rows


def _augment(
    prototype: np.ndarray, rng: np.random.Generator, noise: float
) -> np.ndarray:
    """One augmented sample: shift + contrast/brightness jitter + noise."""
    size = prototype.shape[0]
    # The spatial jitter scales with the image so that small test images are
    # not overwhelmed by translation (a +/-2 pixel shift is a quarter of an
    # 8x8 image but only an eighth of a 16x16 one).
    max_shift = max(1, size // 8)
    shift_y, shift_x = rng.integers(-max_shift, max_shift + 1, size=2)
    shifted = np.roll(prototype, (int(shift_y), int(shift_x)), axis=(0, 1))
    contrast = rng.uniform(0.8, 1.2)
    brightness = rng.uniform(-0.1, 0.1)
    sample = shifted * contrast + brightness
    sample = sample + rng.normal(0.0, noise, size=sample.shape)
    return np.clip(sample, 0.0, 1.0)


def make_synthetic_image_dataset(
    classes: int = 10,
    train_per_class: int = 100,
    test_per_class: int = 30,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.18,
    seed: int = 0,
    name: str = "synthetic",
) -> Dataset:
    """Generate a synthetic structured image classification dataset.

    Parameters
    ----------
    classes:
        Number of classes.
    train_per_class, test_per_class:
        Samples per class in each split.
    image_size:
        Square image edge length in pixels.
    channels:
        Number of colour channels.
    noise:
        Additive Gaussian noise sigma (relative to the [0, 1] intensity
        range); larger values make the task harder.
    seed:
        Seed of the generator (prototypes and augmentations).
    name:
        Dataset name used in reports.
    """
    if classes <= 1:
        raise ValueError("need at least two classes")
    if train_per_class <= 0 or test_per_class <= 0:
        raise ValueError("per-class sample counts must be positive")
    if image_size < 4:
        raise ValueError("image_size must be at least 4")
    if noise < 0.0:
        raise ValueError("noise must be non-negative")

    rng = np.random.default_rng(seed)
    prototypes = [
        _smooth_random_image(rng, image_size, channels) for _ in range(classes)
    ]

    def build_split(per_class: int) -> Tuple[np.ndarray, np.ndarray]:
        images = np.empty(
            (classes * per_class, image_size, image_size, channels), dtype=np.float32
        )
        labels = np.empty(classes * per_class, dtype=np.int64)
        index = 0
        for class_index, prototype in enumerate(prototypes):
            for _ in range(per_class):
                images[index] = _augment(prototype, rng, noise)
                labels[index] = class_index
                index += 1
        order = rng.permutation(images.shape[0])
        return images[order], labels[order]

    train_images, train_labels = build_split(train_per_class)
    test_images, test_labels = build_split(test_per_class)
    return Dataset(
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        classes=classes,
        name=name,
    )


def imagenet_like(
    image_size: int = 16,
    train_per_class: int = 80,
    test_per_class: int = 25,
    seed: int = 7,
) -> Dataset:
    """The 20-class stand-in for ImageNet used by the Table II reproduction.

    Twenty classes keep top-5 accuracy a meaningful metric (as it is for
    ImageNet's 1000 classes) while staying trainable in seconds on a laptop.
    """
    return make_synthetic_image_dataset(
        classes=20,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        image_size=image_size,
        channels=3,
        noise=0.20,
        seed=seed,
        name="imagenet-like",
    )


def cifar10_like(
    image_size: int = 16,
    train_per_class: int = 80,
    test_per_class: int = 25,
    seed: int = 11,
) -> Dataset:
    """The 10-class stand-in for CIFAR-10 used by the Table III reproduction."""
    return make_synthetic_image_dataset(
        classes=10,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        image_size=image_size,
        channels=3,
        noise=0.22,
        seed=seed,
        name="cifar10-like",
    )
