"""NumPy DNN substrate for the application analysis (paper Section VI).

The paper evaluates its in-SRAM multiplier corners inside INT4-quantised
image-classification networks (VGG16/19, ResNet50/101 on ImageNet and
CIFAR-10).  Those exact networks and datasets are not available offline, so
this package provides the complete substrate needed to run the *same
experiment* at laptop scale:

* :mod:`repro.dnn.layers` — dense / convolution / pooling / batch-norm /
  activation layers with forward and backward passes.
* :mod:`repro.dnn.network` — the sequential network container (residual
  blocks are composite layers, so VGG-style and ResNet-style topologies both
  fit).
* :mod:`repro.dnn.models` — scaled-down "VGG16/19-like" and
  "ResNet50/101-like" topology builders.
* :mod:`repro.dnn.training` — SGD-with-momentum training loop and
  cross-entropy loss.
* :mod:`repro.dnn.datasets` — synthetic structured image datasets standing
  in for ImageNet (20-class) and CIFAR-10 (10-class).
* :mod:`repro.dnn.quantization` — TFLite-style INT4 post-training
  quantisation (per-tensor / per-channel, batch-norm folding).
* :mod:`repro.dnn.imc_injection` — multiplier backends: exact INT4 and the
  in-SRAM product lookup tables from :mod:`repro.multiplier.lut`.
* :mod:`repro.dnn.evaluation` — top-1 / top-5 accuracy evaluation across
  backends (the Table II / III reproduction).
"""

from repro.dnn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePool,
    Layer,
    MaxPool2D,
    Parameter,
    ReLU,
    ResidualBlock,
)
from repro.dnn.network import Network
from repro.dnn.datasets import Dataset, cifar10_like, imagenet_like, make_synthetic_image_dataset
from repro.dnn.training import TrainingConfig, TrainingHistory, train_network
from repro.dnn.quantization import QuantizationScheme, QuantizedNetwork, quantize_network
from repro.dnn.imc_injection import ExactBackend, LutBackend, MultiplierBackend
from repro.dnn.evaluation import AccuracyReport, evaluate_accuracy, evaluate_backends
from repro.dnn.models import (
    build_mlp,
    build_resnet50_like,
    build_resnet101_like,
    build_vgg16_like,
    build_vgg19_like,
)

__all__ = [
    "AccuracyReport",
    "BatchNorm",
    "Conv2D",
    "Dataset",
    "Dense",
    "ExactBackend",
    "Flatten",
    "GlobalAveragePool",
    "Layer",
    "LutBackend",
    "MaxPool2D",
    "MultiplierBackend",
    "Network",
    "Parameter",
    "QuantizationScheme",
    "QuantizedNetwork",
    "ReLU",
    "ResidualBlock",
    "TrainingConfig",
    "TrainingHistory",
    "build_mlp",
    "build_resnet101_like",
    "build_resnet50_like",
    "build_vgg16_like",
    "build_vgg19_like",
    "cifar10_like",
    "evaluate_accuracy",
    "evaluate_backends",
    "imagenet_like",
    "make_synthetic_image_dataset",
    "quantize_network",
    "train_network",
]
