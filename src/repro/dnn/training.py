"""Training loop: SGD with momentum and softmax cross-entropy.

The paper's DNNs come pre-trained from the Keras model zoo; the scaled-down
models here are trained from scratch on the synthetic datasets, and the
CIFAR-10-style experiment additionally exercises the transfer-learning step
the paper describes (replace the classifier head, retrain briefly).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dnn.datasets import Dataset
from repro.dnn.layers import Dense, Parameter
from repro.dnn.network import Network


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float32)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits."""
    labels = np.asarray(labels)
    probabilities = softmax(logits)
    batch = logits.shape[0]
    clipped = np.clip(probabilities[np.arange(batch), labels], 1e-12, 1.0)
    loss = float(-np.mean(np.log(clipped)))
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 12
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    learning_rate_decay: float = 0.85
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")


@dataclasses.dataclass
class TrainingHistory:
    """Loss / accuracy trajectory of one training run."""

    losses: List[float]
    train_accuracies: List[float]
    test_accuracies: List[float]

    @property
    def final_test_accuracy(self) -> float:
        """Test accuracy after the last epoch."""
        return self.test_accuracies[-1] if self.test_accuracies else 0.0

    @property
    def final_loss(self) -> float:
        """Training loss after the last epoch."""
        return self.losses[-1] if self.losses else float("inf")


class SgdOptimizer:
    """Plain SGD with momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: List[Parameter],
        learning_rate: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {
            index: np.zeros_like(parameter.value)
            for index, parameter in enumerate(parameters)
        }

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if self.weight_decay > 0.0:
                gradient = gradient + self.weight_decay * parameter.value
            velocity = self._velocity[index]
            velocity *= self.momentum
            velocity -= self.learning_rate * gradient
            parameter.value += velocity


def classification_accuracy(network: Network, images: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``network`` on the given samples."""
    logits = network.predict(images)
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == np.asarray(labels)))


def train_network(
    network: Network,
    dataset: Dataset,
    config: Optional[TrainingConfig] = None,
) -> TrainingHistory:
    """Train ``network`` on ``dataset`` with SGD + momentum.

    Returns the loss / accuracy history; the network is modified in place.
    """
    config = config or TrainingConfig()
    rng = np.random.default_rng(config.seed)
    optimizer = SgdOptimizer(
        network.parameters(),
        learning_rate=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )

    losses: List[float] = []
    train_accuracies: List[float] = []
    test_accuracies: List[float] = []
    sample_count = dataset.train_size

    for epoch in range(config.epochs):
        order = rng.permutation(sample_count)
        epoch_losses: List[float] = []
        for start in range(0, sample_count, config.batch_size):
            batch_indices = order[start : start + config.batch_size]
            images = dataset.train_images[batch_indices]
            labels = dataset.train_labels[batch_indices]

            network.zero_grad()
            logits = network.forward(images, training=True)
            loss, grad = cross_entropy_loss(logits, labels)
            network.backward(grad)
            optimizer.step()
            epoch_losses.append(loss)

        optimizer.learning_rate *= config.learning_rate_decay
        losses.append(float(np.mean(epoch_losses)))
        train_accuracies.append(
            classification_accuracy(network, dataset.train_images, dataset.train_labels)
        )
        test_accuracies.append(
            classification_accuracy(network, dataset.test_images, dataset.test_labels)
        )
        if config.verbose:  # pragma: no cover - console convenience
            print(
                f"epoch {epoch + 1:3d}/{config.epochs}: loss={losses[-1]:.4f} "
                f"train_acc={train_accuracies[-1]:.3f} test_acc={test_accuracies[-1]:.3f}"
            )

    return TrainingHistory(
        losses=losses,
        train_accuracies=train_accuracies,
        test_accuracies=test_accuracies,
    )


def replace_classifier_head(
    network: Network, classes: int, rng: Optional[np.random.Generator] = None
) -> Network:
    """Swap the final dense layer for a freshly initialised ``classes``-wide one.

    This is the transfer-learning step of the paper's CIFAR-10 experiment:
    the backbone keeps its trained weights, only the classifier is replaced
    (and then briefly retrained by the caller).
    """
    if not isinstance(network.layers[-1], Dense):
        raise ValueError("the network's last layer must be Dense to replace the head")
    old_head = network.layers[-1]
    new_head = Dense(
        old_head.in_features,
        classes,
        name=f"{old_head.name}_transfer",
        rng=rng or np.random.default_rng(123),
    )
    layers = list(network.layers[:-1]) + [new_head]
    return Network(layers, input_shape=network.input_shape, name=f"{network.name}-transfer")
