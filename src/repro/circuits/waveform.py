"""Waveform container and measurement helpers.

The transient solver produces voltage-versus-time traces; the OPTIMA fitting
flow then measures them (value at the ADC sampling instant, total discharge,
crossing times).  :class:`Waveform` provides those measurements in one place
so the analysis code never re-implements interpolation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np


@dataclasses.dataclass
class Waveform:
    """A sampled single-signal waveform.

    Attributes
    ----------
    times:
        Monotonically increasing sample instants in seconds.
    values:
        Signal values at those instants (volts for all waveforms produced by
        this package).
    name:
        Optional signal name used in reports and plots.
    """

    times: np.ndarray
    values: np.ndarray
    name: str = "v(blb)"

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.ndim != 1:
            raise ValueError("times must be one-dimensional")
        if self.values.shape[-1] != self.times.shape[0]:
            raise ValueError("values must have one entry per time sample")
        if self.times.shape[0] < 2:
            raise ValueError("a waveform needs at least two samples")
        if np.any(np.diff(self.times) <= 0.0):
            raise ValueError("times must be strictly increasing")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def duration(self) -> float:
        """Total simulated time span in seconds."""
        return float(self.times[-1] - self.times[0])

    @property
    def initial_value(self) -> float:
        """Signal value at the first sample."""
        return float(np.atleast_1d(self.values[..., 0]).flat[0])

    @property
    def final_value(self) -> float:
        """Signal value at the last sample."""
        return float(np.atleast_1d(self.values[..., -1]).flat[0])

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def value_at(self, time: float) -> float:
        """Linearly interpolated signal value at ``time`` seconds.

        Raises
        ------
        ValueError
            If ``time`` lies outside the simulated span.
        """
        if time < self.times[0] or time > self.times[-1]:
            raise ValueError(
                f"time {time:.3e} s outside waveform span "
                f"[{self.times[0]:.3e}, {self.times[-1]:.3e}] s"
            )
        flat = np.atleast_2d(self.values)
        interpolated = np.array([np.interp(time, self.times, row) for row in flat])
        if self.values.ndim == 1:
            return float(interpolated[0])
        return float(interpolated.mean())

    def delta_at(self, time: float) -> float:
        """Discharge (initial value minus value at ``time``)."""
        return self.initial_value - self.value_at(time)

    def total_delta(self) -> float:
        """Discharge over the whole simulated span."""
        return self.initial_value - self.final_value

    def crossing_time(self, level: float) -> Optional[float]:
        """First time the waveform crosses ``level`` (falling), or ``None``."""
        values = np.atleast_1d(self.values if self.values.ndim == 1 else self.values[0])
        below = np.nonzero(values <= level)[0]
        if below.size == 0:
            return None
        index = int(below[0])
        if index == 0:
            return float(self.times[0])
        t0, t1 = self.times[index - 1], self.times[index]
        v0, v1 = values[index - 1], values[index]
        if v0 == v1:
            return float(t1)
        fraction = (v0 - level) / (v0 - v1)
        return float(t0 + fraction * (t1 - t0))

    def resampled(self, times: Sequence[float]) -> "Waveform":
        """Return a copy interpolated onto a new time grid."""
        times = np.asarray(times, dtype=float)
        values = np.interp(times, self.times, np.atleast_1d(self.values))
        return Waveform(times=times, values=values, name=self.name)

    def slope_at(self, time: float, window: Optional[float] = None) -> float:
        """Finite-difference slope (V/s) around ``time``.

        Parameters
        ----------
        time:
            Centre of the differentiation window.
        window:
            Width of the window; defaults to two simulation steps.
        """
        if window is None:
            window = 2.0 * float(np.median(np.diff(self.times)))
        t_lo = max(self.times[0], time - window / 2.0)
        t_hi = min(self.times[-1], time + window / 2.0)
        if t_hi <= t_lo:
            raise ValueError("slope window collapsed to zero width")
        return (self.value_at(t_hi) - self.value_at(t_lo)) / (t_hi - t_lo)
