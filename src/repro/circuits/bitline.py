"""Bit-line parasitics and pre-charge behaviour.

Discharge-based in-SRAM computing stores its analogue intermediate result as
charge removed from the bit-line capacitance, so the bit-line is a
first-class circuit element here rather than an implicit wire.  The class
below also provides the pre-charge/restore energy book-keeping that feeds the
energy models of paper Eq. 7/8.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.technology import TechnologyCard


@dataclasses.dataclass
class BitLine:
    """One bit-line (or bit-line-bar) column wire.

    Attributes
    ----------
    capacitance:
        Total capacitance of the wire plus the drain junctions of every
        attached cell, in farads.
    rows:
        Number of SRAM cells attached to the column (used only for
        per-cell capacitance breakdown in reports).
    name:
        Signal name, e.g. ``"BLB0"``.
    """

    capacitance: float
    rows: int = 64
    name: str = "BLB"

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError("bit-line capacitance must be positive")
        if self.rows <= 0:
            raise ValueError("a bit-line must connect at least one row")

    @classmethod
    def from_technology(
        cls, technology: TechnologyCard, rows: int = 64, name: str = "BLB"
    ) -> "BitLine":
        """Build a bit-line whose capacitance scales with the row count.

        The technology card specifies the capacitance of a 64-row column;
        other row counts scale linearly, which is the standard first-order
        model (junction capacitance dominates the wire).
        """
        capacitance = technology.bitline_capacitance * (rows / 64.0)
        return cls(capacitance=capacitance, rows=rows, name=name)

    # ------------------------------------------------------------------
    # Charge / energy book-keeping
    # ------------------------------------------------------------------
    def charge_for_swing(self, delta_v: float) -> float:
        """Charge (coulomb) removed from the line for a ``delta_v`` discharge."""
        if delta_v < 0.0:
            raise ValueError("delta_v must be non-negative")
        return self.capacitance * delta_v

    def precharge_energy(self, vdd: float, delta_v: float) -> float:
        """Energy drawn from the supply to restore a ``delta_v`` discharge.

        Re-charging a capacitor from ``VDD - delta_v`` back to ``VDD``
        through the pre-charge PMOS draws ``C * VDD * delta_v`` from the
        supply (half stored, half dissipated in the switch).
        """
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        return self.capacitance * vdd * float(np.maximum(delta_v, 0.0))

    def full_swing_energy(self, vdd: float) -> float:
        """Energy to re-charge the line after a full rail-to-rail discharge."""
        return self.precharge_energy(vdd, vdd)

    def voltage_after_charge_removal(self, vdd: float, charge: float) -> float:
        """Line voltage after removing ``charge`` coulombs, clipped at 0 V."""
        if charge < 0.0:
            raise ValueError("charge must be non-negative")
        return float(np.maximum(vdd - charge / self.capacitance, 0.0))

    def discharge_time_constant(self, equivalent_resistance: float) -> float:
        """RC time constant for a given equivalent discharge resistance."""
        if equivalent_resistance <= 0.0:
            raise ValueError("equivalent_resistance must be positive")
        return self.capacitance * equivalent_resistance

    def per_cell_capacitance(self) -> float:
        """Average capacitance contributed per attached cell."""
        return self.capacitance / self.rows
