"""Reference energy accounting of the in-SRAM multiply sequence.

The OPTIMA energy models (paper Eq. 7/8) are polynomial fits of two
quantities:

* ``E_wr`` — the energy of writing an operand into the SRAM word.  The write
  drives both bit-lines rail-to-rail, toggles the cell internal nodes and
  pays a (mildly temperature-dependent) leakage/short-circuit overhead.
* ``E_dc`` — the energy of one discharge-and-restore cycle, dominated by
  re-charging the bit-line by the discharge swing ``delta_V_BL`` and by
  driving the word line to the DAC voltage.

This module provides the *reference* (physics-based) accounting of those
quantities, which the behavioural models are then fitted against, mirroring
how the paper extracts energies from circuit simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.circuits.technology import TechnologyCard

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Per-phase energy of one in-SRAM multiply, in joules."""

    write: float
    wordline: float
    precharge_restore: float
    sampling: float

    @property
    def discharge(self) -> float:
        """Energy of the discharge phase (everything except the write)."""
        return self.wordline + self.precharge_restore + self.sampling

    @property
    def total(self) -> float:
        """Total energy of write plus discharge phases."""
        return self.write + self.discharge

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"write={self.write * 1e15:.1f} fJ, "
            f"wordline={self.wordline * 1e15:.1f} fJ, "
            f"restore={self.precharge_restore * 1e15:.1f} fJ, "
            f"sampling={self.sampling * 1e15:.1f} fJ, "
            f"total={self.total * 1e15:.1f} fJ"
        )


class EnergyModelReference:
    """Physics-based energy accounting for one bit-line / cell pair.

    Parameters
    ----------
    technology:
        Technology card providing the capacitances.
    rows:
        Rows attached to the bit-line (scales its capacitance).
    write_overhead:
        Fraction of extra energy spent in the write driver and short-circuit
        currents on top of the ideal ``C V^2`` term.
    leakage_power_nominal:
        Static leakage power of the column at nominal conditions, charged to
        the write phase (it is active for the whole cycle but dominated by
        the longer write/restore phase); gives ``E_wr`` its mild temperature
        dependence, as in paper Eq. 7.
    write_duration:
        Duration of the write phase used to convert leakage power to energy.
    """

    def __init__(
        self,
        technology: TechnologyCard,
        rows: int = 64,
        write_overhead: float = 0.15,
        leakage_power_nominal: float = 2.0e-6,
        write_duration: float = 2.0e-9,
    ) -> None:
        if write_overhead < 0.0:
            raise ValueError("write_overhead must be non-negative")
        self.technology = technology
        self.rows = rows
        self.write_overhead = write_overhead
        self.leakage_power_nominal = leakage_power_nominal
        self.write_duration = write_duration
        self._bitline_capacitance = technology.bitline_capacitance * (rows / 64.0)

    # ------------------------------------------------------------------
    # Write energy (per cell)
    # ------------------------------------------------------------------
    def write_energy(self, conditions: OperatingConditions) -> float:
        """Energy to write one bit, independent of the written value.

        The symmetric 6T layout makes the write energy data-independent
        (paper Section IV-B): one of the two bit-lines is always discharged
        to ground and re-charged afterwards, and the internal nodes always
        toggle one full swing in the worst case that sizing is done for.
        """
        return float(self.write_energy_table(conditions.vdd, conditions.temperature))

    def write_energy_table(
        self, vdd: ArrayLike, temperature: ArrayLike
    ) -> np.ndarray:
        """Write energy over per-record supply / temperature columns.

        ``vdd`` and ``temperature`` broadcast against each other; every
        element is bit-identical to a scalar :meth:`write_energy` call at
        that operating point (the accounting is purely elementwise), so a
        whole characterisation table evaluates as one NumPy pass.
        """
        vdd = np.asarray(vdd, dtype=float)
        # Both the BL and the BLB are driven during a write (one of them
        # rail-to-rail), the internal nodes toggle, and the word line is
        # pulsed to VDD.
        switching = (
            2.0 * self._bitline_capacitance * vdd**2
            + 2.0 * self.technology.cell_internal_capacitance * vdd**2
            + self.technology.wordline_capacitance * vdd**2
        )
        switching = switching * (1.0 + self.write_overhead)
        return switching + self._leakage_energy_table(vdd, temperature)

    def _leakage_energy(self, conditions: OperatingConditions) -> float:
        """Leakage energy over the write phase; grows exponentially with T."""
        return float(
            self._leakage_energy_table(conditions.vdd, conditions.temperature)
        )

    def _leakage_energy_table(
        self, vdd: ArrayLike, temperature: ArrayLike
    ) -> np.ndarray:
        """Elementwise leakage energy over supply / temperature columns."""
        tech = self.technology
        delta_t = np.asarray(temperature, dtype=float) - tech.temperature_nominal
        # Sub-threshold leakage roughly doubles every ~25 K; linearised over
        # the industrial range this is a ~2.8 %/K growth, and it scales
        # linearly with the supply voltage.
        temperature_factor = 1.0 + 0.028 * delta_t
        vdd_factor = vdd / tech.vdd_nominal
        power = (
            self.leakage_power_nominal
            * np.maximum(temperature_factor, 0.1)
            * vdd_factor
        )
        return power * self.write_duration

    def word_write_energy(self, conditions: OperatingConditions, bits: int = 4) -> float:
        """Energy to write a ``bits``-wide word (one cell per column)."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        return bits * self.write_energy(conditions)

    # ------------------------------------------------------------------
    # Discharge energy (per bit-line)
    # ------------------------------------------------------------------
    def discharge_energy(
        self,
        delta_v_bl: ArrayLike,
        wordline_voltage: ArrayLike,
        conditions: OperatingConditions,
    ) -> np.ndarray:
        """Energy of one discharge-and-restore cycle on one bit-line.

        Parameters
        ----------
        delta_v_bl:
            Discharge swing of the bit-line in volts.
        wordline_voltage:
            DAC output voltage driven onto the word line.
        conditions:
            PVT operating point.
        """
        return self.discharge_energy_table(
            delta_v_bl, wordline_voltage, conditions.vdd, conditions.temperature
        )

    def discharge_energy_table(
        self,
        delta_v_bl: ArrayLike,
        wordline_voltage: ArrayLike,
        vdd: ArrayLike,
        temperature: ArrayLike,
    ) -> np.ndarray:
        """Discharge energy over per-record columns, one NumPy pass.

        Accepts whole characterisation columns (``vdd`` / ``temperature``
        varying per record) instead of a single
        :class:`~repro.circuits.conditions.OperatingConditions` point; each
        element is bit-identical to the corresponding scalar
        :meth:`discharge_energy` call because the accounting is purely
        elementwise.
        """
        delta_v = np.maximum(np.asarray(delta_v_bl, dtype=float), 0.0)
        del wordline_voltage  # accepted for API symmetry; the word-line /
        # DAC driver energy is accounted separately by the multiplier model
        # so it is deliberately *not* part of the cell discharge energy
        # (otherwise it would be double-counted and would break the
        # delta-V-only dependence of paper Eq. 8).

        restore = self._bitline_capacitance * vdd * delta_v
        # The pre-charge switch dissipates an extra quadratic term (the
        # charge flows across a voltage difference that itself grows with
        # the swing); this is what makes the cubic fit of Eq. 8 meaningful.
        restore_loss = 0.5 * self._bitline_capacitance * delta_v**2
        sampling = self.technology.sampling_capacitance * vdd * delta_v

        temperature_factor = 1.0 + 0.0008 * (
            np.asarray(temperature, dtype=float) - self.technology.temperature_nominal
        )
        return (restore + restore_loss + sampling) * temperature_factor

    def breakdown(
        self,
        delta_v_bl: float,
        wordline_voltage: float,
        conditions: OperatingConditions,
        bits: int = 4,
    ) -> EnergyBreakdown:
        """Full per-phase energy breakdown of one multiply on one bit-line."""
        vdd = conditions.vdd
        delta_v = max(float(delta_v_bl), 0.0)
        return EnergyBreakdown(
            write=self.word_write_energy(conditions, bits=bits),
            wordline=float(self.technology.wordline_capacitance * wordline_voltage**2),
            precharge_restore=float(
                self._bitline_capacitance * vdd * delta_v
                + 0.5 * self._bitline_capacitance * delta_v**2
            ),
            sampling=float(self.technology.sampling_capacitance * vdd * delta_v),
        )
