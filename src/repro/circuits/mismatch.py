"""Pelgrom-style transistor mismatch sampling.

Process variation has a systematic component (the global FF/TT/SS corner,
handled by :class:`repro.circuits.technology.ProcessCorner`) and a local,
per-device stochastic component (threshold-voltage and current-factor
mismatch).  The paper treats local mismatch as a Gaussian perturbation of the
bit-line discharge (Fig. 5d) whose sigma grows with the applied word-line
voltage; OPTIMA then fits Eq. 6 to that behaviour.  This module provides the
Monte-Carlo sampling of per-device offsets that generates the reference
behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

import numpy as np

from repro.circuits.technology import TechnologyCard


@dataclasses.dataclass(frozen=True)
class MismatchParameters:
    """Mismatch sigmas for the two devices of the discharge stack.

    Attributes
    ----------
    sigma_vth_access, sigma_vth_pulldown:
        Threshold-voltage mismatch sigma (volts) of the access and pull-down
        transistors.
    sigma_beta_access, sigma_beta_pulldown:
        Relative current-factor mismatch sigma (dimensionless).
    """

    sigma_vth_access: float
    sigma_vth_pulldown: float
    sigma_beta_access: float
    sigma_beta_pulldown: float

    @classmethod
    def from_technology(cls, technology: TechnologyCard) -> "MismatchParameters":
        """Derive the mismatch sigmas from the Pelgrom coefficients."""
        return cls(
            sigma_vth_access=technology.mismatch_sigma_vth(
                technology.access_width, technology.access_length
            ),
            sigma_vth_pulldown=technology.mismatch_sigma_vth(
                technology.pulldown_width, technology.pulldown_length
            ),
            sigma_beta_access=technology.mismatch_sigma_beta(
                technology.access_width, technology.access_length
            ),
            sigma_beta_pulldown=technology.mismatch_sigma_beta(
                technology.pulldown_width, technology.pulldown_length
            ),
        )

    def scaled(self, factor: float) -> "MismatchParameters":
        """Return a copy with all sigmas multiplied by ``factor``.

        Useful for sensitivity studies (e.g. "what if the layout doubled the
        device area?").
        """
        if factor < 0.0:
            raise ValueError("factor must be non-negative")
        return MismatchParameters(
            sigma_vth_access=self.sigma_vth_access * factor,
            sigma_vth_pulldown=self.sigma_vth_pulldown * factor,
            sigma_beta_access=self.sigma_beta_access * factor,
            sigma_beta_pulldown=self.sigma_beta_pulldown * factor,
        )


@dataclasses.dataclass(frozen=True)
class MismatchSample:
    """Per-device offsets of one Monte-Carlo sample.

    Offsets are expressed the same way :class:`repro.circuits.mosfet.NmosDevice`
    consumes them: additive threshold shift (volts) and relative gain shift.
    """

    vth_access: float = 0.0
    vth_pulldown: float = 0.0
    beta_access: float = 0.0
    beta_pulldown: float = 0.0

    @classmethod
    def nominal(cls) -> "MismatchSample":
        """A perfectly matched (zero-offset) sample."""
        return cls()

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"dVth(acc)={self.vth_access * 1e3:+.2f} mV, "
            f"dVth(pd)={self.vth_pulldown * 1e3:+.2f} mV, "
            f"dbeta(acc)={self.beta_access * 1e2:+.2f} %, "
            f"dbeta(pd)={self.beta_pulldown * 1e2:+.2f} %"
        )


class MismatchSampler:
    """Draw reproducible Monte-Carlo mismatch samples.

    Parameters
    ----------
    parameters:
        Mismatch sigmas, typically built with
        :meth:`MismatchParameters.from_technology`.
    seed:
        Seed of the underlying NumPy generator.  Two samplers with the same
        seed produce identical sample streams, which keeps the paper's
        Monte-Carlo experiments deterministic across runs.
    """

    def __init__(self, parameters: MismatchParameters, seed: Optional[int] = 0) -> None:
        self.parameters = parameters
        self._rng = np.random.default_rng(seed)

    def sample(self) -> MismatchSample:
        """Draw one mismatch sample."""
        p = self.parameters
        return MismatchSample(
            vth_access=float(self._rng.normal(0.0, p.sigma_vth_access)),
            vth_pulldown=float(self._rng.normal(0.0, p.sigma_vth_pulldown)),
            beta_access=float(self._rng.normal(0.0, p.sigma_beta_access)),
            beta_pulldown=float(self._rng.normal(0.0, p.sigma_beta_pulldown)),
        )

    def samples(self, count: int) -> List[MismatchSample]:
        """Draw ``count`` mismatch samples as a list."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample() for _ in range(count)]

    def sample_arrays(self, count: int) -> "MismatchArrays":
        """Draw ``count`` samples as parallel arrays (for vectorised solves)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        p = self.parameters
        return MismatchArrays(
            vth_access=self._rng.normal(0.0, p.sigma_vth_access, size=count),
            vth_pulldown=self._rng.normal(0.0, p.sigma_vth_pulldown, size=count),
            beta_access=self._rng.normal(0.0, p.sigma_beta_access, size=count),
            beta_pulldown=self._rng.normal(0.0, p.sigma_beta_pulldown, size=count),
        )

    def stream(self) -> Iterator[MismatchSample]:
        """Infinite iterator of mismatch samples."""
        while True:
            yield self.sample()


@dataclasses.dataclass
class MismatchArrays:
    """Vectorised Monte-Carlo offsets (one entry per sample)."""

    vth_access: np.ndarray
    vth_pulldown: np.ndarray
    beta_access: np.ndarray
    beta_pulldown: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.vth_access),
            len(self.vth_pulldown),
            len(self.beta_access),
            len(self.beta_pulldown),
        }
        if len(lengths) != 1:
            raise ValueError("all offset arrays must have the same length")

    def __len__(self) -> int:
        return len(self.vth_access)

    def __getitem__(self, index: int) -> MismatchSample:
        return MismatchSample(
            vth_access=float(self.vth_access[index]),
            vth_pulldown=float(self.vth_pulldown[index]),
            beta_access=float(self.beta_access[index]),
            beta_pulldown=float(self.beta_pulldown[index]),
        )

    def __iter__(self) -> Iterator[MismatchSample]:
        for index in range(len(self)):
            yield self[index]
