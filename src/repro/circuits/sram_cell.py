"""6T SRAM cell model for discharge-based in-memory computing.

The cell follows paper Fig. 2: two cross-coupled inverters (M1-M4) store the
data bit differentially at nodes Q and Q-bar, and two NMOS access transistors
(M5, M6) connect those nodes to the BL / BLB column wires when the word line
is raised.

For the in-memory multiplication of Fig. 3 only the *discharge path* matters:
when the stored bit is '1' (Q = VDD, Q-bar = 0 V) and an analogue voltage is
applied to the word line, the BLB discharges through the series stack of the
access transistor M6 (gate at ``V_WL``) and the pull-down transistor M4 (gate
at ``VDD``).  The cell class therefore exposes a vectorised
:meth:`SramCell.discharge_current` that solves this two-transistor stack, and
the digital read/write behaviour needed by the array model.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.circuits.mismatch import MismatchSample
from repro.circuits.mosfet import (
    MosfetParameters,
    NmosDevice,
    drain_current_from_parameters,
)
from repro.circuits.technology import TechnologyCard

ArrayLike = Union[float, np.ndarray]


class CellState(enum.Enum):
    """Logical content of one 6T cell."""

    ZERO = 0
    ONE = 1

    @classmethod
    def from_bit(cls, bit: int) -> "CellState":
        """Convert an integer bit (0 or 1) into a cell state."""
        if bit not in (0, 1):
            raise ValueError(f"a cell stores a single bit, got {bit!r}")
        return cls.ONE if bit else cls.ZERO

    @property
    def bit(self) -> int:
        """The stored bit as an integer."""
        return self.value


@dataclasses.dataclass(frozen=True)
class DischargeStack:
    """Pre-extracted parameters of the M6/M4 discharge stack.

    Extracting the MOSFET parameters once per operating point and reusing
    them across every integration step is what keeps the reference solver
    usable for thousand-sample Monte-Carlo runs.
    """

    access: MosfetParameters
    pulldown: MosfetParameters
    vdd: float

    def current(self, v_bl: ArrayLike, v_wl: ArrayLike) -> np.ndarray:
        """Discharge current drawn from the bit-line at voltage ``v_bl``.

        The internal node voltage ``v_x`` (the source of the access device
        and drain of the pull-down device) is found by equating the two
        device currents with a vectorised bisection:

        * access device:   gate ``V_WL``, drain ``v_bl``, source ``v_x``
        * pull-down device: gate ``VDD``,  drain ``v_x``,  source 0 V

        ``I_access`` decreases monotonically with ``v_x`` while
        ``I_pulldown`` increases, so the bisection always converges.
        """
        v_bl = np.asarray(v_bl, dtype=float)
        v_wl = np.asarray(v_wl, dtype=float)
        v_bl, v_wl = np.broadcast_arrays(v_bl, v_wl)

        low = np.zeros_like(v_bl)
        high = np.maximum(v_bl, 0.0)

        def balance(v_x: np.ndarray) -> np.ndarray:
            i_access = drain_current_from_parameters(
                self.access, v_wl - v_x, v_bl - v_x
            )
            i_pulldown = drain_current_from_parameters(self.pulldown, self.vdd, v_x)
            return i_access - i_pulldown

        # 24 bisection steps resolve v_x to ~60 nV over a 1 V range, far
        # below any voltage scale that matters here.
        for _ in range(24):
            mid = 0.5 * (low + high)
            positive = balance(mid) > 0.0
            low = np.where(positive, mid, low)
            high = np.where(positive, high, mid)
        v_x = 0.5 * (low + high)
        return drain_current_from_parameters(self.access, v_wl - v_x, v_bl - v_x)

    def leakage_current(self, v_bl: ArrayLike) -> np.ndarray:
        """Residual bit-line leakage through an *unselected* path.

        When the stored bit is '0', the BLB-side internal node sits at VDD
        and only the access device's sub-threshold/junction leakage loads the
        line.  It is orders of magnitude below the selected-cell current but
        non-zero, which the array model uses to account for column leakage.
        """
        v_bl = np.asarray(v_bl, dtype=float)
        return drain_current_from_parameters(self.access, 0.0, np.maximum(v_bl - self.vdd, 0.0))


class SramCell:
    """One 6T SRAM cell with optional per-device mismatch.

    Parameters
    ----------
    technology:
        Technology card providing device geometries and process constants.
    state:
        Initial stored bit.
    mismatch:
        Optional per-device mismatch offsets for the discharge stack.  A
        ``None`` value means a perfectly matched cell.
    """

    def __init__(
        self,
        technology: TechnologyCard,
        state: CellState = CellState.ZERO,
        mismatch: Optional[MismatchSample] = None,
    ) -> None:
        self.technology = technology
        self.state = state
        self.mismatch = mismatch or MismatchSample.nominal()
        self._access = NmosDevice(
            technology,
            width=technology.access_width,
            length=technology.access_length,
            vth_offset=self.mismatch.vth_access,
            gain_offset=self.mismatch.beta_access,
            name="M6",
        )
        self._pulldown = NmosDevice(
            technology,
            width=technology.pulldown_width,
            length=technology.pulldown_length,
            vth_offset=self.mismatch.vth_pulldown,
            gain_offset=self.mismatch.beta_pulldown,
            name="M4",
        )

    # ------------------------------------------------------------------
    # Digital behaviour
    # ------------------------------------------------------------------
    def write(self, bit: int) -> None:
        """Overwrite the stored bit (models the full-swing BL write)."""
        self.state = CellState.from_bit(bit)

    def read(self) -> int:
        """Return the stored bit (models a standard differential read)."""
        return self.state.bit

    @property
    def stored_bit(self) -> int:
        """The stored bit as an integer."""
        return self.state.bit

    # ------------------------------------------------------------------
    # Analogue behaviour
    # ------------------------------------------------------------------
    def discharge_stack(self, conditions: OperatingConditions) -> DischargeStack:
        """Extract the discharge-path parameters for one operating point."""
        return DischargeStack(
            access=self._access.parameters(conditions),
            pulldown=self._pulldown.parameters(conditions),
            vdd=conditions.vdd,
        )

    def discharge_current(
        self,
        v_bl: ArrayLike,
        v_wl: ArrayLike,
        conditions: OperatingConditions,
    ) -> np.ndarray:
        """Current the cell draws from the BLB at voltage ``v_bl``.

        When the stored bit is '0' the BLB-side node is held at VDD and only
        leakage flows; when it is '1' the full series-stack current flows and
        its magnitude depends on the word-line voltage, which is exactly the
        multiplication mechanism of paper Eq. 1.
        """
        stack = self.discharge_stack(conditions)
        if self.state is CellState.ZERO:
            return stack.leakage_current(v_bl)
        return stack.current(v_bl, v_wl)

    def saturation_limit(self, v_wl: float, conditions: OperatingConditions) -> float:
        """Bit-line voltage below which the access device leaves saturation.

        This is the right-hand side of paper Eq. 2: ``V_BL >= V_WL - V_th``.
        The ADC sampling time of a well-designed multiplier keeps the
        discharge above this limit.
        """
        params = self._access.parameters(conditions)
        return max(v_wl - params.threshold_voltage, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SramCell(state={self.state.name}, mismatch={self.mismatch.describe()})"
