"""Alpha-power-law NMOS model with sub-threshold conduction.

The discharge path of a 6T SRAM cell during an in-memory multiplication is a
stack of two NMOS transistors: the access device (gate driven by the
word-line DAC) and the pull-down device of the inverter that stores '0'
(gate at VDD).  The analogue non-idealities the paper analyses in Section III
all originate from the I-V characteristics of this stack:

* quadratic (really ``alpha``-power) dependence of the saturation current on
  the gate overdrive -> nonlinear discharge vs. word-line voltage
  (paper Fig. 4b),
* non-zero sub-threshold current at ``V_GS <= V_th`` -> residual discharge
  for a logical '0' input (paper Fig. 4a, Section III-1),
* transition from saturation into the linear (triode) region once the
  bit-line has discharged below ``V_WL - V_th`` -> bent discharge curves and
  the sampling-time constraint of Eq. 2.

The model below is the Sakurai-Newton alpha-power law extended with a smooth
sub-threshold exponential, formulated so every method accepts NumPy arrays
and broadcasts (the mismatch Monte-Carlo experiments evaluate thousands of
device instances at once).
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.circuits.technology import ProcessCorner, TechnologyCard

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class MosfetParameters:
    """Electrical parameters of one NMOS instance at one operating point.

    Instances are produced by :meth:`NmosDevice.parameters` which folds in
    the technology card, the operating conditions (temperature and process
    corner) and optional per-device mismatch offsets.

    Attributes
    ----------
    threshold_voltage:
        Effective threshold voltage in volts.
    gain:
        Transconductance parameter ``K = k' * W/L * mobility_factor`` in
        A/V^alpha.
    alpha:
        Velocity-saturation exponent.
    channel_length_modulation:
        Early-effect coefficient in 1/V.
    subthreshold_swing:
        Sub-threshold swing in V/decade.
    leak_current:
        Drain current at ``V_GS == V_th`` for this geometry, anchoring the
        sub-threshold exponential.
    thermal_voltage:
        kT/q at the operating temperature.
    """

    threshold_voltage: float
    gain: float
    alpha: float
    channel_length_modulation: float
    subthreshold_swing: float
    leak_current: float
    thermal_voltage: float


class NmosDevice:
    """One NMOS transistor instance bound to a technology card.

    Parameters
    ----------
    technology:
        Technology card supplying process constants.
    width, length:
        Drawn dimensions in metres.
    vth_offset:
        Per-instance threshold mismatch offset in volts (from the Pelgrom
        sampler); defaults to a perfectly matched device.
    gain_offset:
        Per-instance relative current-factor mismatch (e.g. ``0.01`` for a
        +1 % deviation).
    name:
        Optional instance name used in diagnostics.
    """

    def __init__(
        self,
        technology: TechnologyCard,
        width: float,
        length: float,
        vth_offset: float = 0.0,
        gain_offset: float = 0.0,
        name: str = "M",
    ) -> None:
        if width <= 0.0 or length <= 0.0:
            raise ValueError("device dimensions must be positive")
        self.technology = technology
        self.width = width
        self.length = length
        self.vth_offset = vth_offset
        self.gain_offset = gain_offset
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NmosDevice(name={self.name!r}, W={self.width * 1e9:.0f}n, "
            f"L={self.length * 1e9:.0f}n, dVth={self.vth_offset * 1e3:+.2f}mV)"
        )

    # ------------------------------------------------------------------
    # Parameter extraction
    # ------------------------------------------------------------------
    def parameters(self, conditions: OperatingConditions) -> MosfetParameters:
        """Fold technology, PVT conditions and mismatch into one parameter set."""
        tech = self.technology
        vth = tech.threshold_voltage(conditions.temperature, conditions.corner)
        vth += self.vth_offset
        gain = tech.device_gain(
            self.width, self.length, conditions.temperature, conditions.corner
        )
        gain *= 1.0 + self.gain_offset
        # The sub-threshold anchor current scales with geometry and corner in
        # the same way as the strong-inversion gain.
        leak = (
            tech.subthreshold_leak_current
            * (self.width / self.length)
            * tech.mobility_factor(conditions.temperature, conditions.corner)
            * (1.0 + self.gain_offset)
        )
        # Sub-threshold swing worsens linearly with absolute temperature.
        swing = tech.subthreshold_swing * (
            conditions.temperature / tech.temperature_nominal
        )
        return MosfetParameters(
            threshold_voltage=vth,
            gain=gain,
            alpha=tech.alpha,
            channel_length_modulation=tech.channel_length_modulation,
            subthreshold_swing=swing,
            leak_current=leak,
            thermal_voltage=tech.thermal_voltage(conditions.temperature),
        )

    # ------------------------------------------------------------------
    # I-V characteristics
    # ------------------------------------------------------------------
    def drain_current(
        self,
        vgs: ArrayLike,
        vds: ArrayLike,
        conditions: OperatingConditions,
    ) -> np.ndarray:
        """Drain current for gate-source voltage ``vgs`` and drain-source ``vds``.

        The model pieces together three operating regions and keeps the
        transitions continuous:

        * sub-threshold (``vgs < vth``): exponential in the gate underdrive
          with a ``1 - exp(-vds / vt)`` drain saturation factor,
        * saturation (``vds >= vdsat``): ``K * (vgs - vth) ** alpha`` with
          channel-length modulation,
        * triode (``vds < vdsat``): the Sakurai-Newton quadratic blending
          ``Isat * (2 - vds/vdsat) * (vds/vdsat)``.

        All arguments broadcast; the return value is a NumPy array.
        """
        params = self.parameters(conditions)
        return drain_current_from_parameters(params, vgs, vds)

    def saturation_drain_voltage(
        self, vgs: ArrayLike, conditions: OperatingConditions
    ) -> np.ndarray:
        """Drain saturation voltage ``V_dsat`` for the given gate voltage."""
        params = self.parameters(conditions)
        overdrive = np.maximum(np.asarray(vgs, dtype=float) - params.threshold_voltage, 0.0)
        return saturation_voltage(overdrive, params.alpha)


def saturation_voltage(overdrive: ArrayLike, alpha: float) -> np.ndarray:
    """Alpha-power-law drain saturation voltage.

    The Sakurai-Newton model uses ``V_dsat = K_v * V_od ** (alpha / 2)``.
    ``K_v`` is chosen as 1.0 V^(1 - alpha/2) so the square-law limit
    (``alpha == 2``) reduces to the classical ``V_dsat == V_od``.
    """
    overdrive = np.maximum(np.asarray(overdrive, dtype=float), 0.0)
    return overdrive ** (alpha / 2.0)


def drain_current_from_parameters(
    params: MosfetParameters,
    vgs: ArrayLike,
    vds: ArrayLike,
) -> np.ndarray:
    """Evaluate the alpha-power-law I-V equation for a fixed parameter set.

    Split out of :class:`NmosDevice` so the transient solver can hoist the
    (scalar) parameter extraction out of its inner integration loop.
    """
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    vgs, vds = np.broadcast_arrays(vgs, vds)

    vds_clipped = np.maximum(vds, 0.0)
    overdrive = vgs - params.threshold_voltage

    # --- sub-threshold component -------------------------------------
    n_factor = params.subthreshold_swing / (np.log(10.0) * params.thermal_voltage)
    sub_exponent = np.clip(
        np.minimum(overdrive, 0.0) / (n_factor * params.thermal_voltage), -80.0, 0.0
    )
    i_sub = (
        params.leak_current
        * np.exp(sub_exponent)
        * (1.0 - np.exp(-vds_clipped / params.thermal_voltage))
    )

    # --- strong-inversion component ----------------------------------
    overdrive_pos = np.maximum(overdrive, 0.0)
    vdsat = saturation_voltage(overdrive_pos, params.alpha)
    i_sat = (
        params.gain
        * overdrive_pos**params.alpha
        * (1.0 + params.channel_length_modulation * vds_clipped)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(vdsat > 0.0, np.minimum(vds_clipped / np.maximum(vdsat, 1e-12), 1.0), 0.0)
    i_triode = i_sat * (2.0 - ratio) * ratio
    i_strong = np.where(vds_clipped >= vdsat, i_sat, i_triode)

    current = np.where(overdrive > 0.0, i_strong + i_sub, i_sub)
    return np.maximum(current, 0.0)


def access_device(technology: TechnologyCard, **mismatch: float) -> NmosDevice:
    """Construct the 6T access transistor (M5/M6) for a technology card."""
    return NmosDevice(
        technology,
        width=technology.access_width,
        length=technology.access_length,
        name="M_access",
        **mismatch,
    )


def pulldown_device(technology: TechnologyCard, **mismatch: float) -> NmosDevice:
    """Construct the 6T pull-down transistor (M2/M4) for a technology card."""
    return NmosDevice(
        technology,
        width=technology.pulldown_width,
        length=technology.pulldown_length,
        name="M_pulldown",
        **mismatch,
    )


def corner_description(corner: ProcessCorner) -> str:
    """Human-readable description of a process corner for reports."""
    if corner is ProcessCorner.FAST:
        return "fast (low Vth, high mobility)"
    if corner is ProcessCorner.SLOW:
        return "slow (high Vth, low mobility)"
    return "typical"
