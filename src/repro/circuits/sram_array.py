"""SRAM array, column and word abstractions.

Paper Fig. 2 organises the 6T cells into an array of N words of four cells;
the in-memory multiplier of Section V stores one 4-bit operand per word and
discharges the four bit-line-bars with bit-weighted timing.  The classes
below model that organisation: a :class:`SramColumn` is one BL/BLB pair with
its attached cells, a :class:`SramWord` is a horizontal slice of cells
sharing a word line, and :class:`SramArray` wires the two views together and
provides the digital read/write operations plus access to the per-column
discharge behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.bitline import BitLine
from repro.circuits.conditions import OperatingConditions
from repro.circuits.mismatch import MismatchParameters, MismatchSample, MismatchSampler
from repro.circuits.sram_cell import CellState, SramCell
from repro.circuits.technology import TechnologyCard
from repro.circuits.transient import DischargeResult, TransientSolver


class SramColumn:
    """One column: a BL/BLB pair shared by every cell of the column.

    Parameters
    ----------
    technology:
        Technology card.
    cells:
        The cells attached to this column, ordered by row.
    index:
        Column index inside the array (bit position of the stored words).
    """

    def __init__(
        self,
        technology: TechnologyCard,
        cells: Sequence[SramCell],
        index: int = 0,
    ) -> None:
        if not cells:
            raise ValueError("a column needs at least one cell")
        self.technology = technology
        self.cells = list(cells)
        self.index = index
        self.bitline = BitLine.from_technology(
            technology, rows=len(cells), name=f"BL{index}"
        )
        self.bitline_bar = BitLine.from_technology(
            technology, rows=len(cells), name=f"BLB{index}"
        )
        self._solver = TransientSolver(technology, bitline=self.bitline_bar)

    @property
    def rows(self) -> int:
        """Number of cells in the column."""
        return len(self.cells)

    def cell(self, row: int) -> SramCell:
        """Return the cell at ``row``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range (have {self.rows})")
        return self.cells[row]

    def simulate_discharge(
        self,
        row: int,
        wordline_voltage: float,
        duration: float,
        conditions: Optional[OperatingConditions] = None,
    ) -> DischargeResult:
        """Simulate the BLB discharge when activating one row of the column."""
        cell = self.cell(row)
        return self._solver.simulate_discharge(
            wordline_voltage=wordline_voltage,
            duration=duration,
            conditions=conditions,
            stored_bit=cell.stored_bit,
            mismatch=cell.mismatch,
        )


class SramWord:
    """One word: the cells of a single row across every column."""

    def __init__(self, cells: Sequence[SramCell], row: int = 0) -> None:
        if not cells:
            raise ValueError("a word needs at least one cell")
        self.cells = list(cells)
        self.row = row

    @property
    def width(self) -> int:
        """Word width in bits."""
        return len(self.cells)

    def write(self, value: int) -> None:
        """Store an unsigned integer, LSB in column 0."""
        if value < 0 or value >= (1 << self.width):
            raise ValueError(
                f"value {value} does not fit in a {self.width}-bit word"
            )
        for bit_index, cell in enumerate(self.cells):
            cell.write((value >> bit_index) & 1)

    def read(self) -> int:
        """Read back the stored unsigned integer."""
        value = 0
        for bit_index, cell in enumerate(self.cells):
            value |= cell.read() << bit_index
        return value

    def bits(self) -> List[int]:
        """Stored bits, LSB first."""
        return [cell.read() for cell in self.cells]


class SramArray:
    """A words-by-bits array of 6T cells with optional mismatch.

    Parameters
    ----------
    technology:
        Technology card.
    words:
        Number of rows (words).
    bits_per_word:
        Number of columns (bits per word); the paper's multiplier uses 4.
    mismatch_seed:
        Seed for the Pelgrom sampler.  ``None`` disables mismatch entirely
        (all cells perfectly matched), which the tests use for exact
        digital-behaviour checks.
    """

    def __init__(
        self,
        technology: TechnologyCard,
        words: int = 64,
        bits_per_word: int = 4,
        mismatch_seed: Optional[int] = None,
    ) -> None:
        if words <= 0 or bits_per_word <= 0:
            raise ValueError("array dimensions must be positive")
        self.technology = technology
        self.words = words
        self.bits_per_word = bits_per_word

        if mismatch_seed is None:
            samples = [
                [MismatchSample.nominal() for _ in range(bits_per_word)]
                for _ in range(words)
            ]
        else:
            sampler = MismatchSampler(
                MismatchParameters.from_technology(technology), seed=mismatch_seed
            )
            samples = [
                [sampler.sample() for _ in range(bits_per_word)] for _ in range(words)
            ]

        self._cells: List[List[SramCell]] = [
            [
                SramCell(technology, CellState.ZERO, samples[row][col])
                for col in range(bits_per_word)
            ]
            for row in range(words)
        ]
        self._columns = [
            SramColumn(
                technology,
                [self._cells[row][col] for row in range(words)],
                index=col,
            )
            for col in range(bits_per_word)
        ]

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------
    def cell(self, row: int, column: int) -> SramCell:
        """Return the cell at ``(row, column)``."""
        if not 0 <= row < self.words:
            raise IndexError(f"row {row} out of range (have {self.words})")
        if not 0 <= column < self.bits_per_word:
            raise IndexError(
                f"column {column} out of range (have {self.bits_per_word})"
            )
        return self._cells[row][column]

    def word(self, row: int) -> SramWord:
        """Return the word (row) view at ``row``."""
        if not 0 <= row < self.words:
            raise IndexError(f"row {row} out of range (have {self.words})")
        return SramWord(self._cells[row], row=row)

    def column(self, index: int) -> SramColumn:
        """Return the column view at bit position ``index``."""
        if not 0 <= index < self.bits_per_word:
            raise IndexError(
                f"column {index} out of range (have {self.bits_per_word})"
            )
        return self._columns[index]

    # ------------------------------------------------------------------
    # Digital operations
    # ------------------------------------------------------------------
    def write_word(self, row: int, value: int) -> None:
        """Write an unsigned integer into row ``row``."""
        self.word(row).write(value)

    def read_word(self, row: int) -> int:
        """Read the unsigned integer stored in row ``row``."""
        return self.word(row).read()

    def write_all(self, values: Sequence[int]) -> None:
        """Write one value per row; ``values`` must cover every row."""
        if len(values) != self.words:
            raise ValueError(
                f"expected {self.words} values, got {len(values)}"
            )
        for row, value in enumerate(values):
            self.write_word(row, value)

    def dump(self) -> np.ndarray:
        """Return the stored contents as an integer array (one entry per row)."""
        return np.array([self.read_word(row) for row in range(self.words)], dtype=int)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SramArray(words={self.words}, bits_per_word={self.bits_per_word}, "
            f"technology={self.technology.name!r})"
        )
