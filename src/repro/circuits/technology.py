"""Technology card for the 65 nm-class reference process.

The OPTIMA paper fits its behavioural models against transient simulations of
a TSMC 65 nm CMOS technology.  That PDK is proprietary, so this module
defines an openly parameterised technology card whose headline numbers
(nominal supply, threshold voltage, bit-line capacitance, transistor
dimensions, mismatch coefficients) are representative of a 65 nm low-power
process.  Every downstream experiment reads its device and parasitic values
from a :class:`TechnologyCard`, so exploring a different process node only
requires constructing a different card.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict


class ProcessCorner(enum.Enum):
    """Global process corner of the NMOS devices in the discharge path.

    Only the NMOS corner matters for the read/discharge behaviour of the 6T
    cell (the discharge path is two stacked NMOS transistors), which is why
    the corner enum is single-axis rather than the usual two-letter NMOS/PMOS
    notation.
    """

    FAST = "fast"
    TYPICAL = "typical"
    SLOW = "slow"

    @property
    def threshold_shift(self) -> float:
        """Systematic threshold-voltage shift of this corner in volts."""
        return _CORNER_VTH_SHIFT[self]

    @property
    def gain_factor(self) -> float:
        """Multiplicative shift of the transconductance parameter."""
        return _CORNER_GAIN_FACTOR[self]


_CORNER_VTH_SHIFT: Dict[ProcessCorner, float] = {
    ProcessCorner.FAST: -0.040,
    ProcessCorner.TYPICAL: 0.0,
    ProcessCorner.SLOW: +0.040,
}

_CORNER_GAIN_FACTOR: Dict[ProcessCorner, float] = {
    ProcessCorner.FAST: 1.12,
    ProcessCorner.TYPICAL: 1.0,
    ProcessCorner.SLOW: 0.88,
}


@dataclasses.dataclass(frozen=True)
class TechnologyCard:
    """Process, device and parasitic parameters of the reference technology.

    All values are in SI units (volts, amperes, seconds, farads, metres,
    kelvin) unless the attribute name says otherwise.

    Attributes
    ----------
    name:
        Human-readable identifier of the card.
    vdd_nominal:
        Nominal supply voltage.
    vth_nominal:
        Nominal NMOS threshold voltage at the nominal temperature.
    alpha:
        Velocity-saturation exponent of the alpha-power-law MOSFET model.
        ``alpha == 2`` recovers the long-channel square law; short-channel
        65 nm devices sit around 1.2-1.4.
    k_prime:
        Process transconductance ``mu_eff * C_ox`` in A/V^alpha per square
        (i.e. for W == L).  Device currents scale with ``W / L``.
    channel_length_modulation:
        Early-effect coefficient ``lambda`` in 1/V.
    subthreshold_swing:
        Sub-threshold swing in V/decade at the nominal temperature.
    subthreshold_leak_current:
        Drain current of a square device at ``V_GS == V_th`` (the edge of
        conduction), used to anchor the sub-threshold exponential.
    vth_temperature_coefficient:
        dVth/dT in V/K (negative: the threshold drops when heated).
    mobility_temperature_exponent:
        Exponent of the ``(T / T_nom) ** -x`` mobility degradation law.
    temperature_nominal:
        Nominal junction temperature in kelvin.
    access_width, access_length:
        Drawn dimensions of the 6T access transistors (M5/M6) in metres.
    pulldown_width, pulldown_length:
        Drawn dimensions of the pull-down transistors (M2/M4).
    pullup_width, pullup_length:
        Drawn dimensions of the PMOS pull-ups (M1/M3); only used for leakage
        and write-energy estimates.
    bitline_capacitance:
        Total bit-line capacitance seen by one column (wire + drain
        junctions of all attached cells).
    wordline_capacitance:
        Word-line capacitance seen by the DAC / WL driver for one row.
    cell_internal_capacitance:
        Capacitance of the internal storage nodes Q / Q-bar.
    sampling_capacitance:
        Capacitance of the switched sampling capacitor used by the
        multiplier read-out.
    pelgrom_avt:
        Pelgrom area coefficient for threshold mismatch in V*m.
    pelgrom_abeta:
        Pelgrom area coefficient for current-factor mismatch (relative,
        dimension m).
    """

    name: str = "generic-65nm"
    vdd_nominal: float = 1.0
    vth_nominal: float = 0.35
    alpha: float = 1.3
    k_prime: float = 2.0e-5
    channel_length_modulation: float = 0.08
    subthreshold_swing: float = 0.090
    subthreshold_leak_current: float = 2.0e-7
    vth_temperature_coefficient: float = -8.0e-4
    mobility_temperature_exponent: float = 1.5
    temperature_nominal: float = 300.15
    access_width: float = 120e-9
    access_length: float = 65e-9
    pulldown_width: float = 180e-9
    pulldown_length: float = 65e-9
    pullup_width: float = 90e-9
    pullup_length: float = 65e-9
    bitline_capacitance: float = 50e-15
    wordline_capacitance: float = 30e-15
    cell_internal_capacitance: float = 0.5e-15
    sampling_capacitance: float = 8e-15
    pelgrom_avt: float = 3.5e-9
    pelgrom_abeta: float = 1.0e-8

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0.0:
            raise ValueError("vdd_nominal must be positive")
        if not 0.0 < self.vth_nominal < self.vdd_nominal:
            raise ValueError("vth_nominal must lie between 0 and vdd_nominal")
        if self.alpha < 1.0 or self.alpha > 2.0:
            raise ValueError("alpha must lie in [1, 2]")
        if self.k_prime <= 0.0:
            raise ValueError("k_prime must be positive")
        if self.bitline_capacitance <= 0.0:
            raise ValueError("bitline_capacitance must be positive")
        if self.subthreshold_swing <= 0.0:
            raise ValueError("subthreshold_swing must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def thermal_voltage(self, temperature: float) -> float:
        """Thermal voltage kT/q at ``temperature`` (kelvin)."""
        boltzmann_over_charge = 8.617333262e-5
        return boltzmann_over_charge * temperature

    def threshold_voltage(
        self,
        temperature: float,
        corner: ProcessCorner = ProcessCorner.TYPICAL,
    ) -> float:
        """Threshold voltage including corner shift and temperature drift."""
        delta_t = temperature - self.temperature_nominal
        return (
            self.vth_nominal
            + corner.threshold_shift
            + self.vth_temperature_coefficient * delta_t
        )

    def mobility_factor(
        self,
        temperature: float,
        corner: ProcessCorner = ProcessCorner.TYPICAL,
    ) -> float:
        """Relative mobility degradation factor vs the nominal temperature."""
        ratio = temperature / self.temperature_nominal
        return corner.gain_factor * ratio ** (-self.mobility_temperature_exponent)

    def device_gain(
        self,
        width: float,
        length: float,
        temperature: float,
        corner: ProcessCorner = ProcessCorner.TYPICAL,
    ) -> float:
        """Transconductance parameter of a ``width`` x ``length`` device."""
        if width <= 0.0 or length <= 0.0:
            raise ValueError("device dimensions must be positive")
        return self.k_prime * (width / length) * self.mobility_factor(temperature, corner)

    def mismatch_sigma_vth(self, width: float, length: float) -> float:
        """Pelgrom threshold-voltage mismatch sigma for one device."""
        if width <= 0.0 or length <= 0.0:
            raise ValueError("device dimensions must be positive")
        return self.pelgrom_avt / math.sqrt(width * length)

    def mismatch_sigma_beta(self, width: float, length: float) -> float:
        """Pelgrom relative current-factor mismatch sigma for one device."""
        if width <= 0.0 or length <= 0.0:
            raise ValueError("device dimensions must be positive")
        return self.pelgrom_abeta / math.sqrt(width * length)

    def scaled(self, **overrides: float) -> "TechnologyCard":
        """Return a copy of the card with selected fields overridden."""
        return dataclasses.replace(self, **overrides)


def tsmc65_like() -> TechnologyCard:
    """Return the default 65 nm-class technology card used by the paper repro.

    The values are not taken from any proprietary PDK; they are chosen so
    that the reference simulator produces discharge swings of a few hundred
    millivolts within roughly two nanoseconds and per-operation energies of a
    few tens of femtojoules, matching the operating regime reported in the
    OPTIMA paper.
    """
    return TechnologyCard(name="tsmc65-like")
