"""Transient bit-line discharge solver (the Cadence Virtuoso stand-in).

The solver integrates the bit-line node equation

    C_BL * dV_BLB/dt = -I_cell(V_BLB, V_WL; PVT, mismatch)

with a fixed-step fourth-order Runge-Kutta scheme.  The cell current comes
from the series-stack solve in :mod:`repro.circuits.sram_cell`, so every
non-ideality the paper discusses in Section III (sub-threshold conduction,
alpha-power nonlinearity, saturation-to-triode transition, PVT and mismatch
dependence) shows up in the produced waveforms.

Because the word-line voltage is constant during one discharge window, the
node equation is autonomous in the bit-line voltage.  The solver therefore
tabulates the stack current over a dense bit-line-voltage grid once per run
(one vectorised series-stack solve) and interpolates that table inside the
RK4 loop.  This keeps the reference simulator accurate while making the
thousand-sample Monte-Carlo sweeps of the characterisation flow practical.
It is still orders of magnitude slower than evaluating the fitted OPTIMA
polynomials, which is exactly the comparison behind the paper's speed-up
claim (see :mod:`repro.core.speedup`).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

from repro.circuits.bitline import BitLine
from repro.circuits.conditions import OperatingConditions
from repro.circuits.mismatch import MismatchArrays, MismatchSample
from repro.circuits.mosfet import NmosDevice
from repro.circuits.sram_cell import CellState, DischargeStack, SramCell
from repro.circuits.technology import TechnologyCard
from repro.circuits.waveform import Waveform

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass
class DischargeResult:
    """Outcome of one transient discharge simulation.

    Attributes
    ----------
    times:
        Simulation time grid in seconds (shared by all traces).
    voltages:
        Bit-line voltage traces; shape ``(..., len(times))`` where the
        leading dimensions follow the broadcast shape of the word-line
        voltage / mismatch inputs.
    conditions:
        PVT conditions of the run.
    wordline_voltage:
        The word-line voltage(s) that were applied.
    """

    times: np.ndarray
    voltages: np.ndarray
    conditions: OperatingConditions
    wordline_voltage: np.ndarray

    @property
    def final_voltage(self) -> np.ndarray:
        """Bit-line voltage at the end of the simulated window."""
        return self.voltages[..., -1]

    def voltage_at(self, time: float) -> np.ndarray:
        """Linearly interpolated bit-line voltage at ``time`` seconds."""
        if time < self.times[0] or time > self.times[-1]:
            raise ValueError(
                f"time {time:.3e} s outside simulated span "
                f"[{self.times[0]:.3e}, {self.times[-1]:.3e}] s"
            )
        flat = self.voltages.reshape(-1, self.times.shape[0])
        sampled = np.array([np.interp(time, self.times, row) for row in flat])
        if self.voltages.ndim == 1:
            return sampled[0]
        return sampled.reshape(self.voltages.shape[:-1])

    def delta_at(self, time: float) -> np.ndarray:
        """Discharge ``VDD - V_BLB(time)``."""
        return self.conditions.vdd - self.voltage_at(time)

    def waveform(self, index: int = 0) -> Waveform:
        """Extract one trace as a :class:`Waveform`."""
        flat = self.voltages.reshape(-1, self.times.shape[0])
        if not 0 <= index < flat.shape[0]:
            raise IndexError(f"trace index {index} out of range (have {flat.shape[0]})")
        return Waveform(times=self.times, values=flat[index], name="v(blb)")

    @property
    def trace_count(self) -> int:
        """Number of independent traces contained in the result."""
        if self.voltages.ndim == 1:
            return 1
        return int(np.prod(self.voltages.shape[:-1]))


class TransientSolver:
    """Fixed-step RK4 integrator of the bit-line discharge.

    Parameters
    ----------
    technology:
        Technology card (geometries, parasitics).
    bitline:
        Bit-line to discharge; defaults to the 64-row column of the card.
    time_step:
        Integration step in seconds.  The default (10 ps) resolves the
        nanosecond-scale discharge dynamics with RK4 error far below the
        millivolt scale that matters for the fitting experiments.
    voltage_grid_points:
        Resolution of the tabulated current-vs-voltage characteristic.
    """

    def __init__(
        self,
        technology: TechnologyCard,
        bitline: Optional[BitLine] = None,
        time_step: float = 10e-12,
        voltage_grid_points: int = 129,
    ) -> None:
        if time_step <= 0.0:
            raise ValueError("time_step must be positive")
        if voltage_grid_points < 16:
            raise ValueError("voltage_grid_points must be at least 16")
        self.technology = technology
        self.bitline = bitline or BitLine.from_technology(technology)
        self.time_step = time_step
        self.voltage_grid_points = voltage_grid_points

    # ------------------------------------------------------------------
    # Stack construction helpers
    # ------------------------------------------------------------------
    def _build_stack(
        self,
        conditions: OperatingConditions,
        mismatch: Union[MismatchSample, MismatchArrays, None],
    ) -> DischargeStack:
        """Build the discharge stack, possibly with vectorised mismatch."""
        if mismatch is None or isinstance(mismatch, MismatchSample):
            cell = SramCell(self.technology, CellState.ONE, mismatch)
            return cell.discharge_stack(conditions)

        # Vectorised Monte-Carlo: the threshold and gain offsets become
        # arrays inside the parameter set; the MOSFET equations broadcast.
        base_cell = SramCell(self.technology, CellState.ONE)
        stack = base_cell.discharge_stack(conditions)
        access = dataclasses.replace(
            stack.access,
            threshold_voltage=stack.access.threshold_voltage + mismatch.vth_access,
            gain=stack.access.gain * (1.0 + mismatch.beta_access),
            leak_current=stack.access.leak_current * (1.0 + mismatch.beta_access),
        )
        pulldown = dataclasses.replace(
            stack.pulldown,
            threshold_voltage=stack.pulldown.threshold_voltage + mismatch.vth_pulldown,
            gain=stack.pulldown.gain * (1.0 + mismatch.beta_pulldown),
            leak_current=stack.pulldown.leak_current * (1.0 + mismatch.beta_pulldown),
        )
        return DischargeStack(access=access, pulldown=pulldown, vdd=conditions.vdd)

    @staticmethod
    def _expand_stack_for_grid(stack: DischargeStack) -> DischargeStack:
        """Add a trailing axis to any vectorised stack parameter.

        The current table appends a voltage-grid axis to the trace shape, so
        per-trace parameter arrays (from Monte-Carlo mismatch) need a
        trailing singleton dimension to broadcast against it.
        """

        def expand(params):
            updates = {}
            for field in dataclasses.fields(params):
                value = getattr(params, field.name)
                if isinstance(value, np.ndarray) and value.ndim > 0:
                    updates[field.name] = value[..., np.newaxis]
            if not updates:
                return params
            return dataclasses.replace(params, **updates)

        return DischargeStack(
            access=expand(stack.access),
            pulldown=expand(stack.pulldown),
            vdd=stack.vdd,
        )

    def _current_table(
        self,
        stack: DischargeStack,
        wordline_voltage: np.ndarray,
        stored_bit: int,
        start_voltage: float,
        shape: tuple,
    ) -> tuple:
        """Tabulate the discharge current over a bit-line voltage grid.

        Returns ``(v_grid, currents)`` where ``v_grid`` descends from the
        pre-charge voltage to 0 V and ``currents`` has shape
        ``shape + (grid,)``.
        """
        grid = self.voltage_grid_points
        v_grid = np.linspace(start_voltage, 0.0, grid)
        grid_stack = self._expand_stack_for_grid(stack)
        if stored_bit == 0:
            table = grid_stack.leakage_current(v_grid)
            table = np.broadcast_to(table, shape + (grid,)).copy()
        else:
            v_wl = np.broadcast_to(wordline_voltage, shape)[..., np.newaxis]
            v_bl = np.broadcast_to(v_grid, shape + (grid,))
            table = grid_stack.current(v_bl, v_wl)
        return v_grid, np.maximum(table, 0.0)

    @staticmethod
    def _interpolate_current(
        voltage: np.ndarray,
        start_voltage: float,
        grid_step: float,
        table: np.ndarray,
    ) -> np.ndarray:
        """Linearly interpolate the tabulated current at ``voltage``.

        The grid is uniform and descending, so the cell index is a direct
        computation rather than a search; this is the hot path of the RK4
        loop and stays fully vectorised across traces.
        """
        grid_points = table.shape[-1]
        position = (start_voltage - voltage) / grid_step
        position = np.clip(position, 0.0, grid_points - 1.000001)
        index = position.astype(int)
        fraction = position - index
        lower = np.take_along_axis(table, index[..., np.newaxis], axis=-1)[..., 0]
        upper = np.take_along_axis(
            table, np.minimum(index + 1, grid_points - 1)[..., np.newaxis], axis=-1
        )[..., 0]
        return lower + fraction * (upper - lower)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def simulate_discharge(
        self,
        wordline_voltage: ArrayLike,
        duration: float,
        conditions: Optional[OperatingConditions] = None,
        stored_bit: int = 1,
        mismatch: Union[MismatchSample, MismatchArrays, None] = None,
        initial_voltage: Optional[float] = None,
    ) -> DischargeResult:
        """Integrate the bit-line voltage for ``duration`` seconds.

        Parameters
        ----------
        wordline_voltage:
            Scalar or array of word-line voltages; the result broadcasts
            with the mismatch arrays, producing one trace per combination.
        duration:
            Simulated time window in seconds.
        conditions:
            PVT operating point; nominal conditions when omitted.
        stored_bit:
            The bit stored in the cell.  A stored '0' produces (almost) no
            discharge, reproducing the data dependence of paper Eq. 1.
        mismatch:
            A single mismatch sample, vectorised Monte-Carlo arrays or
            ``None`` for a matched cell.
        initial_voltage:
            Pre-charge voltage of the bit-line; defaults to VDD.
        """
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        conditions = conditions or OperatingConditions.nominal(self.technology)
        if stored_bit not in (0, 1):
            raise ValueError("stored_bit must be 0 or 1")

        v_wl = np.asarray(wordline_voltage, dtype=float)
        if isinstance(mismatch, MismatchArrays):
            sample_shape = (len(mismatch),)
        else:
            sample_shape = ()
        shape = np.broadcast_shapes(v_wl.shape, sample_shape)

        steps = max(int(np.ceil(duration / self.time_step)), 2)
        times = np.linspace(0.0, duration, steps + 1)
        dt = times[1] - times[0]

        start_voltage = conditions.vdd if initial_voltage is None else float(initial_voltage)
        if start_voltage <= 0.0:
            raise ValueError("initial_voltage must be positive")

        stack = self._build_stack(conditions, mismatch)
        v_grid, table = self._current_table(
            stack, v_wl, stored_bit, start_voltage, shape
        )
        grid_step = float(v_grid[0] - v_grid[1])
        capacitance = self.bitline.capacitance

        voltage = np.full(shape, start_voltage)
        traces = np.empty(shape + (steps + 1,), dtype=float)
        traces[..., 0] = voltage

        def derivative(v: np.ndarray) -> np.ndarray:
            current = self._interpolate_current(v, start_voltage, grid_step, table)
            return -current / capacitance

        for step in range(1, steps + 1):
            k1 = derivative(voltage)
            k2 = derivative(np.maximum(voltage + 0.5 * dt * k1, 0.0))
            k3 = derivative(np.maximum(voltage + 0.5 * dt * k2, 0.0))
            k4 = derivative(np.maximum(voltage + dt * k3, 0.0))
            voltage = voltage + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            voltage = np.maximum(voltage, 0.0)
            traces[..., step] = voltage

        return DischargeResult(
            times=times,
            voltages=traces if shape else traces.reshape(steps + 1),
            conditions=conditions,
            wordline_voltage=np.broadcast_to(v_wl, shape).copy() if shape else v_wl.copy(),
        )

    # ------------------------------------------------------------------
    # Convenience measurements
    # ------------------------------------------------------------------
    def discharge_at(
        self,
        wordline_voltage: ArrayLike,
        sampling_time: float,
        conditions: Optional[OperatingConditions] = None,
        stored_bit: int = 1,
        mismatch: Union[MismatchSample, MismatchArrays, None] = None,
    ) -> np.ndarray:
        """Discharge ``VDD - V_BLB`` at the ADC sampling instant.

        This is the quantity the OPTIMA models predict; characterisation
        sweeps call it directly instead of keeping full waveforms around.
        """
        result = self.simulate_discharge(
            wordline_voltage=wordline_voltage,
            duration=sampling_time,
            conditions=conditions,
            stored_bit=stored_bit,
            mismatch=mismatch,
        )
        return np.asarray(result.conditions.vdd - result.final_voltage)

    def saturation_time(
        self,
        wordline_voltage: float,
        conditions: Optional[OperatingConditions] = None,
        horizon: float = 4e-9,
    ) -> Optional[float]:
        """Time at which the access device leaves saturation (paper Eq. 2)."""
        conditions = conditions or OperatingConditions.nominal(self.technology)
        access = NmosDevice(
            self.technology,
            width=self.technology.access_width,
            length=self.technology.access_length,
        )
        limit = wordline_voltage - access.parameters(conditions).threshold_voltage
        if limit <= 0.0:
            return None
        result = self.simulate_discharge(wordline_voltage, horizon, conditions)
        return result.waveform().crossing_time(limit)
