"""Transistor-level reference substrate for discharge-based in-SRAM computing.

This package is the stand-in for the Cadence Virtuoso + TSMC 65 nm flow used
by the OPTIMA paper.  It provides:

* a 65 nm-class technology card (:mod:`repro.circuits.technology`),
* PVT operating conditions (:mod:`repro.circuits.conditions`),
* an alpha-power-law MOSFET model with sub-threshold conduction
  (:mod:`repro.circuits.mosfet`),
* the 6T SRAM cell and array abstractions (:mod:`repro.circuits.sram_cell`,
  :mod:`repro.circuits.sram_array`),
* bit-line parasitics (:mod:`repro.circuits.bitline`),
* Pelgrom-style mismatch sampling (:mod:`repro.circuits.mismatch`),
* a transient bit-line discharge solver (:mod:`repro.circuits.transient`),
* waveform containers and measurement helpers
  (:mod:`repro.circuits.waveform`),
* energy accounting of the pre-charge / write / discharge phases
  (:mod:`repro.circuits.energy`).

The numerical values are calibrated to publicly known 65 nm-class numbers so
that discharge swings, time constants, and energies land in the ranges the
paper reports, but the purpose of this package is to be a *golden reference*
against which the fast OPTIMA behavioural models are fitted and validated.
"""

from repro.circuits.conditions import OperatingConditions, PVTCorner
from repro.circuits.technology import ProcessCorner, TechnologyCard, tsmc65_like
from repro.circuits.mosfet import MosfetParameters, NmosDevice
from repro.circuits.bitline import BitLine
from repro.circuits.mismatch import MismatchParameters, MismatchSample, MismatchSampler
from repro.circuits.sram_cell import CellState, SramCell
from repro.circuits.sram_array import SramArray, SramColumn, SramWord
from repro.circuits.transient import DischargeResult, TransientSolver
from repro.circuits.waveform import Waveform
from repro.circuits.energy import EnergyBreakdown, EnergyModelReference

__all__ = [
    "BitLine",
    "CellState",
    "DischargeResult",
    "EnergyBreakdown",
    "EnergyModelReference",
    "MismatchParameters",
    "MismatchSample",
    "MismatchSampler",
    "MosfetParameters",
    "NmosDevice",
    "OperatingConditions",
    "ProcessCorner",
    "PVTCorner",
    "SramArray",
    "SramCell",
    "SramColumn",
    "SramWord",
    "TechnologyCard",
    "TransientSolver",
    "Waveform",
    "tsmc65_like",
]
