"""PVT operating-condition containers.

Every reference-simulator run is parameterised by a supply voltage, a
junction temperature and a global process corner.  The OPTIMA behavioural
models are fitted over sweeps of these conditions (paper Section IV) and the
design-space exploration and robustness experiments (paper Sections V/VI)
re-use the same containers, so they live in one small module.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Sequence

from repro.circuits.technology import ProcessCorner, TechnologyCard


def celsius_to_kelvin(temperature_celsius: float) -> float:
    """Convert degrees Celsius to kelvin."""
    return temperature_celsius + 273.15


def kelvin_to_celsius(temperature_kelvin: float) -> float:
    """Convert kelvin to degrees Celsius."""
    return temperature_kelvin - 273.15


@dataclasses.dataclass(frozen=True)
class OperatingConditions:
    """One PVT operating point of the circuit.

    Attributes
    ----------
    vdd:
        Supply voltage in volts.
    temperature:
        Junction temperature in kelvin.
    corner:
        Global process corner.
    """

    vdd: float = 1.0
    temperature: float = 300.15
    corner: ProcessCorner = ProcessCorner.TYPICAL

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ValueError("vdd must be positive")
        if self.temperature <= 0.0:
            raise ValueError("temperature must be positive (kelvin)")

    @classmethod
    def nominal(cls, technology: TechnologyCard) -> "OperatingConditions":
        """Nominal conditions of a technology card (typical corner)."""
        return cls(
            vdd=technology.vdd_nominal,
            temperature=technology.temperature_nominal,
            corner=ProcessCorner.TYPICAL,
        )

    @property
    def temperature_celsius(self) -> float:
        """Junction temperature in degrees Celsius."""
        return kelvin_to_celsius(self.temperature)

    def with_vdd(self, vdd: float) -> "OperatingConditions":
        """Copy of the conditions with a different supply voltage."""
        return dataclasses.replace(self, vdd=vdd)

    def with_temperature(self, temperature: float) -> "OperatingConditions":
        """Copy of the conditions with a different temperature (kelvin)."""
        return dataclasses.replace(self, temperature=temperature)

    def with_temperature_celsius(self, temperature_celsius: float) -> "OperatingConditions":
        """Copy of the conditions with a different temperature (Celsius)."""
        return dataclasses.replace(
            self, temperature=celsius_to_kelvin(temperature_celsius)
        )

    def with_corner(self, corner: ProcessCorner) -> "OperatingConditions":
        """Copy of the conditions with a different process corner."""
        return dataclasses.replace(self, corner=corner)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"VDD={self.vdd:.3f} V, T={self.temperature_celsius:.1f} degC, "
            f"corner={self.corner.value}"
        )


@dataclasses.dataclass(frozen=True)
class PVTCorner:
    """A named PVT corner used for multi-corner characterisation sweeps."""

    name: str
    conditions: OperatingConditions

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return f"{self.name}: {self.conditions.describe()}"


def standard_pvt_corners(technology: TechnologyCard) -> List[PVTCorner]:
    """Return the canonical multi-corner characterisation set.

    The set spans the supply range +/-10 %, the industrial temperature range
    0..70 degC and the three global process corners, mirroring the
    multi-corner circuit simulations the paper describes in Section IV.
    """
    nominal = OperatingConditions.nominal(technology)
    corners: List[PVTCorner] = [PVTCorner("nominal", nominal)]
    for label, vdd_scale in (("low-vdd", 0.9), ("high-vdd", 1.1)):
        corners.append(
            PVTCorner(label, nominal.with_vdd(technology.vdd_nominal * vdd_scale))
        )
    for label, temp_c in (("cold", 0.0), ("hot", 70.0)):
        corners.append(PVTCorner(label, nominal.with_temperature_celsius(temp_c)))
    for process in (ProcessCorner.FAST, ProcessCorner.SLOW):
        corners.append(PVTCorner(process.value, nominal.with_corner(process)))
    return corners


def condition_grid(
    vdd_values: Sequence[float],
    temperatures: Sequence[float],
    corners: Iterable[ProcessCorner] = (ProcessCorner.TYPICAL,),
) -> Iterator[OperatingConditions]:
    """Yield the cartesian product of supply, temperature and corner values.

    Parameters
    ----------
    vdd_values:
        Supply voltages in volts.
    temperatures:
        Junction temperatures in kelvin.
    corners:
        Process corners to include.
    """
    for corner in corners:
        for vdd in vdd_values:
            for temperature in temperatures:
                yield OperatingConditions(
                    vdd=vdd, temperature=temperature, corner=corner
                )
