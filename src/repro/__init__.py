"""repro — reproduction of the OPTIMA in-SRAM computing modeling framework.

The package is organised in layers, bottom-up:

* :mod:`repro.circuits` — transistor-level reference substrate (the
  Cadence/SPICE stand-in): 6T SRAM cell, bit-line discharge ODE solver,
  PVT corners and Pelgrom mismatch.
* :mod:`repro.converters` — DAC / ADC / sampling-network periphery.
* :mod:`repro.core` — the OPTIMA contribution: polynomial behavioural
  models of the bit-line discharge and energy (paper Eq. 3-8), least-squares
  calibration, design-space exploration, PVT / Monte-Carlo analysis and
  speed-up measurement.
* :mod:`repro.eventsim` — event-driven simulation kernel hosting the fast
  behavioural models (the SystemVerilog stand-in).
* :mod:`repro.multiplier` — the 4-bit discharge-based in-SRAM multiplier
  case study (paper Section V).
* :mod:`repro.dnn` — NumPy DNN substrate with INT4 quantisation and
  in-memory-multiplier injection (paper Section VI).
* :mod:`repro.analysis` — one driver per paper table / figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
