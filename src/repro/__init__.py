"""repro — reproduction of the OPTIMA in-SRAM computing modeling framework.

The package is organised in layers, bottom-up:

* :mod:`repro.circuits` — transistor-level reference substrate (the
  Cadence/SPICE stand-in): 6T SRAM cell, bit-line discharge ODE solver,
  PVT corners and Pelgrom mismatch.
* :mod:`repro.converters` — DAC / ADC / sampling-network periphery.
* :mod:`repro.core` — the OPTIMA contribution: polynomial behavioural
  models of the bit-line discharge and energy (paper Eq. 3-8), least-squares
  calibration, design-space exploration, PVT / Monte-Carlo analysis and
  speed-up measurement.
* :mod:`repro.eventsim` — event-driven simulation kernel hosting the fast
  behavioural models (the SystemVerilog stand-in).
* :mod:`repro.multiplier` — the 4-bit discharge-based in-SRAM multiplier
  case study (paper Section V).
* :mod:`repro.dnn` — NumPy DNN substrate with INT4 quantisation and
  in-memory-multiplier injection (paper Section VI).
* :mod:`repro.analysis` — one driver per paper table / figure.
* :mod:`repro.runtime` — the sweep-execution engine every driver submits
  its work to: deterministic content-hashed jobs, pluggable executors
  (serial / process-pool parallel / vectorised batch, all bit-identical)
  and a content-addressed on-disk artifact cache that makes warm re-runs
  of characterisation, DSE and PVT sweeps near-instant.  Also home of the
  unified CLI: ``python -m repro run dse|pvt|characterize|tables`` (see
  ``python -m repro --help`` for the "Running sweeps at scale" options).
* :mod:`repro.service` — the long-lived serving front-end on top of the
  engine (``python -m repro serve``): an asyncio TCP server that accepts
  sweep requests from many concurrent clients over newline-delimited
  JSON, single-flights identical in-flight requests, streams per-job
  progress events, and shares one size-bounded (LRU-evicting) artifact
  cache across all of them.
* :mod:`repro.cluster` — the distributed worker backend behind the engine
  (``python -m repro worker`` / ``make_executor("distributed")``): a
  coordinator that shards content-hashed job chunks across long-lived
  worker processes (local or on other hosts) with registration,
  heartbeats, work stealing, retry-on-worker-death and chunk revocation
  for cancelled runs — still bit-identical to serial execution, merged in
  submission order.
* :mod:`repro.journal` — the persistent append-only job journal behind
  ``python -m repro serve --resume``: jobs a killed server (or its
  embedded cluster coordinator) left interrupted are re-enqueued on
  restart instead of dropped.
* :mod:`repro.obs` — the process-wide observability layer every tier
  reports into: a dependency-free metrics registry with a Prometheus
  exposition endpoint (``--metrics-port`` on ``run`` / ``serve`` /
  ``worker``), a structured event bus streamed live over the service's
  ``watch`` op, and cross-tier trace ids that follow each submit from
  the service through the engine, coordinator and workers (see
  ``docs/observability.md``).
* :mod:`repro.sched` — the multi-tenant scheduling vocabulary: job
  classes (``interactive`` / ``batch``), integer priorities and the
  priority queue the cluster coordinator dispatches from.  Sweeps are
  tagged at submit time (CLI flags, service ``sched`` field, gateway
  ``POST /v1/sweeps``); higher-priority work dispatches first and
  preempts lower-priority in-flight chunks by revoking their unstarted
  tails (see ``docs/scheduling.md``).
* :mod:`repro.lint` — project-aware static analysis (``python -m repro
  lint``): six pure-``ast`` rules enforcing the invariants the layers
  above promise — async tiers never block the event loop, solver paths
  stay deterministically seeded, pickle stays inside the cluster protocol
  shim, failures are counted rather than silently swallowed, metric names
  obey the registry rule, and wire-frame literals stay inside the
  protocol vocabulary (see ``docs/lint.md``).  It reads source files and
  imports none of the tiers it checks.

Engine, service and cluster form the three-tier execution architecture
(see ``docs/architecture.md``): the engine is the substrate, the service
serves many clients on top of it, and the cluster plugs in underneath as
just another executor — so every driver and every service workload gains
distributed execution without code changes.  A resilience layer spans all
three tiers: cooperative sweep cancellation (wire-level ``cancel``,
disconnect-implies-cancel, coordinator chunk revocation), per-client
backpressure with structured ``busy`` errors, and the persistent job
journal — ``docs/protocol.md`` specifies the wire behaviour and
``docs/operations.md`` the deployment / recovery runbook.

The layering rule: :mod:`repro.runtime` is generic infrastructure and
imports nothing from the modelling layers (the shared NDJSON framing both
network tiers speak lives in :mod:`repro.wire`); the modelling layers
submit their sweeps *through* it and default to a serial, cache-less
engine that reproduces the historical inline loops bit-for-bit.
:mod:`repro.service` and :mod:`repro.cluster` sit above: they import the
runtime unconditionally and the modelling layers only lazily, per
workload.
"""

__version__ = "1.10.0"

__all__ = ["__version__"]
