"""Input-space error, energy and sigma analysis of a multiplier configuration.

The design-space exploration of paper Section V scores every configuration by
two scalar metrics — the average multiplication error after quantisation
``eps_mul`` (in ADC LSBs) and the average energy per operation ``E_mul`` —
and the robustness analysis of Fig. 8 additionally looks at the average
result and its analogue standard deviation as a function of the expected
product.  This module computes all of those from one full 256-point
input-space evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier
from repro.multiplier.reference import ReferenceMultiplier

MultiplierLike = Union[InSramMultiplier, ReferenceMultiplier]


@dataclasses.dataclass
class InputSpaceAnalysis:
    """Full-input-space metrics of one multiplier configuration.

    Attributes
    ----------
    config:
        The analysed configuration.
    expected:
        Ideal products ``x * d`` over the input space, shape
        ``(codes, codes)``.
    results:
        Digital results produced by the multiplier, same shape.
    errors:
        Absolute errors ``|results - expected|`` in LSB units.
    analog_sigma:
        Mismatch sigma of the combined sampling node per input pair, in
        volts (zero for reference-backend analyses, which model mismatch by
        Monte-Carlo instead).
    energy_per_multiplication:
        Average energy of the multiply phase over the input space, joules.
    energy_per_operation:
        Average energy including the operand write, joules.
    adc_lsb:
        Analogue voltage corresponding to one *product* code step of the
        calibrated read-out (ADC LSB divided by the digital gain).
    """

    config: MultiplierConfig
    expected: np.ndarray
    results: np.ndarray
    errors: np.ndarray
    analog_sigma: np.ndarray
    energy_per_multiplication: float
    energy_per_operation: float
    adc_lsb: float

    # ------------------------------------------------------------------
    # Scalar summaries
    # ------------------------------------------------------------------
    @property
    def mean_error_lsb(self) -> float:
        """Average multiplication error (the paper's ``eps_mul``)."""
        return float(np.mean(self.errors))

    @property
    def max_error_lsb(self) -> float:
        """Worst-case multiplication error in LSB."""
        return float(np.max(self.errors))

    @property
    def rms_error_lsb(self) -> float:
        """Root-mean-square multiplication error in LSB."""
        return float(np.sqrt(np.mean(self.errors**2)))

    @property
    def mean_sigma_lsb(self) -> float:
        """Average analogue sigma expressed in ADC LSB units."""
        if self.adc_lsb <= 0.0:
            return 0.0
        return float(np.mean(self.analog_sigma) / self.adc_lsb)

    @property
    def sigma_at_max_discharge(self) -> float:
        """Analogue sigma (volts) at the maximum-product input pair."""
        return float(self.analog_sigma[-1, -1])

    @property
    def sigma_at_max_discharge_lsb(self) -> float:
        """Analogue sigma at the maximum product, in ADC LSB units."""
        if self.adc_lsb <= 0.0:
            return 0.0
        return self.sigma_at_max_discharge / self.adc_lsb

    @property
    def relative_sigma_at_max_discharge(self) -> float:
        """Sigma at the maximum product relative to the full-scale signal.

        This is the "least impacted by process variation" criterion used to
        select the paper's ``variation`` corner: the corner whose mismatch
        spread is smallest compared to its usable signal swing.
        """
        full_scale = float(self.adc_lsb * self.expected.max())
        if full_scale <= 0.0:
            return 0.0
        return self.sigma_at_max_discharge / full_scale

    @property
    def worst_sigma_mv(self) -> float:
        """Worst-case analogue standard deviation in millivolts."""
        return float(np.max(self.analog_sigma) * 1e3)

    @property
    def figure_of_merit(self) -> float:
        """Paper Eq. 9: ``1 / (eps_mul * E_mul)``."""
        error = max(self.mean_error_lsb, 1e-9)
        energy = max(self.energy_per_multiplication, 1e-30)
        return 1.0 / (error * energy)

    def small_operand_error(self, threshold: int = 4) -> float:
        """Average error restricted to products of small operands.

        The paper attributes the DNN-accuracy collapse of the ``variation``
        corner to its high error for multiplications with small operands,
        which dominate DNN workloads; this metric quantifies exactly that.
        """
        codes = np.arange(self.expected.shape[0])
        mask = (codes[:, np.newaxis] < threshold) | (codes[np.newaxis, :] < threshold)
        return float(np.mean(self.errors[mask]))

    def summary(self) -> Dict[str, float]:
        """Scalar metrics as a dictionary (used by the DSE and reports)."""
        return {
            "mean_error_lsb": self.mean_error_lsb,
            "max_error_lsb": self.max_error_lsb,
            "rms_error_lsb": self.rms_error_lsb,
            "mean_sigma_lsb": self.mean_sigma_lsb,
            "sigma_at_max_discharge_lsb": self.sigma_at_max_discharge_lsb,
            "worst_sigma_mv": self.worst_sigma_mv,
            "energy_per_multiplication_fj": self.energy_per_multiplication * 1e15,
            "energy_per_operation_pj": self.energy_per_operation * 1e12,
            "figure_of_merit": self.figure_of_merit,
            "small_operand_error_lsb": self.small_operand_error(),
        }

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"{self.config.name}: eps_mul={self.mean_error_lsb:.2f} LSB, "
            f"E_mul={self.energy_per_multiplication * 1e15:.1f} fJ, "
            f"E_op={self.energy_per_operation * 1e12:.2f} pJ, "
            f"sigma_max={self.worst_sigma_mv:.2f} mV"
        )


def analyze_input_space(
    multiplier: MultiplierLike,
    conditions: Optional[OperatingConditions] = None,
) -> InputSpaceAnalysis:
    """Evaluate one multiplier over its full input space.

    Works with both the OPTIMA-backed multiplier and the reference
    (circuit-simulation) multiplier; the latter reports zero analogue sigma
    because its mismatch handling is Monte-Carlo-based.
    """
    x_grid, d_grid = multiplier.input_space()
    expected = (x_grid * d_grid).astype(float)

    if isinstance(multiplier, ReferenceMultiplier):
        results = multiplier.multiply_table(conditions).astype(float)
        analog_sigma = np.zeros_like(expected)
    else:
        results = multiplier.multiply(x_grid, d_grid, conditions=conditions).astype(float)
        analog_sigma = multiplier.combined_sigma(x_grid, d_grid)

    errors = np.abs(results - expected)
    multiplication_energy = multiplier.multiplication_energy(
        x_grid, d_grid, conditions=conditions
    )
    operation_energy = multiplier.operation_energy(x_grid, d_grid, conditions=conditions)

    return InputSpaceAnalysis(
        config=multiplier.config,
        expected=expected,
        results=results,
        errors=errors,
        analog_sigma=np.asarray(analog_sigma, dtype=float),
        energy_per_multiplication=float(np.mean(multiplication_energy)),
        energy_per_operation=float(np.mean(operation_energy)),
        adc_lsb=float(multiplier.product_lsb_voltage),
    )


def group_by_expected_product(
    analysis: InputSpaceAnalysis,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group the input-space results by expected product (paper Fig. 8, left).

    Returns
    -------
    expected_values:
        Sorted unique expected products.
    mean_results:
        Average digital result for each expected product.
    result_sigma_lsb:
        Analogue standard deviation (converted to LSB) for each product.
    mean_errors:
        Average absolute error for each product.
    """
    flat_expected = analysis.expected.ravel()
    flat_results = analysis.results.ravel()
    flat_sigma = analysis.analog_sigma.ravel()
    flat_errors = analysis.errors.ravel()

    expected_values = np.unique(flat_expected)
    mean_results = np.empty_like(expected_values)
    result_sigma = np.empty_like(expected_values)
    mean_errors = np.empty_like(expected_values)
    for index, value in enumerate(expected_values):
        mask = flat_expected == value
        mean_results[index] = float(np.mean(flat_results[mask]))
        mean_errors[index] = float(np.mean(flat_errors[mask]))
        sigma_volts = float(np.sqrt(np.mean(flat_sigma[mask] ** 2)))
        result_sigma[index] = (
            sigma_volts / analysis.adc_lsb if analysis.adc_lsb > 0.0 else 0.0
        )
    return expected_values, mean_results, result_sigma, mean_errors
