"""Reference (transistor-level) evaluation of the in-SRAM multiplier.

This is the multiplier evaluated the way the paper's baseline flow does it —
with transient circuit simulation — and it serves two purposes:

* validation: the OPTIMA-based multiplier is checked against it, and
* the speed-up measurement of paper Section V (iteration over the input
  space and Monte-Carlo mismatch sampling, reference vs. OPTIMA).

The public API mirrors :class:`repro.multiplier.imac.InSramMultiplier` where
it matters (``multiply``, ``combined_discharge``, ``multiplication_energy``)
but every analogue number comes from the ODE-based
:class:`~repro.circuits.transient.TransientSolver`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.circuits.energy import EnergyModelReference
from repro.circuits.mismatch import MismatchParameters, MismatchSampler
from repro.circuits.technology import TechnologyCard
from repro.circuits.transient import TransientSolver
from repro.converters.adc import Adc
from repro.converters.dac import DacLike, build_dac
from repro.converters.sampling import ChargeSharingCombiner
from repro.multiplier.config import MultiplierConfig

ArrayLike = Union[int, float, np.ndarray]


class ReferenceMultiplier:
    """Circuit-simulation-based evaluation of one multiplier configuration.

    Parameters
    ----------
    technology:
        Technology card of the reference simulator.
    config:
        Circuit configuration (design-space point).
    conditions:
        Default PVT conditions.
    """

    def __init__(
        self,
        technology: TechnologyCard,
        config: MultiplierConfig,
        conditions: Optional[OperatingConditions] = None,
    ) -> None:
        self.technology = technology
        self.config = config
        self.conditions = conditions or OperatingConditions.nominal(technology)
        self.solver = TransientSolver(technology)
        self.energy_reference = EnergyModelReference(technology)
        self.dac: DacLike = build_dac(
            v_zero=config.v_dac_zero,
            v_full_scale=config.v_dac_full_scale,
            bits=config.bits,
            nonlinear_exponent=config.dac_nonlinear_exponent,
            capacitance=config.dac_capacitance,
        )
        self.combiner = ChargeSharingCombiner(
            branches=config.bits,
            capacitance_per_branch=config.sampling_capacitance,
        )
        self._discharge_times = np.asarray(config.discharge_times())
        self.adc = Adc(
            levels=max(int(round(self.conditions.vdd / config.adc_lsb_voltage)), 1),
            gain=config.adc_lsb_voltage,
            offset=0.0,
            conversion_energy_per_sample=config.adc_conversion_energy,
        )
        self._readout: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------
    # Characterisation (the expensive part)
    # ------------------------------------------------------------------
    def characterize_input_space(
        self,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Per-input, per-bit-line discharge table.

        Runs one transient sweep per bit-line (each covering all DAC codes)
        and returns an array of shape ``(codes, bits)`` with the discharge
        of bit-line ``i`` when the stored bit is 1 and the input code drives
        the word line.
        """
        conditions = conditions or self.conditions
        codes = np.arange(self.config.max_operand + 1)
        wordline_voltages = self.dac.voltage(codes)
        table = np.empty((codes.size, self.config.bits))
        for bit_index, duration in enumerate(self._discharge_times):
            table[:, bit_index] = self.solver.discharge_at(
                wordline_voltages, float(duration), conditions
            )
        return table

    def characterize_monte_carlo(
        self,
        samples: int,
        conditions: Optional[OperatingConditions] = None,
        seed: int = 0,
        wordline_code: Optional[int] = None,
    ) -> np.ndarray:
        """Monte-Carlo discharge samples of the MSB bit-line.

        Used by the speed-up experiment: the reference flow has to run one
        transient per mismatch sample, while OPTIMA only samples a Gaussian.
        Returns the sampled discharges, shape ``(samples,)``.
        """
        conditions = conditions or self.conditions
        code = self.config.max_operand if wordline_code is None else wordline_code
        voltage = float(np.asarray(self.dac.voltage(code)))
        sampler = MismatchSampler(
            MismatchParameters.from_technology(self.technology), seed=seed
        )
        arrays = sampler.sample_arrays(samples)
        return self.solver.discharge_at(
            voltage,
            float(self._discharge_times[-1]),
            conditions,
            mismatch=arrays,
        )

    # ------------------------------------------------------------------
    # Multiplication path
    # ------------------------------------------------------------------
    def _weight_bits(self, d: ArrayLike) -> np.ndarray:
        d = np.asarray(d, dtype=int)
        if np.any(d < 0) or np.any(d > self.config.max_operand):
            raise ValueError(
                f"stored operand out of range 0..{self.config.max_operand}"
            )
        shifts = np.arange(self.config.bits)
        return (d[..., np.newaxis] >> shifts) & 1

    def combined_discharge_table(
        self, conditions: Optional[OperatingConditions] = None
    ) -> np.ndarray:
        """Combined discharge for every (x, d) pair, shape ``(codes, codes)``."""
        table = self.characterize_input_space(conditions)
        codes = np.arange(self.config.max_operand + 1)
        bits = self._weight_bits(codes)
        # discharge of pair (x, d): average over bits of table[x, i] * d_i
        return np.einsum("xi,di->xd", table, bits) / self.config.bits

    def _ensure_readout(
        self, conditions: Optional[OperatingConditions] = None
    ) -> Tuple[float, float]:
        """Digital calibration of the ADC-code to product mapping.

        Mirrors :meth:`repro.multiplier.imac.InSramMultiplier._calibrate_readout`:
        a through-origin least-squares gain, so zero discharge decodes to the
        product 0.
        """
        if self._readout is None:
            combined = self.combined_discharge_table(conditions)
            codes = np.arange(self.config.max_operand + 1)
            x_grid, d_grid = np.meshgrid(codes, codes, indexing="ij")
            adc_codes = self.adc.quantize(combined).astype(float).ravel()
            products = (x_grid * d_grid).astype(float).ravel()
            denominator = float(np.dot(adc_codes, adc_codes))
            scale = (
                float(np.dot(adc_codes, products) / denominator)
                if denominator > 0.0
                else 1.0
            )
            if scale <= 0.0:
                scale = 1.0
            self._readout = (scale, 0.0)
        return self._readout

    @property
    def product_lsb_voltage(self) -> float:
        """Analogue voltage corresponding to one product code step."""
        scale, _ = self._ensure_readout()
        return self.config.adc_lsb_voltage / scale

    def _codes_to_products(self, adc_codes: np.ndarray) -> np.ndarray:
        scale, offset = self._ensure_readout()
        products = np.rint(scale * adc_codes.astype(float) + offset)
        return np.clip(products, 0, self.config.product_levels).astype(int)

    def multiply_table(
        self, conditions: Optional[OperatingConditions] = None
    ) -> np.ndarray:
        """Digital results for the full input space, shape ``(codes, codes)``."""
        self._ensure_readout()
        combined = self.combined_discharge_table(conditions)
        return self._codes_to_products(self.adc.quantize(combined))

    def multiply(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Digital product of ``x`` and ``d`` (re-simulates the discharges)."""
        conditions = conditions or self.conditions
        self._ensure_readout()
        x_arr = np.asarray(x, dtype=int)
        d_arr = np.asarray(d, dtype=int)
        bits = self._weight_bits(d_arr)
        v_wl = np.asarray(self.dac.voltage(x_arr), dtype=float)
        discharges = np.empty(np.shape(x_arr) + (self.config.bits,))
        for bit_index, duration in enumerate(self._discharge_times):
            discharges[..., bit_index] = self.solver.discharge_at(
                v_wl, float(duration), conditions
            )
        combined = self.combiner.combine_discharges(discharges * bits)
        return self._codes_to_products(self.adc.quantize(combined))

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def multiplication_energy(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Reference energy of one multiply (discharge + DAC + sampling + ADC)."""
        conditions = conditions or self.conditions
        x_arr = np.asarray(x, dtype=int)
        d_arr = np.asarray(d, dtype=int)
        bits = self._weight_bits(d_arr)
        v_wl = np.asarray(self.dac.voltage(x_arr), dtype=float)
        discharges = np.empty(np.shape(x_arr) + (self.config.bits,))
        for bit_index, duration in enumerate(self._discharge_times):
            discharges[..., bit_index] = self.solver.discharge_at(
                v_wl, float(duration), conditions
            )
        discharges = discharges * bits
        restore = np.sum(
            np.stack(
                [
                    self.energy_reference.discharge_energy(
                        discharges[..., i], v_wl, conditions
                    )
                    for i in range(self.config.bits)
                ],
                axis=-1,
            ),
            axis=-1,
        )
        dac_energy = self.dac.conversion_energy(x_arr)
        sampling = self.combiner.sampling_energy(
            conditions.vdd - discharges, conditions.vdd
        )
        return restore + dac_energy + sampling + self.config.adc_conversion_energy

    def operation_energy(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Reference energy of a full operation including the operand write."""
        conditions = conditions or self.conditions
        write = self.energy_reference.word_write_energy(
            conditions, bits=self.config.bits
        )
        return self.multiplication_energy(x, d, conditions=conditions) + write

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def input_space(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrid of every (x, d) operand combination."""
        operands = np.arange(self.config.max_operand + 1)
        return np.meshgrid(operands, operands, indexing="ij")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ReferenceMultiplier({self.config.describe()})"
