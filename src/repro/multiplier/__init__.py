"""Discharge-based in-SRAM multiplier case study (paper Section V).

The multiplier follows the IMAC circuit (the paper's reference [8]): a 4-bit
operand is stored in one SRAM word (one bit per column), the other operand is
applied as a DAC-generated word-line voltage, each bit-line-bar discharges for
a bit-weighted duration (``tau0 .. 8 tau0``), the discharges are captured on
sampling capacitors, charge-shared, and digitised by an ADC.

* :mod:`repro.multiplier.config` — the circuit-parameter container that
  spans the design space (``tau0``, ``V_DAC,0``, ``V_DAC,FS``).
* :mod:`repro.multiplier.imac` — the fast multiplier model built on an
  :class:`~repro.core.model_suite.OptimaModelSuite`.
* :mod:`repro.multiplier.reference` — the same multiplier evaluated with the
  transistor-level reference simulator (validation and speed-up baseline).
* :mod:`repro.multiplier.error_analysis` — input-space error / energy /
  sigma analysis (the quantities plotted in Fig. 7 and 8).
* :mod:`repro.multiplier.lut` — product lookup tables consumed by the DNN
  injection layer.
"""

from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier
from repro.multiplier.reference import ReferenceMultiplier
from repro.multiplier.error_analysis import (
    InputSpaceAnalysis,
    analyze_input_space,
    group_by_expected_product,
)
from repro.multiplier.lut import ProductLookupTable

__all__ = [
    "InSramMultiplier",
    "InputSpaceAnalysis",
    "MultiplierConfig",
    "ProductLookupTable",
    "ReferenceMultiplier",
    "analyze_input_space",
    "group_by_expected_product",
]
