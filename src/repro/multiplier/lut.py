"""Product lookup tables for the DNN injection layer.

Executing every DNN multiplication through the full analogue model would be
slow and, more importantly, is not how the paper's application analysis
works: the multiplier's behaviour over its 16x16 unsigned input space fully
characterises it, so the DNN experiments replace exact INT4 products with a
table lookup (mean analogue result per operand pair) plus an optional
Gaussian perturbation (the analogue sigma per operand pair).

Signed operands are handled in sign-magnitude form: the analogue array
multiplies the magnitudes and the sign is re-applied digitally, which is the
standard arrangement for this class of accelerator.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier

ArrayLike = Union[int, np.ndarray]


@dataclasses.dataclass
class ProductLookupTable:
    """Mean result and sigma of the in-SRAM multiplier over its input space.

    Attributes
    ----------
    mean:
        Mean digital result for every unsigned operand pair, shape
        ``(codes, codes)`` indexed ``[x, d]``.
    sigma:
        Standard deviation of the result in LSB units, same shape.
    name:
        Corner name the table was built from.
    max_operand:
        Largest unsigned operand value (15 for 4-bit).
    """

    mean: np.ndarray
    sigma: np.ndarray
    name: str = "unnamed"
    max_operand: int = 15

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=float)
        self.sigma = np.asarray(self.sigma, dtype=float)
        expected_shape = (self.max_operand + 1, self.max_operand + 1)
        if self.mean.shape != expected_shape:
            raise ValueError(f"mean must have shape {expected_shape}")
        if self.sigma.shape != expected_shape:
            raise ValueError(f"sigma must have shape {expected_shape}")
        if np.any(self.sigma < 0.0):
            raise ValueError("sigma entries must be non-negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_multiplier(
        cls,
        multiplier: InSramMultiplier,
        conditions: Optional[OperatingConditions] = None,
    ) -> "ProductLookupTable":
        """Build the table from an OPTIMA-backed multiplier."""
        x_grid, d_grid = multiplier.input_space()
        results = multiplier.multiply(x_grid, d_grid, conditions=conditions)
        sigma_volts = multiplier.combined_sigma(x_grid, d_grid)
        lsb = multiplier.product_lsb_voltage
        sigma_lsb = sigma_volts / lsb if lsb > 0.0 else np.zeros_like(sigma_volts)
        return cls(
            mean=results.astype(float),
            sigma=sigma_lsb,
            name=multiplier.config.name,
            max_operand=multiplier.config.max_operand,
        )

    @classmethod
    def exact(cls, max_operand: int = 15, name: str = "exact") -> "ProductLookupTable":
        """An error-free table (used as the INT4 digital baseline)."""
        codes = np.arange(max_operand + 1)
        products = np.outer(codes, codes).astype(float)
        return cls(
            mean=products,
            sigma=np.zeros_like(products),
            name=name,
            max_operand=max_operand,
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup_unsigned(self, x: ArrayLike, d: ArrayLike) -> np.ndarray:
        """Mean result for unsigned operands (vectorised)."""
        x = np.asarray(x, dtype=int)
        d = np.asarray(d, dtype=int)
        if np.any((x < 0) | (x > self.max_operand)):
            raise ValueError(f"x out of range 0..{self.max_operand}")
        if np.any((d < 0) | (d > self.max_operand)):
            raise ValueError(f"d out of range 0..{self.max_operand}")
        return self.mean[x, d]

    def lookup_signed(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Mean result for signed operands (sign-magnitude execution).

        Magnitudes are clipped to the representable range, which mirrors the
        saturating behaviour of the INT4 quantiser feeding the array.
        """
        a = np.asarray(a, dtype=int)
        b = np.asarray(b, dtype=int)
        magnitude_a = np.clip(np.abs(a), 0, self.max_operand)
        magnitude_b = np.clip(np.abs(b), 0, self.max_operand)
        sign = np.sign(a) * np.sign(b)
        return sign * self.mean[magnitude_a, magnitude_b]

    def sample_signed(
        self, a: ArrayLike, b: ArrayLike, rng: np.random.Generator
    ) -> np.ndarray:
        """Signed lookup with per-product Gaussian mismatch noise added."""
        a = np.asarray(a, dtype=int)
        b = np.asarray(b, dtype=int)
        magnitude_a = np.clip(np.abs(a), 0, self.max_operand)
        magnitude_b = np.clip(np.abs(b), 0, self.max_operand)
        sign = np.sign(a) * np.sign(b)
        mean = self.mean[magnitude_a, magnitude_b]
        sigma = self.sigma[magnitude_a, magnitude_b]
        noisy = mean + rng.normal(0.0, 1.0, size=np.shape(mean)) * sigma
        return sign * noisy

    # ------------------------------------------------------------------
    # Quality metrics
    # ------------------------------------------------------------------
    def mean_error_lsb(self) -> float:
        """Average absolute deviation from the exact product table."""
        codes = np.arange(self.max_operand + 1)
        exact = np.outer(codes, codes).astype(float)
        return float(np.mean(np.abs(self.mean - exact)))

    def error_for_small_operands(self, threshold: int = 4) -> float:
        """Average error restricted to pairs with a small operand."""
        codes = np.arange(self.max_operand + 1)
        exact = np.outer(codes, codes).astype(float)
        mask = (codes[:, np.newaxis] < threshold) | (codes[np.newaxis, :] < threshold)
        return float(np.mean(np.abs(self.mean - exact)[mask]))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "mean": self.mean.tolist(),
            "sigma": self.sigma.tolist(),
            "name": self.name,
            "max_operand": self.max_operand,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProductLookupTable":
        """Inverse of :meth:`to_dict`."""
        return cls(
            mean=np.asarray(data["mean"], dtype=float),
            sigma=np.asarray(data["sigma"], dtype=float),
            name=str(data.get("name", "unnamed")),
            max_operand=int(data.get("max_operand", 15)),
        )


def build_corner_tables(
    multipliers: Dict[str, InSramMultiplier],
    conditions: Optional[OperatingConditions] = None,
) -> Dict[str, ProductLookupTable]:
    """Build one lookup table per named multiplier corner."""
    return {
        name: ProductLookupTable.from_multiplier(multiplier, conditions)
        for name, multiplier in multipliers.items()
    }
