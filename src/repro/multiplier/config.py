"""Configuration of the discharge-based in-SRAM multiplier.

The design space explored in paper Section V is spanned by three circuit
parameters:

* ``tau0`` — discharge time of the least-significant bit-line,
* ``V_DAC,0`` — DAC output voltage for input code 0,
* ``V_DAC,FS`` — DAC full-scale output voltage.

:class:`MultiplierConfig` carries those parameters plus the secondary
implementation constants (operand width, converter energies, sampling
capacitors) that stay fixed across the exploration.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple


@dataclasses.dataclass(frozen=True)
class MultiplierConfig:
    """One point of the multiplier design space.

    Attributes
    ----------
    tau0:
        Discharge time of the least-significant bit-line in seconds.
    v_dac_zero:
        DAC output voltage for input code 0 (``V_DAC,0``).
    v_dac_full_scale:
        DAC full-scale output voltage (``V_DAC,FS``).
    bits:
        Operand width in bits; the stored word uses one bit-line per bit
        and the products span ``0 .. (2**bits - 1)**2``.
    name:
        Optional corner name (``"fom"``, ``"power"``, ``"variation"``, ...).
    dac_nonlinear_exponent:
        Pre-distortion exponent of the word-line DAC; 1.0 selects the plain
        linear DAC the paper's baseline circuit uses.
    dac_capacitance:
        Word-line load driven by the DAC, in farads.
    sampling_capacitance:
        Per-branch sampling capacitor of the read-out network, in farads.
    adc_conversion_energy:
        Energy of one ADC conversion in joules.
    adc_lsb_voltage:
        Voltage of one ADC step.  The ADC is a fixed piece of read-out
        hardware shared by every design corner, so its LSB voltage does not
        shrink when a corner uses a smaller analogue swing — which is why
        low-full-scale corners lose accuracy (their products are spread over
        fewer ADC codes).
    """

    tau0: float = 0.16e-9
    v_dac_zero: float = 0.3
    v_dac_full_scale: float = 1.0
    bits: int = 4
    name: str = "unnamed"
    dac_nonlinear_exponent: float = 1.0
    dac_capacitance: float = 30e-15
    sampling_capacitance: float = 8e-15
    adc_conversion_energy: float = 25e-15
    adc_lsb_voltage: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.tau0 <= 0.0:
            raise ValueError("tau0 must be positive")
        if self.bits <= 0 or self.bits > 8:
            raise ValueError("bits must lie in [1, 8]")
        if self.v_dac_full_scale <= self.v_dac_zero:
            raise ValueError("v_dac_full_scale must exceed v_dac_zero")
        if self.v_dac_zero < 0.0:
            raise ValueError("v_dac_zero must be non-negative")
        if self.dac_nonlinear_exponent <= 0.0:
            raise ValueError("dac_nonlinear_exponent must be positive")
        if self.adc_lsb_voltage <= 0.0:
            raise ValueError("adc_lsb_voltage must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_operand(self) -> int:
        """Largest representable operand value."""
        return (1 << self.bits) - 1

    @property
    def product_levels(self) -> int:
        """Number of ADC steps covering the product range."""
        return self.max_operand * self.max_operand

    def discharge_times(self) -> Tuple[float, ...]:
        """Bit-weighted discharge durations, LSB first (``tau0 * 2**i``)."""
        return tuple(self.tau0 * (1 << i) for i in range(self.bits))

    @property
    def max_discharge_time(self) -> float:
        """Duration of the longest (MSB) discharge."""
        return self.tau0 * (1 << (self.bits - 1))

    @property
    def cycle_time(self) -> float:
        """Estimated cycle time of one multiply operation.

        One cycle covers pre-charge, the longest discharge, sampling and the
        ADC conversion; the pre-charge/sample/convert overhead is folded
        into a fixed multiple of the discharge window, which reproduces the
        ~167 MHz operating frequency the paper reports for the ``fom``
        corner.
        """
        overhead = 3.5e-9
        return self.max_discharge_time + overhead

    @property
    def operating_frequency(self) -> float:
        """Operating frequency implied by :attr:`cycle_time`."""
        return 1.0 / self.cycle_time

    def renamed(self, name: str) -> "MultiplierConfig":
        """Copy of the configuration with a different corner name."""
        return dataclasses.replace(self, name=name)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"{self.name}: tau0={self.tau0 * 1e9:.2f} ns, "
            f"V_DAC,0={self.v_dac_zero:.2f} V, "
            f"V_DAC,FS={self.v_dac_full_scale:.2f} V"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MultiplierConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def paper_corner_fom() -> MultiplierConfig:
    """The ``fom`` corner of paper Table I (tau0 = 0.16 ns, 0.3 V, 1.0 V)."""
    return MultiplierConfig(
        tau0=0.16e-9, v_dac_zero=0.3, v_dac_full_scale=1.0, name="fom"
    )


def paper_corner_power() -> MultiplierConfig:
    """The ``power`` corner of paper Table I (tau0 = 0.16 ns, 0.3 V, 0.7 V)."""
    return MultiplierConfig(
        tau0=0.16e-9, v_dac_zero=0.3, v_dac_full_scale=0.7, name="power"
    )


def paper_corner_variation() -> MultiplierConfig:
    """The ``variation`` corner of paper Table I (tau0 = 0.24 ns, 0.4 V, 1.0 V)."""
    return MultiplierConfig(
        tau0=0.24e-9, v_dac_zero=0.4, v_dac_full_scale=1.0, name="variation"
    )
