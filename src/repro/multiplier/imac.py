"""Fast in-SRAM multiplier model built on the OPTIMA behavioural models.

The multiplication sequence follows paper Fig. 3 and Section V:

1. the 4-bit weight ``d`` is stored in one SRAM word (bit ``i`` in column
   ``i``),
2. all bit-line-bars are pre-charged to VDD,
3. the 4-bit input ``x`` is converted to a word-line voltage by the DAC,
4. bit-line-bar ``i`` discharges for ``2**i * tau0`` — but only if the
   stored bit ``d_i`` is 1,
5. the four discharged voltages are sampled and charge-shared,
6. an ADC converts the combined discharge to the digital product.

Every analogue quantity in steps 4-6 comes from the calibrated
:class:`~repro.core.model_suite.OptimaModelSuite`, which is why evaluating a
full 256-entry input space costs microseconds instead of the minutes a
transistor-level transient sweep takes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.conditions import OperatingConditions
from repro.converters.adc import Adc
from repro.converters.dac import DacLike, build_dac
from repro.converters.sampling import ChargeSharingCombiner
from repro.multiplier.config import MultiplierConfig

if TYPE_CHECKING:  # imported only for type annotations to avoid an import
    # cycle (repro.core imports repro.multiplier for the design-space
    # exploration, while the multiplier only *consumes* a model suite).
    from repro.core.model_suite import OptimaModelSuite

ArrayLike = Union[int, float, np.ndarray]


class InSramMultiplier:
    """Behavioural model of the IMAC-style 4-bit discharge multiplier.

    Parameters
    ----------
    suite:
        Calibrated OPTIMA model suite supplying discharges, sigmas and
        energies.
    config:
        Circuit configuration (design-space point).
    conditions:
        Default PVT conditions used when a call does not specify its own.
    adc:
        Optional pre-built ADC.  When omitted, a fixed-LSB ADC covering the
        supply range is used (the read-out hardware is shared by every
        design corner), followed by a one-time digital calibration that maps
        ADC codes to product codes by linear least squares.
    """

    def __init__(
        self,
        suite: OptimaModelSuite,
        config: MultiplierConfig,
        conditions: Optional[OperatingConditions] = None,
        adc: Optional[Adc] = None,
    ) -> None:
        self.suite = suite
        self.config = config
        self.conditions = conditions or OperatingConditions(
            vdd=suite.vdd_nominal, temperature=suite.temperature_nominal
        )
        self.dac: DacLike = build_dac(
            v_zero=config.v_dac_zero,
            v_full_scale=config.v_dac_full_scale,
            bits=config.bits,
            nonlinear_exponent=config.dac_nonlinear_exponent,
            capacitance=config.dac_capacitance,
        )
        self.combiner = ChargeSharingCombiner(
            branches=config.bits,
            capacitance_per_branch=config.sampling_capacitance,
        )
        self._discharge_times = np.asarray(config.discharge_times())
        if adc is not None:
            self.adc = adc
        else:
            self.adc = Adc(
                levels=max(int(round(suite.vdd_nominal / config.adc_lsb_voltage)), 1),
                gain=config.adc_lsb_voltage,
                offset=0.0,
                conversion_energy_per_sample=config.adc_conversion_energy,
            )
        self._readout_scale, self._readout_offset = self._calibrate_readout()

    # ------------------------------------------------------------------
    # Analogue path
    # ------------------------------------------------------------------
    def wordline_voltage(self, x: ArrayLike) -> np.ndarray:
        """DAC output voltage for the input operand ``x``."""
        return self.dac.voltage(x)

    def _weight_bits(self, d: ArrayLike) -> np.ndarray:
        """Bit decomposition of the stored operand, LSB first, last axis."""
        d = np.asarray(d, dtype=int)
        if np.any(d < 0) or np.any(d > self.config.max_operand):
            raise ValueError(
                f"stored operand out of range 0..{self.config.max_operand}"
            )
        shifts = np.arange(self.config.bits)
        return (d[..., np.newaxis] >> shifts) & 1

    def bitline_discharges(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Per-bit-line discharge voltages, shape ``broadcast(x, d) + (bits,)``.

        With ``rng`` provided, each discharge is perturbed by the
        mismatch-sigma model (paper Eq. 6); without it, the deterministic
        mean behaviour is returned.
        """
        conditions = conditions or self.conditions
        x = np.asarray(x, dtype=int)
        if np.any(x < 0) or np.any(x > self.config.max_operand):
            raise ValueError(
                f"input operand out of range 0..{self.config.max_operand}"
            )
        bits = self._weight_bits(np.asarray(d))
        v_wl = self.wordline_voltage(x)[..., np.newaxis]
        times = self._discharge_times
        if rng is None:
            discharge = self.suite.discharge_voltage(times, v_wl, conditions)
        else:
            discharge = self.suite.sample_discharge_voltage(
                times, v_wl, rng, conditions
            )
        return discharge * bits

    def bitline_discharge_samples(
        self,
        x: ArrayLike,
        d: ArrayLike,
        rngs: Sequence[np.random.Generator],
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Mismatch-sampled per-bit-line discharges for a stack of generators.

        Shape ``(len(rngs),) + broadcast(x, d) + (bits,)``; row ``i`` is
        bit-identical to ``bitline_discharges(x, d, conditions, rngs[i])``.
        The deterministic mean discharge and the mismatch sigma are
        evaluated once for the whole stack instead of once per generator.
        """
        conditions = conditions or self.conditions
        x = np.asarray(x, dtype=int)
        if np.any(x < 0) or np.any(x > self.config.max_operand):
            raise ValueError(
                f"input operand out of range 0..{self.config.max_operand}"
            )
        bits = self._weight_bits(np.asarray(d))
        v_wl = self.wordline_voltage(x)[..., np.newaxis]
        discharge = self.suite.sample_discharge_voltage_stack(
            self._discharge_times, v_wl, rngs, conditions
        )
        return discharge * bits

    def combined_discharge(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Charge-shared discharge of the combined sampling node."""
        discharges = self.bitline_discharges(x, d, conditions=conditions, rng=rng)
        return self.combiner.combine_discharges(discharges)

    def combined_sigma(
        self,
        x: ArrayLike,
        d: ArrayLike,
    ) -> np.ndarray:
        """Mismatch sigma of the combined node (volts)."""
        x = np.asarray(x, dtype=int)
        bits = self._weight_bits(np.asarray(d))
        v_wl = self.wordline_voltage(x)[..., np.newaxis]
        sigmas = self.suite.mismatch_sigma(self._discharge_times, v_wl) * bits
        return self.combiner.combined_sigma(sigmas)

    # ------------------------------------------------------------------
    # Digital result
    # ------------------------------------------------------------------
    def _calibrate_readout(self) -> Tuple[float, float]:
        """One-time digital calibration of the ADC-code to product mapping.

        The combined discharge of every operand pair is quantised by the
        fixed-LSB ADC; a least-squares *through-origin* fit of the ideal
        products against those ADC codes yields the digital gain the
        read-out applies afterwards.  The fit is constrained through the
        origin because the designer knows that zero discharge must decode to
        the product 0 — a free offset would trade error at zero (which
        dominates DNN workloads) for error elsewhere.
        """
        operands = np.arange(self.config.max_operand + 1)
        x_grid, d_grid = np.meshgrid(operands, operands, indexing="ij")
        voltages = self.combined_discharge(x_grid, d_grid)
        codes = self.adc.quantize(voltages).astype(float).ravel()
        products = (x_grid * d_grid).astype(float).ravel()
        denominator = float(np.dot(codes, codes))
        if denominator <= 0.0:
            return 1.0, 0.0
        scale = float(np.dot(codes, products) / denominator)
        if scale <= 0.0:
            return 1.0, 0.0
        return scale, 0.0

    @property
    def product_lsb_voltage(self) -> float:
        """Analogue voltage corresponding to one product code step."""
        return self.config.adc_lsb_voltage / self._readout_scale

    def multiply(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Digital multiplication result (product codes, broadcasting inputs)."""
        voltage = self.combined_discharge(x, d, conditions=conditions, rng=rng)
        return self._decode_voltage(voltage)

    def _decode_voltage(self, voltage: np.ndarray) -> np.ndarray:
        """ADC quantisation plus the calibrated digital read-out mapping."""
        codes = self.adc.quantize(voltage).astype(float)
        products = np.rint(self._readout_scale * codes + self._readout_offset)
        return np.clip(products, 0, self.config.product_levels).astype(int)

    def multiply_mc_samples(
        self,
        x: ArrayLike,
        d: ArrayLike,
        rngs: Sequence[np.random.Generator],
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Digital results for a stack of mismatch generators, one NumPy pass.

        Shape ``(len(rngs),) + broadcast(x, d)``; row ``i`` is bit-identical
        to ``multiply(x, d, conditions=conditions, rng=rngs[i])`` — the
        charge-sharing average, ADC quantisation and read-out mapping are
        all elementwise (or last-axis) operations, so evaluating the whole
        sample stack in one pass changes nothing but the wall-clock.
        """
        discharges = self.bitline_discharge_samples(x, d, rngs, conditions=conditions)
        return self._decode_voltage(self.combiner.combine_discharges(discharges))

    def multiply_at_conditions(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions_list: Sequence[OperatingConditions],
    ) -> np.ndarray:
        """Deterministic digital results for a stack of operating points.

        Shape ``(len(conditions_list),) + broadcast(x, d)``; row ``i`` is
        bit-identical to ``multiply(x, d, conditions=conditions_list[i])``.
        The supply / temperature values are broadcast as a leading axis
        through the discharge model (whose Eq. 3 polynomial term does not
        depend on them, so it is evaluated once for the whole stack).
        """
        x = np.asarray(x, dtype=int)
        if np.any(x < 0) or np.any(x > self.config.max_operand):
            raise ValueError(
                f"input operand out of range 0..{self.config.max_operand}"
            )
        bits = self._weight_bits(np.asarray(d))
        v_wl = self.wordline_voltage(x)[..., np.newaxis]
        axes = (1,) * len(
            np.broadcast_shapes(v_wl.shape, self._discharge_times.shape)
        )
        vdd = np.asarray(
            [point.vdd for point in conditions_list], dtype=float
        ).reshape((len(conditions_list),) + axes)
        temperature = np.asarray(
            [point.temperature for point in conditions_list], dtype=float
        ).reshape((len(conditions_list),) + axes)
        discharge = self.suite.discharge.discharge(
            self._discharge_times, v_wl, vdd=vdd, temperature=temperature
        )
        voltage = self.combiner.combine_discharges(discharge * bits)
        return self._decode_voltage(voltage)

    def multiplication_error(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Absolute error of the digital result in LSB (product code) units."""
        x_arr = np.asarray(x, dtype=int)
        d_arr = np.asarray(d, dtype=int)
        result = self.multiply(x_arr, d_arr, conditions=conditions, rng=rng)
        return np.abs(result.astype(float) - (x_arr * d_arr).astype(float))

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------
    def multiplication_energy(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Energy of one multiply (discharge + DAC + sampling + ADC), joules.

        The operand write is *not* included here; it is reported separately
        because a stored weight is typically reused across many multiplies
        (and the paper's Table I quotes ``E_mul`` without the write, while
        the 1.05 pJ headline number includes it).
        """
        conditions = conditions or self.conditions
        discharges = self.bitline_discharges(x, d, conditions=conditions)
        restore = np.sum(
            self.suite.discharge_event_energy(discharges, conditions), axis=-1
        )
        dac_energy = self.dac.conversion_energy(np.asarray(x))
        sampling = self.combiner.sampling_energy(
            conditions.vdd - discharges, conditions.vdd
        )
        return restore + dac_energy + sampling + self.config.adc_conversion_energy

    def operation_energy(
        self,
        x: ArrayLike,
        d: ArrayLike,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Energy of a full operation including the operand write."""
        conditions = conditions or self.conditions
        write = self.suite.word_write_energy(conditions, bits=self.config.bits)
        return self.multiplication_energy(x, d, conditions=conditions) + write

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def input_space(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrid of every (x, d) operand combination."""
        operands = np.arange(self.config.max_operand + 1)
        return np.meshgrid(operands, operands, indexing="ij")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InSramMultiplier({self.config.describe()})"
