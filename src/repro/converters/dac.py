"""Word-line DAC models.

The multiplier's input operand is applied as an analogue word-line voltage
produced by a small DAC (paper Section II-B, idea 1).  Two circuit parameters
of the design space live here:

* ``V_DAC,0`` — output voltage for the input code 0,
* ``V_DAC,FS`` — full-scale output voltage (input code ``2**bits - 1``).

The standard implementation is a linear DAC.  The paper also mentions a
*nonlinear* DAC (as proposed in the AID paper, their reference [15]) that
pre-distorts the transfer function to compensate the MOSFET nonlinearity;
:class:`NonlinearCompensatingDac` implements that extension so the ablation
benchmarks can quantify its benefit.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Union

import numpy as np

ArrayLike = Union[int, float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class LinearDac:
    """Linear word-line DAC.

    Attributes
    ----------
    bits:
        Resolution in bits (4 for the paper's multiplier).
    v_zero:
        Output voltage for code 0 (``V_DAC,0``).
    v_full_scale:
        Output voltage for the maximum code (``V_DAC,FS``).
    capacitance:
        Load capacitance the DAC drives (word line plus routing), used for
        the conversion-energy estimate.
    """

    bits: int = 4
    v_zero: float = 0.3
    v_full_scale: float = 1.0
    capacitance: float = 30e-15

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("bits must be positive")
        if self.v_full_scale <= self.v_zero:
            raise ValueError("v_full_scale must exceed v_zero")
        if self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive")

    @property
    def levels(self) -> int:
        """Number of distinct output codes."""
        return 1 << self.bits

    @property
    def max_code(self) -> int:
        """Largest representable input code."""
        return self.levels - 1

    @property
    def step(self) -> float:
        """Output voltage increment per input code."""
        return (self.v_full_scale - self.v_zero) / self.max_code

    def voltage(self, code: ArrayLike) -> np.ndarray:
        """Output voltage for an input ``code`` (values are clipped to range)."""
        code = np.clip(np.asarray(code, dtype=float), 0, self.max_code)
        return self.v_zero + code * self.step

    def code_for_voltage(self, voltage: ArrayLike) -> np.ndarray:
        """Nearest input code that produces ``voltage`` (inverse transfer)."""
        voltage = np.asarray(voltage, dtype=float)
        code = np.rint((voltage - self.v_zero) / self.step)
        return np.clip(code, 0, self.max_code).astype(int)

    def conversion_energy(self, code: ArrayLike) -> np.ndarray:
        """Energy to drive the word line to the output voltage of ``code``."""
        voltage = self.voltage(code)
        return self.capacitance * voltage**2


@dataclasses.dataclass(frozen=True)
class NonlinearCompensatingDac:
    """DAC with a programmable pre-distortion of the transfer function.

    The discharge depends super-linearly on the gate overdrive
    (``~ V_od ** alpha``); a DAC whose code-to-voltage map applies the
    inverse power restores an (approximately) linear code-to-discharge map.
    The compensation exponent is exposed so the ablation benchmark can sweep
    it; ``exponent = 1`` reduces to the linear DAC.

    Attributes
    ----------
    linear:
        The underlying linear DAC supplying range and energy parameters.
    exponent:
        Compensation exponent; the output voltage follows
        ``v_zero + (code / max_code) ** (1 / exponent) * (v_fs - v_zero)``.
    """

    linear: LinearDac
    exponent: float = 1.3

    def __post_init__(self) -> None:
        if self.exponent <= 0.0:
            raise ValueError("exponent must be positive")

    @property
    def bits(self) -> int:
        """Resolution in bits."""
        return self.linear.bits

    @property
    def max_code(self) -> int:
        """Largest representable input code."""
        return self.linear.max_code

    def voltage(self, code: ArrayLike) -> np.ndarray:
        """Pre-distorted output voltage for ``code``."""
        code = np.clip(np.asarray(code, dtype=float), 0, self.max_code)
        normalised = code / self.max_code
        shaped = normalised ** (1.0 / self.exponent)
        return self.linear.v_zero + shaped * (
            self.linear.v_full_scale - self.linear.v_zero
        )

    def conversion_energy(self, code: ArrayLike) -> np.ndarray:
        """Energy to drive the word line to the output voltage of ``code``."""
        voltage = self.voltage(code)
        return self.linear.capacitance * voltage**2


DacLike = Union[LinearDac, NonlinearCompensatingDac]


def build_dac(
    v_zero: float,
    v_full_scale: float,
    bits: int = 4,
    nonlinear_exponent: float = 1.0,
    capacitance: float = 30e-15,
) -> DacLike:
    """Factory building either DAC flavour from design-space parameters."""
    linear = LinearDac(
        bits=bits,
        v_zero=v_zero,
        v_full_scale=v_full_scale,
        capacitance=capacitance,
    )
    if nonlinear_exponent == 1.0:
        return linear
    return NonlinearCompensatingDac(linear=linear, exponent=nonlinear_exponent)
