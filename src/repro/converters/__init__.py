"""Mixed-signal periphery of the discharge-based multiplier.

The in-SRAM multiplier of paper Section V surrounds the SRAM array with a
small amount of mixed-signal circuitry:

* a word-line DAC that converts the digital input operand into an analogue
  word-line voltage (:mod:`repro.converters.dac`),
* a switch/capacitor sampling network that captures and combines the
  per-bit-line discharges (:mod:`repro.converters.sampling`),
* an ADC that digitises the combined discharge
  (:mod:`repro.converters.adc`).

These converters are behavioural: they model transfer functions,
quantisation and energy, not transistor netlists, because that is the level
at which the OPTIMA design-space exploration reasons about them.
"""

from repro.converters.adc import Adc
from repro.converters.dac import LinearDac, NonlinearCompensatingDac
from repro.converters.sampling import ChargeSharingCombiner, SamplingNetwork

__all__ = [
    "Adc",
    "ChargeSharingCombiner",
    "LinearDac",
    "NonlinearCompensatingDac",
    "SamplingNetwork",
]
