"""ADC model for the multiplier read-out.

After the per-bit-line discharges are combined by the sampling network, an
ADC converts the analogue voltage into the digital multiplication result.
The model is a uniform quantiser with an explicit offset/gain calibration,
because how the analogue range is mapped to product codes is itself a design
decision of the read-out (and the source of the "error after quantisation"
metric the paper optimises).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class Adc:
    """Uniform quantiser mapping a discharge voltage to a product code.

    Attributes
    ----------
    levels:
        Number of quantisation *steps*; the 4x4-bit multiplier uses 225
        (products 0..15*15).
    gain:
        Volts per code step (the ADC LSB voltage).
    offset:
        Voltage corresponding to code 0.
    conversion_energy_per_sample:
        Energy of one conversion in joules (flash/SAR budget at this
        resolution and speed).
    """

    levels: int = 225
    gain: float = 1e-3
    offset: float = 0.0
    conversion_energy_per_sample: float = 150e-15

    def __post_init__(self) -> None:
        if self.levels <= 0:
            raise ValueError("levels must be positive")
        if self.gain <= 0.0:
            raise ValueError("gain must be positive")
        if self.conversion_energy_per_sample < 0.0:
            raise ValueError("conversion energy must be non-negative")

    @property
    def lsb(self) -> float:
        """Voltage of one least-significant bit."""
        return self.gain

    @property
    def full_scale(self) -> float:
        """Analogue input range covered by the code range."""
        return self.gain * self.levels

    def quantize(self, voltage: ArrayLike) -> np.ndarray:
        """Convert a voltage into an integer code, clipped to the code range."""
        voltage = np.asarray(voltage, dtype=float)
        codes = np.rint((voltage - self.offset) / self.gain)
        return np.clip(codes, 0, self.levels).astype(int)

    def reconstruct(self, code: ArrayLike) -> np.ndarray:
        """Mid-step analogue value represented by ``code``."""
        code = np.asarray(code, dtype=float)
        return self.offset + code * self.gain

    def quantization_error(self, voltage: ArrayLike) -> np.ndarray:
        """Difference between the reconstructed and the applied voltage."""
        return self.reconstruct(self.quantize(voltage)) - np.asarray(voltage, dtype=float)

    @classmethod
    def calibrated(
        cls,
        voltages: ArrayLike,
        target_codes: ArrayLike,
        levels: int,
        conversion_energy_per_sample: float = 150e-15,
    ) -> "Adc":
        """Build an ADC whose gain/offset best map ``voltages`` to ``target_codes``.

        This models the one-time read-out calibration a designer performs:
        a linear least-squares fit of voltage against the ideal product code
        defines the transfer function; the residual nonlinearity then shows
        up as multiplication error, which is exactly what the design-space
        exploration measures.
        """
        voltages = np.asarray(voltages, dtype=float).ravel()
        codes = np.asarray(target_codes, dtype=float).ravel()
        if voltages.size != codes.size:
            raise ValueError("voltages and target_codes must have the same length")
        if voltages.size < 2:
            raise ValueError("need at least two calibration points")
        design = np.column_stack([codes, np.ones_like(codes)])
        (gain, offset), *_ = np.linalg.lstsq(design, voltages, rcond=None)
        if gain <= 0.0:
            # A degenerate calibration set (e.g. all-equal voltages) falls
            # back to a unit-gain converter instead of an invalid one.
            gain = max(float(np.ptp(voltages)) / max(levels, 1), 1e-9)
        return cls(
            levels=levels,
            gain=float(gain),
            offset=float(offset),
            conversion_energy_per_sample=conversion_energy_per_sample,
        )

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"ADC: {self.levels} levels, LSB={self.lsb * 1e3:.3f} mV, "
            f"offset={self.offset * 1e3:.2f} mV, "
            f"E_conv={self.conversion_energy_per_sample * 1e15:.0f} fJ"
        )


def effective_number_of_bits(signal_rms: float, noise_rms: float) -> float:
    """ENOB for a given signal and total noise RMS (standard 6.02 dB/bit rule)."""
    if signal_rms <= 0.0 or noise_rms <= 0.0:
        raise ValueError("signal_rms and noise_rms must be positive")
    snr_db = 20.0 * np.log10(signal_rms / noise_rms)
    return float((snr_db - 1.76) / 6.02)


def required_adc_levels(product_bits: Tuple[int, int]) -> int:
    """Number of ADC steps needed to represent an ``a x b``-bit product."""
    bits_a, bits_b = product_bits
    if bits_a <= 0 or bits_b <= 0:
        raise ValueError("operand widths must be positive")
    return ((1 << bits_a) - 1) * ((1 << bits_b) - 1)
