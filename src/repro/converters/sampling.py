"""Switch/capacitor sampling network combining the per-bit-line discharges.

In the IMAC-style multiplier, each bit-line-bar is discharged for a
bit-weighted duration (``tau0``, ``2 tau0``, ``4 tau0``, ``8 tau0``) and the
resulting voltages are captured on sampling capacitors.  Shorting the
sampling capacitors together (charge sharing) averages the captured voltages,
so the combined node carries the weighted sum of the per-bit discharges
scaled by ``1 / N`` — the analogue representation of the product.

Two combiner variants are provided:

* :class:`ChargeSharingCombiner` — equal capacitors, plain average (the
  paper's circuit).
* :class:`SamplingNetwork` — per-branch capacitor ratios, allowing weighted
  combining and sensitivity studies of capacitor mismatch.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class ChargeSharingCombiner:
    """Equal-capacitor charge-sharing combiner.

    Attributes
    ----------
    branches:
        Number of sampled bit-lines (4 for the 4-bit multiplier).
    capacitance_per_branch:
        Sampling capacitor per branch, in farads.
    """

    branches: int = 4
    capacitance_per_branch: float = 8e-15

    def __post_init__(self) -> None:
        if self.branches <= 0:
            raise ValueError("branches must be positive")
        if self.capacitance_per_branch <= 0.0:
            raise ValueError("capacitance_per_branch must be positive")

    def combine(self, voltages: ArrayLike) -> np.ndarray:
        """Combined node voltage after shorting all sampling capacitors.

        ``voltages`` must have the branch dimension as its last axis.
        """
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape[-1] != self.branches:
            raise ValueError(
                f"expected {self.branches} branch voltages, got {voltages.shape[-1]}"
            )
        return voltages.mean(axis=-1)

    def combine_discharges(self, discharges: ArrayLike) -> np.ndarray:
        """Combined discharge (same averaging, expressed as a swing)."""
        return self.combine(discharges)

    def combined_sigma(self, sigmas: ArrayLike) -> np.ndarray:
        """Standard deviation of the combined node for independent branches."""
        sigmas = np.asarray(sigmas, dtype=float)
        if sigmas.shape[-1] != self.branches:
            raise ValueError(
                f"expected {self.branches} branch sigmas, got {sigmas.shape[-1]}"
            )
        return np.sqrt(np.sum(sigmas**2, axis=-1)) / self.branches

    def sampling_energy(self, voltages: ArrayLike, vdd: float) -> np.ndarray:
        """Energy to charge the sampling capacitors to the branch voltages."""
        voltages = np.asarray(voltages, dtype=float)
        return np.sum(
            self.capacitance_per_branch * vdd * np.maximum(vdd - voltages, 0.0),
            axis=-1,
        )


@dataclasses.dataclass(frozen=True)
class SamplingNetwork:
    """Charge-sharing combiner with per-branch capacitor weights.

    The equal-capacitor combiner is the special case of all-ones weights.
    Unequal weights let the exploration study (a) intentional capacitor
    ratios that re-weight the bit-lines and (b) the sensitivity of the
    read-out to sampling-capacitor mismatch.
    """

    capacitances: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.capacitances) == 0:
            raise ValueError("at least one branch is required")
        if any(c <= 0.0 for c in self.capacitances):
            raise ValueError("capacitances must be positive")

    @property
    def branches(self) -> int:
        """Number of branches."""
        return len(self.capacitances)

    @property
    def weights(self) -> np.ndarray:
        """Normalised charge-sharing weights of each branch."""
        caps = np.asarray(self.capacitances, dtype=float)
        return caps / caps.sum()

    def combine(self, voltages: ArrayLike) -> np.ndarray:
        """Capacitance-weighted combined node voltage."""
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape[-1] != self.branches:
            raise ValueError(
                f"expected {self.branches} branch voltages, got {voltages.shape[-1]}"
            )
        return np.sum(voltages * self.weights, axis=-1)

    def combined_sigma(self, sigmas: ArrayLike) -> np.ndarray:
        """Standard deviation of the combined node for independent branches."""
        sigmas = np.asarray(sigmas, dtype=float)
        if sigmas.shape[-1] != self.branches:
            raise ValueError(
                f"expected {self.branches} branch sigmas, got {sigmas.shape[-1]}"
            )
        return np.sqrt(np.sum((sigmas * self.weights) ** 2, axis=-1))

    @classmethod
    def equal(cls, branches: int, capacitance: float = 8e-15) -> "SamplingNetwork":
        """Equal-capacitor network with ``branches`` branches."""
        if branches <= 0:
            raise ValueError("branches must be positive")
        return cls(capacitances=tuple(capacitance for _ in range(branches)))

    @classmethod
    def with_mismatch(
        cls,
        branches: int,
        capacitance: float,
        relative_sigma: float,
        rng: Optional[np.random.Generator] = None,
    ) -> "SamplingNetwork":
        """Equal network perturbed by Gaussian capacitor mismatch.

        ``rng`` defaults to a fixed-seed generator: like every solver
        path, repeated construction must be bit-identical (callers
        drawing many independent networks pass SeedSequence-derived
        generators explicitly).
        """
        if relative_sigma < 0.0:
            raise ValueError("relative_sigma must be non-negative")
        rng = rng or np.random.default_rng(0)
        factors = rng.normal(1.0, relative_sigma, size=branches)
        factors = np.clip(factors, 0.5, 1.5)
        return cls(capacitances=tuple(capacitance * factors))
