"""repro.sched — job classes, integer priorities and the dispatch order.

The multi-tenant scheduling vocabulary shared by all three tiers: the
service admission path parses a submit's ``sched`` field into a
:class:`SchedPolicy`, the engine forwards it to the executor, and the
coordinator keeps every worker's backlog in a :class:`PriorityQueue` so a
runnable higher-priority span always dispatches before any lower-priority
one.  Preemption itself (revoking the unstarted tail of in-flight
lower-priority chunks via the cluster protocol's ``split`` machinery)
lives in :mod:`repro.cluster.coordinator`; this module is the pure,
socket-free policy layer, which is what the property-based tests pin.

Two job classes exist, mirroring ARTIQ-style master scheduling:

* ``interactive`` — latency-sensitive submits (dashboards, the DSE loop);
  default priority 10.
* ``batch`` — throughput work (PVT / Monte-Carlo grids, DNN accuracy
  tables); default priority 0.

Larger integers win.  The class only chooses the *default* priority and
labels the queue-depth metrics; dispatch and preemption decisions compare
the integer alone.

>>> SchedPolicy.parse(None)
SchedPolicy(job_class='batch', priority=0)
>>> SchedPolicy.parse("interactive")
SchedPolicy(job_class='interactive', priority=10)
>>> SchedPolicy.parse({"class": "batch", "priority": 3}).priority
3
>>> SchedPolicy.parse({"class": "realtime"})
Traceback (most recent call last):
    ...
ValueError: unknown job class 'realtime' (expected one of: interactive, batch)

The queue pops highest-priority-first and FIFO within one priority:

>>> queue = PriorityQueue(key=lambda item: item[0])
>>> queue.append((0, "batch-a"))
>>> queue.append((10, "interactive"))
>>> queue.append((0, "batch-b"))
>>> queue.popleft()
(10, 'interactive')
>>> queue.popleft()
(0, 'batch-a')
>>> len(queue)
1
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

__all__ = [
    "DEFAULT_PRIORITIES",
    "JOB_CLASSES",
    "PriorityQueue",
    "SchedPolicy",
]

#: The scheduling classes a sweep can be tagged with (wire value of the
#: submit op's ``sched.class`` field and the gateway's ``sched`` object).
JOB_CLASSES = ("interactive", "batch")

#: Priority a class implies when the submit names no explicit integer.
DEFAULT_PRIORITIES: Dict[str, int] = {"interactive": 10, "batch": 0}

#: Sanity bound on explicit priorities — wide enough for any real tiering,
#: tight enough that a corrupted field cannot smuggle absurd integers in.
_PRIORITY_BOUND = 1_000_000


@dataclasses.dataclass(frozen=True)
class SchedPolicy:
    """One sweep's scheduling class and integer priority (larger wins)."""

    job_class: str = "batch"
    priority: int = 0

    @classmethod
    def parse(
        cls, value: Union[None, str, Dict[str, Any], "SchedPolicy"]
    ) -> "SchedPolicy":
        """Build a policy from wire-shaped input; ``ValueError`` on junk.

        Accepts ``None`` (the batch default — absent field on the wire),
        a class name string, an existing policy, or a ``{"class": ...,
        "priority": ...}`` object with both keys optional.  Admission
        paths (service submit, gateway ``POST /v1/sweeps``) answer the
        ``ValueError`` with ``bad-request`` / HTTP 400.
        """
        if value is None:
            return cls()
        if isinstance(value, SchedPolicy):
            return value
        if isinstance(value, str):
            return cls._from_fields(value, None)
        if isinstance(value, dict):
            unknown = set(value) - {"class", "priority"}
            if unknown:
                raise ValueError(
                    f"unknown sched field(s): {', '.join(sorted(unknown))}"
                )
            return cls._from_fields(value.get("class"), value.get("priority"))
        raise ValueError(
            f"sched must be a class name or an object, got {type(value).__name__}"
        )

    @classmethod
    def _from_fields(cls, job_class: Any, priority: Any) -> "SchedPolicy":
        if job_class is None:
            job_class = "batch"
        if job_class not in JOB_CLASSES:
            raise ValueError(
                f"unknown job class {job_class!r} "
                f"(expected one of: {', '.join(JOB_CLASSES)})"
            )
        if priority is None:
            priority = DEFAULT_PRIORITIES[job_class]
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ValueError("sched priority must be an integer")
        if abs(priority) > _PRIORITY_BOUND:
            raise ValueError(
                f"sched priority out of range (|priority| <= {_PRIORITY_BOUND})"
            )
        return cls(job_class=str(job_class), priority=priority)

    def to_dict(self) -> Dict[str, Any]:
        """Wire shape of the policy (the submit field, round-trippable)."""
        return {"class": self.job_class, "priority": self.priority}

    def describe(self) -> str:
        return f"{self.job_class}/p{self.priority}"


class PriorityQueue:
    """Deque-like backlog that always yields the highest priority first.

    Items of equal priority keep strict FIFO order (``append`` at the
    back, ``appendleft`` at the front — the home of a dispatch
    remainder), so within one priority the queue behaves exactly like the
    plain deque it replaces and dispatch histories stay deterministic for
    a fixed event order.  Across priorities, :meth:`popleft` drains the
    highest bucket completely before touching the next — the invariant
    the property-based tests pin: no lower-priority item is ever handed
    out while a higher-priority one is queued.

    ``key`` maps an item to its integer priority and is evaluated on
    every operation (never cached), so items whose priority cannot change
    while queued need no re-insertion discipline.
    """

    def __init__(self, key: Optional[Callable[[Any], int]] = None):
        self._key = key if key is not None else (lambda item: 0)
        self._buckets: Dict[int, Deque[Any]] = {}

    def _bucket(self, item: Any) -> Deque[Any]:
        return self._buckets.setdefault(int(self._key(item)), deque())

    # -- deque-compatible surface --------------------------------------
    def append(self, item: Any) -> None:
        self._bucket(item).append(item)

    def appendleft(self, item: Any) -> None:
        self._bucket(item).appendleft(item)

    def extend(self, items: Any) -> None:
        for item in items:
            self.append(item)

    def popleft(self) -> Any:
        """Remove and return the oldest item of the highest priority."""
        for priority in sorted(self._buckets, reverse=True):
            bucket = self._buckets[priority]
            if bucket:
                item = bucket.popleft()
                if not bucket:
                    del self._buckets[priority]
                return item
        raise IndexError("pop from an empty PriorityQueue")

    def pop_tail(self, priority: Optional[int] = None) -> Any:
        """Remove and return the newest item of one priority bucket.

        ``priority=None`` takes from the *lowest* bucket present.  The
        steal path passes an explicit priority: the thief empties the
        victim's most-urgent bucket from its tail, so the victim keeps
        the items it would reach next within that bucket and theft never
        reorders work across priorities.
        """
        order = sorted(self._buckets) if priority is None else [priority]
        for candidate in order:
            bucket = self._buckets.get(candidate)
            if bucket:
                item = bucket.pop()
                if not bucket:
                    del self._buckets[candidate]
                return item
        raise IndexError("pop from an empty PriorityQueue")

    def clear(self) -> None:
        self._buckets.clear()

    def retain(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Keep only items matching ``predicate``; returns the dropped."""
        dropped: List[Any] = []
        for priority in list(self._buckets):
            kept: Deque[Any] = deque()
            for item in self._buckets[priority]:
                (kept if predicate(item) else dropped).append(item)
            if kept:
                self._buckets[priority] = kept
            else:
                del self._buckets[priority]
        return dropped

    def __iter__(self) -> Iterator[Any]:
        """Iterate in dispatch order: priority descending, FIFO within."""
        for priority in sorted(self._buckets, reverse=True):
            yield from self._buckets[priority]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __bool__(self) -> bool:
        return any(self._buckets.values())

    # -- scheduling introspection --------------------------------------
    def highest_priority(self) -> Optional[int]:
        """Priority of the next :meth:`popleft`, or ``None`` when empty.

        >>> queue = PriorityQueue()
        >>> queue.highest_priority() is None
        True
        """
        priorities = [p for p, bucket in self._buckets.items() if bucket]
        return max(priorities) if priorities else None
