"""Shared minimal HTTP/1.1 plumbing for the repo's embedded endpoints.

Two servers speak HTTP in this repository — the Prometheus metrics
endpoint (:mod:`repro.obs.http`) and the REST/SSE gateway
(:mod:`repro.gateway`) — and both are deliberately framework-free.  This
module is their common core, the HTTP analogue of :mod:`repro.wire`:
request parsing with hard limits (:func:`read_request`), response
rendering (:func:`render_response`, :func:`json_response`) and the
structured JSON error body every endpoint answers with
(:func:`error_body`).

The dialect is intentionally narrow and documented here once:

* one request per connection — every response carries
  ``Connection: close`` (SSE streams stay open until the *server* is done
  writing, then close).  Scrape clients, curl, browsers and load
  balancers all handle this; it keeps both servers a screenful of code;
* bodies require ``Content-Length`` (no chunked transfer encoding) and
  are bounded by the caller's ``max_body_bytes`` — an oversized body is
  refused with :class:`HttpError` status 413 *before* it is read;
* header names are lower-cased on parse, values stripped.

>>> response = render_response(200, b'{"ok": true}')
>>> response.split(b"\\r\\n")[0]
b'HTTP/1.1 200 OK'
>>> b"Connection: close" in response
True
>>> error_body(404, "no such sweep", code="not-found")
b'{"code": "not-found", "error": "no such sweep", "status": 404}\\n'
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "HttpError",
    "HttpRequest",
    "REASONS",
    "error_body",
    "error_response",
    "json_response",
    "read_request",
    "render_response",
]

#: Hard bound on the request line; anything longer is a 400.
MAX_REQUEST_LINE_BYTES = 8192

#: Hard bound on the number of header lines; anything more is a 400.
MAX_HEADER_COUNT = 100

#: The status codes the embedded servers actually emit.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    307: "Temporary Redirect",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Content Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the response status.

    >>> error = HttpError(413, "body too large")
    >>> error.status, str(error)
    (413, 'body too large')
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class HttpRequest:
    """One parsed request: line, lower-cased headers, bounded body."""

    method: str
    path: str
    query: str
    version: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body decoded as JSON; :class:`HttpError` 400 when it is not.

        >>> HttpRequest("POST", "/x", "", "HTTP/1.1", {}, b'{"a": 1}').json()
        {'a': 1}
        """
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}") from None


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = 1_000_000,
    timeout: float = 10.0,
) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; ``None`` on a clean immediate EOF.

    Raises :class:`HttpError` (400 for malformed framing, 413 for a body
    over ``max_body_bytes`` — checked against ``Content-Length`` before a
    single body byte is read) and :class:`asyncio.TimeoutError` when the
    peer stalls longer than ``timeout`` between lines.
    """
    request_line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    if request_line == b"":
        return None
    if len(request_line) > MAX_REQUEST_LINE_BYTES:
        raise HttpError(400, "request line too long")
    parts = request_line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        if line in (b"\r\n", b"\n"):
            break
        if line == b"":
            raise HttpError(400, "connection closed inside the header block")
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, "too many header lines")
        name, sep, value = line.decode("latin-1", "replace").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if headers.get("transfer-encoding"):
        raise HttpError(400, "chunked transfer encoding is not supported")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length > max_body_bytes:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        try:
            body = await asyncio.wait_for(reader.readexactly(length), timeout=timeout)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed inside the request body") from None
    path, _, query = target.partition("?")
    return HttpRequest(
        method=method, path=path, query=query, version=version,
        headers=headers, body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json; charset=utf-8",
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """One complete ``Connection: close`` response as wire bytes."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    document: Any,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """A JSON document rendered as a complete response.

    >>> json_response(202, {"ok": True}).endswith(b'{"ok": true}\\n')
    True
    """
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers)


def error_body(status: int, message: str, code: Optional[str] = None) -> bytes:
    """The structured JSON error document every endpoint answers with."""
    document: Dict[str, Any] = {"error": message, "status": status}
    if code is not None:
        document["code"] = code
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


def error_response(status: int, message: str, code: Optional[str] = None) -> bytes:
    """A complete error response (:func:`error_body` + headers)."""
    return render_response(status, error_body(status, message, code=code))
