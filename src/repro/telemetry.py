"""Per-worker throughput telemetry behind the adaptive cluster scheduler.

The distributed executor's coordinator (:mod:`repro.cluster.coordinator`)
measures every worker continuously — how many jobs per second it actually
completes, how long its chunks take, how punctual its heartbeats are.
The chunk-completion measurements feed the scheduling policy described in
``docs/scheduling.md`` (chunk sizes track a target wall-time window per
worker instead of a fixed job count, and stragglers holding a dispatched
chunk hostage get split); the heartbeat-gap EWMA is an *observability*
signal, surfaced through ``cluster status`` for operators diagnosing a
wedged or overloaded worker — it is not a scheduling input.

This module is deliberately free of any cluster machinery: it is pure
accounting over ``(jobs, seconds)`` observations, so the scheduling policy
is unit-testable (and doctest-able) without sockets or subprocesses.

All estimators are exponentially weighted moving averages
(:func:`ewma`): cheap, O(1) memory, and quick to track a worker whose
speed *changes* (thermal throttling, a co-tenant stealing its cores) —
exactly the pools the adaptive scheduler exists for.

>>> stats = WorkerStats("w1")
>>> stats.observe_chunk(jobs=8, seconds=2.0)     # 4 jobs/s measured
>>> stats.throughput
4.0
>>> stats.observe_chunk(jobs=2, seconds=1.0)     # slowed to 2 jobs/s
>>> 2.0 < stats.throughput < 4.0                 # EWMA tracks the change
True
>>> stats.expected_jobs(window=3.0)              # chunk for a 3 s window
10
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Any, Dict, Iterable, Optional

__all__ = ["ewma", "WorkerStats", "TelemetryBook"]

#: Default EWMA smoothing factor: the most recent observation carries 30 %
#: of the estimate, so ~5 observations flush a stale speed reading.
DEFAULT_ALPHA = 0.3


def ewma(previous: Optional[float], sample: float, alpha: float = DEFAULT_ALPHA) -> float:
    """One exponentially-weighted moving-average update.

    ``previous`` is the running estimate (``None`` before the first
    observation, which then passes through unchanged); ``alpha`` is the
    weight of the new ``sample``.

    >>> ewma(None, 10.0)
    10.0
    >>> ewma(10.0, 20.0, alpha=0.5)
    15.0
    >>> ewma(10.0, 10.0, alpha=0.3)
    10.0
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if previous is None:
        return float(sample)
    return float(alpha * sample + (1.0 - alpha) * previous)


@dataclasses.dataclass
class WorkerStats:
    """EWMA throughput / latency accounting for one cluster worker.

    Fed by the coordinator from two frame streams:

    * **chunk completions** (:meth:`observe_chunk`) — the ground truth for
      throughput: ``jobs / seconds`` of each finished chunk, measured
      dispatch-to-completion on the coordinator's clock (so wire latency
      is charged to the worker, as it should be — the scheduler cares
      about *delivered* throughput, not CPU speed);
    * **heartbeats** (:meth:`observe_heartbeat`) — a latency signal: the
      gap between consecutive beacons, whose EWMA drifting above the
      announced interval marks a wedged or overloaded worker even when no
      chunk has completed to prove it.  Surfaced in ``cluster status``
      for operators; the scheduler itself acts only on chunk telemetry.

    A worker with ``--slots N`` runs up to ``N`` chunks *concurrently*,
    so a chunk's naive ``jobs / wall-seconds`` under-states the worker's
    delivered capacity by up to ``N``x (the PR 5 gap).  The coordinator
    therefore brackets every chunk with :meth:`chunk_dispatched` /
    :meth:`chunk_settled`, which maintain a time-weighted busy integral
    (``∫ inflight_chunks dt``); the chunk's mean *occupancy* — how many
    chunks shared the worker over its lifetime — scales the throughput
    sample back up to whole-worker capacity in :meth:`observe_chunk`.
    Chunk-window sizing stays exact because :meth:`expected_jobs` and
    :meth:`expected_seconds` divide back down by the worker's slot count.

    >>> stats = WorkerStats("w3")
    >>> stats.throughput is None          # no observation yet: unknown
    True
    >>> stats.expected_jobs(1.0) is None  # so no chunk-size estimate either
    True
    >>> stats.observe_chunk(jobs=10, seconds=0.5)
    >>> stats.throughput
    20.0
    >>> stats.expected_jobs(0.25)         # 20 jobs/s * 0.25 s window
    5
    >>> stats.expected_jobs(0.001)        # never starves a worker entirely
    1

    Occupancy accounting on a two-slot worker — two chunks of 4 jobs run
    side by side for 4 s.  Each chunk alone measures 1 job/s, but the
    worker delivered 8 jobs in those 4 s:

    >>> stats = WorkerStats("w2")
    >>> mark_a = stats.chunk_dispatched(now=0.0)
    >>> mark_b = stats.chunk_dispatched(now=0.0)
    >>> done_a = stats.chunk_settled(now=4.0)
    >>> (done_a - mark_a) / 4.0           # mean occupancy of chunk A
    2.0
    >>> stats.observe_chunk(jobs=4, seconds=4.0, occupancy=2.0)
    >>> stats.throughput                  # whole-worker capacity, not 1.0
    2.0
    >>> stats.expected_jobs(window=4.0, slots=2)   # per-slot sizing: exact
    4
    """

    worker_id: str
    alpha: float = DEFAULT_ALPHA
    chunks_observed: int = 0
    jobs_observed: int = 0
    #: EWMA of delivered jobs/second; ``None`` until the first completion.
    ewma_throughput: Optional[float] = None
    #: EWMA of chunk wall time (dispatch -> completion), seconds.
    ewma_chunk_seconds: Optional[float] = None
    #: EWMA of the gap between consecutive heartbeats, seconds.
    ewma_heartbeat_gap: Optional[float] = None
    #: Monotonic timestamp of the last heartbeat (coordinator clock).
    last_heartbeat: Optional[float] = None
    #: Chunks currently dispatched to (and unsettled on) this worker.
    inflight_chunks: int = 0
    #: Time-weighted busy integral ``∫ inflight_chunks dt`` (chunk-seconds).
    busy_integral: float = 0.0
    #: Monotonic timestamp of the last busy-integral update.
    busy_updated: Optional[float] = None

    @property
    def throughput(self) -> Optional[float]:
        """Estimated delivered throughput in jobs/second (``None``: unknown)."""
        return self.ewma_throughput

    def _advance(self, now: float) -> None:
        """Accrue ``inflight * dt`` up to ``now`` (clock never runs backwards)."""
        if self.busy_updated is not None and now > self.busy_updated:
            self.busy_integral += self.inflight_chunks * (now - self.busy_updated)
            self.busy_updated = now
        elif self.busy_updated is None:
            self.busy_updated = now

    def chunk_dispatched(self, now: float) -> float:
        """Mark one more chunk in flight; returns the busy integral *before*
        the chunk starts accruing, the caller's occupancy baseline."""
        self._advance(now)
        self.inflight_chunks += 1
        return self.busy_integral

    def chunk_settled(self, now: float) -> float:
        """Mark one chunk settled (done, failed or cancelled); returns the
        busy integral at settlement.  ``(settled - dispatched) / seconds``
        is the chunk's mean occupancy — 1.0 on a lone chunk, ~``slots`` on
        a saturated multi-slot worker."""
        self._advance(now)
        if self.inflight_chunks > 0:
            self.inflight_chunks -= 1
        return self.busy_integral

    def observe_chunk(
        self,
        jobs: int,
        seconds: float,
        occupancy: float = 1.0,
        preempted: bool = False,
    ) -> None:
        """Fold one completed chunk (``jobs`` finished in ``seconds``) in.

        ``occupancy`` is the chunk's mean co-residency from the busy
        integral; the raw ``jobs / seconds`` sample is scaled by it (never
        below 1.0) so a multi-slot worker's EWMA converges on delivered
        *whole-worker* capacity instead of per-chunk speed.  Empty chunks
        (a split can leave a zero-job head) and non-positive durations
        carry no throughput information and are ignored.

        ``preempted`` marks the partial completion of a chunk whose tail
        the scheduler revoked (``split`` with ``keep=0`` issued for a
        higher-priority sweep, see :mod:`repro.sched`).  Such a chunk
        finishes few jobs over its full dispatch-to-settlement wall time
        — including the preemption round-trip — so its sample reads like
        a straggler even on a perfectly healthy worker.  The jobs still
        count toward the volume totals, but the speed EWMAs are left
        untouched: being preempted is the scheduler's doing, not the
        worker slowing down.

        >>> stats = WorkerStats("w1")
        >>> stats.observe_chunk(jobs=8, seconds=1.0)       # healthy: 8 jobs/s
        >>> stats.observe_chunk(jobs=1, seconds=5.0, preempted=True)
        >>> stats.throughput                               # estimate intact
        8.0
        >>> stats.jobs_observed                            # volume still counted
        9
        """
        if jobs <= 0 or seconds <= 0.0:
            return
        occupancy = max(1.0, occupancy)
        self.chunks_observed += 1
        self.jobs_observed += jobs
        if preempted:
            return
        self.ewma_throughput = ewma(
            self.ewma_throughput, (jobs / seconds) * occupancy, self.alpha
        )
        self.ewma_chunk_seconds = ewma(self.ewma_chunk_seconds, seconds, self.alpha)

    def observe_heartbeat(self, now: float) -> None:
        """Fold one heartbeat arrival (monotonic timestamp ``now``) in."""
        if self.last_heartbeat is not None:
            gap = now - self.last_heartbeat
            if gap > 0.0:
                self.ewma_heartbeat_gap = ewma(self.ewma_heartbeat_gap, gap, self.alpha)
        self.last_heartbeat = now

    def expected_jobs(self, window: float, slots: int = 1) -> Optional[int]:
        """Jobs one *chunk* should finish inside a ``window``-second slot.

        The adaptive scheduler's sizing primitive.  The EWMA tracks
        whole-worker capacity, but a chunk occupies a single slot, so a
        ``slots``-wide worker runs each chunk at ``throughput / slots`` —
        dividing back down keeps window sizing exact however wide the
        worker is.  Floored at one job so even the slowest worker keeps
        receiving work; ``None`` while the throughput is still unknown —
        the scheduler then falls back to its probe chunk size.
        """
        if self.ewma_throughput is None:
            return None
        per_slot = self.ewma_throughput / max(1, slots)
        return max(1, int(round(per_slot * window)))

    def expected_seconds(self, jobs: int, slots: int = 1) -> Optional[float]:
        """Predicted wall time for ``jobs`` more jobs in one chunk (which
        runs on one of the worker's ``slots``)."""
        if self.ewma_throughput is None or self.ewma_throughput <= 0.0:
            return None
        return jobs / (self.ewma_throughput / max(1, slots))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (surfaced in ``cluster status``)."""
        return {
            "throughput_jobs_per_s": self.ewma_throughput,
            "ewma_chunk_seconds": self.ewma_chunk_seconds,
            "ewma_heartbeat_gap": self.ewma_heartbeat_gap,
            "chunks_observed": self.chunks_observed,
            "jobs_observed": self.jobs_observed,
            "inflight_chunks": self.inflight_chunks,
        }


class TelemetryBook:
    """Per-worker :class:`WorkerStats`, keyed by worker id.

    The coordinator owns exactly one book; entries are created lazily on
    first observation and dropped (:meth:`forget`) when their worker dies.
    Worker ids are per-connection — a reconnecting worker gets a fresh id,
    hence fresh stats — so a stale speed estimate never outlives the
    connection that produced it, the pool median never counts the dead,
    and the book stays bounded under worker churn.

    >>> book = TelemetryBook()
    >>> book.observe_chunk("w1", jobs=4, seconds=1.0)
    >>> book.observe_chunk("w2", jobs=1, seconds=1.0)
    >>> book.get("w1").throughput
    4.0
    >>> book.pool_median_throughput()
    2.5
    >>> book.forget("w1")
    >>> book.get("w1") is None
    True
    >>> book.get("missing") is None
    True
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        self.alpha = alpha
        self._stats: Dict[str, WorkerStats] = {}

    def _entry(self, worker_id: str) -> WorkerStats:
        stats = self._stats.get(worker_id)
        if stats is None:
            stats = self._stats[worker_id] = WorkerStats(worker_id, alpha=self.alpha)
        return stats

    def get(self, worker_id: str) -> Optional[WorkerStats]:
        """Stats of one worker, or ``None`` before its first observation."""
        return self._stats.get(worker_id)

    def forget(self, worker_id: str) -> None:
        """Drop one worker's stats (called when its connection dies)."""
        self._stats.pop(worker_id, None)

    def observe_chunk(
        self,
        worker_id: str,
        jobs: int,
        seconds: float,
        occupancy: float = 1.0,
        preempted: bool = False,
    ) -> None:
        self._entry(worker_id).observe_chunk(
            jobs, seconds, occupancy=occupancy, preempted=preempted
        )

    def observe_heartbeat(self, worker_id: str, now: float) -> None:
        self._entry(worker_id).observe_heartbeat(now)

    def chunk_dispatched(self, worker_id: str, now: float) -> float:
        """Bracket start: one more chunk in flight on ``worker_id``."""
        return self._entry(worker_id).chunk_dispatched(now)

    def chunk_settled(self, worker_id: str, now: float) -> float:
        """Bracket end.  Uses :meth:`get`, not :meth:`_entry`, so settling
        a chunk of a worker already forgotten (died mid-chunk) does not
        resurrect its stats entry."""
        stats = self.get(worker_id)
        if stats is None:
            return 0.0
        return stats.chunk_settled(now)

    def throughputs(self) -> Dict[str, float]:
        """Known throughputs only — workers still probing are omitted."""
        return {
            worker_id: stats.ewma_throughput
            for worker_id, stats in self._stats.items()
            if stats.ewma_throughput is not None
        }

    def pool_median_throughput(self) -> Optional[float]:
        """Median of the known per-worker throughputs (``None``: no data)."""
        values = list(self.throughputs().values())
        if not values:
            return None
        return float(statistics.median(values))

    def stragglers(self, factor: float = 2.0) -> Iterable[str]:
        """Worker ids measurably slower than the pool.

        A worker is a straggler when its throughput is below
        ``median / factor``; with fewer than two measured workers there is
        no pool to lag behind.

        >>> book = TelemetryBook()
        >>> book.observe_chunk("fast", jobs=10, seconds=1.0)
        >>> book.observe_chunk("slow", jobs=1, seconds=1.0)
        >>> list(book.stragglers(factor=2.0))
        ['slow']
        """
        throughputs = self.throughputs()
        if len(throughputs) < 2:
            return []
        median = self.pool_median_throughput()
        assert median is not None
        threshold = median / max(1.0, factor)
        return [
            worker_id
            for worker_id, value in sorted(throughputs.items())
            if value < threshold
        ]
