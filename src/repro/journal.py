"""Persistent append-only job journal: crash-safe sweep bookkeeping.

A :class:`JobJournal` records the lifecycle of every job the serving tier
accepts — ``submitted`` when a sweep starts executing, then exactly one
terminal record (``completed`` / ``failed`` / ``cancelled``) — as
newline-delimited JSON in a single append-only file under the cache
directory.  The records ride the same NDJSON conventions as both wire
protocols (:mod:`repro.wire` does the encoding, so the line format, key
ordering and size guard are identical to what travels the sockets), which
keeps the journal greppable with the same tooling and trivially parseable.

The journal is what makes a killed server recoverable: a job that was
``submitted`` but never reached a terminal record was interrupted —
``python -m repro serve --resume`` replays exactly those jobs at startup
(:meth:`repro.service.SweepService.resume`), re-running them through the
engine so their artifacts land in the content-addressed cache and a
returning client's resubmit is served warm, bit-identical to an
uninterrupted run.  Because the coordinator of the distributed executor
lives inside the serving process, this also covers coordinator death: the
replayed sweep re-shards across the worker pool from whatever the cache
already holds.  See ``docs/operations.md`` for the recovery runbook.

Durability model:

* records are appended with flush + fsync (default), so a ``SIGKILL``
  loses at most the record being written when the process died;
* a torn final line (the classic crash artifact) is tolerated: readers
  skip undecodable lines instead of failing;
* :meth:`JobJournal.compact` rewrites the file atomically (temp file +
  ``os.replace``) keeping only the still-pending submissions, so the
  journal does not grow forever across restarts.

Examples
--------
>>> import tempfile, pathlib
>>> path = pathlib.Path(tempfile.mkdtemp()) / "journal.ndjson"
>>> journal = JobJournal(path)
>>> journal.record_submitted("db" * 32, "dse", {"fast": True})
>>> [entry.workload for entry in journal.pending()]
['dse']
>>> journal.record_finished("db" * 32, "completed")
>>> journal.pending()
[]
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import threading
import time
from typing import Any, Dict, List, Optional, Union

from repro import wire

PathLike = Union[str, pathlib.Path]

#: File name of the journal inside the cache directory.
JOURNAL_FILENAME = "journal.ndjson"

#: Statuses that end a job's journal lifecycle.
TERMINAL_STATUSES = frozenset({"completed", "failed", "cancelled"})

#: Non-terminal scheduler transitions (:mod:`repro.sched`): a sweep whose
#: in-flight work was preempted for a higher-priority run is ``paused``,
#: and ``resumed`` once its spans dispatch again.  Either way the sweep
#: stays *pending* — :meth:`JobJournal.pending` ignores transition
#: records entirely, so a server killed mid-preemption (``paused`` with
#: no ``resumed``) still replays the sweep on ``serve --resume``, and the
#: replay is bit-identical because jobs are deterministic and
#: content-addressed regardless of where the preemption cut the sweep.
TRANSITION_STATUSES = frozenset({"paused", "resumed"})


def default_journal_path(cache_dir: Optional[PathLike] = None) -> pathlib.Path:
    """Journal location for a given cache root (default: the default cache).

    The journal lives *inside* the cache directory — the artifacts it
    refers to and the record of how they came to be travel together, and
    ``cache clear`` keeps its hands off it (the cache only removes ``.npz``
    files).
    """
    from repro.runtime.cache import default_cache_dir

    root = pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / JOURNAL_FILENAME


@dataclasses.dataclass
class JournalEntry:
    """One pending (interrupted) job recovered from the journal."""

    key: str
    workload: str
    params: Dict[str, Any]
    submitted_at: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class JobJournal:
    """Append-only NDJSON journal of submitted / finished jobs.

    Parameters
    ----------
    path:
        Journal file location (see :func:`default_journal_path`).  Parent
        directories are created on first append.
    fsync:
        Whether every append is fsync'd (default).  Turning it off trades
        crash durability for write latency — with it off, records buffered
        by the OS when the machine (not just the process) dies are lost.

    Raises
    ------
    OSError
        From the append methods when the journal file cannot be created
        or written.

    Every mutating method is thread-safe; the serving tier appends from
    its event loop while reads (``pending`` / ``compact``) may happen from
    anywhere.
    """

    def __init__(self, path: PathLike, fsync: bool = True):
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_submitted(
        self, key: str, workload: str, params: Optional[Dict[str, Any]] = None
    ) -> None:
        """Record that the job ``key`` started executing.

        ``workload`` and ``params`` must be sufficient to re-submit the job
        after a crash — they are exactly what :meth:`pending` hands back to
        the resume machinery.
        """
        self._append(
            {
                "record": "submitted",
                "key": key,
                "workload": workload,
                "params": dict(params or {}),
            }
        )

    def record_finished(self, key: str, status: str) -> None:
        """Record the job's terminal status (from :data:`TERMINAL_STATUSES`)."""
        if status not in TERMINAL_STATUSES:
            raise ValueError(
                f"status must be one of {sorted(TERMINAL_STATUSES)}, got {status!r}"
            )
        self._append({"record": status, "key": key})

    def record_transition(self, key: str, status: str) -> None:
        """Record a non-terminal scheduler transition for job ``key``.

        ``status`` must come from :data:`TRANSITION_STATUSES`.  Transition
        records are pure audit trail: :meth:`pending` skips them (the
        sweep stays recoverable whether the crash hit before, between or
        after them) and :meth:`compact` drops them.

        >>> import tempfile, pathlib
        >>> path = pathlib.Path(tempfile.mkdtemp()) / "journal.ndjson"
        >>> journal = JobJournal(path)
        >>> journal.record_submitted("ab" * 32, "montecarlo", {"shards": 4})
        >>> journal.record_transition("ab" * 32, "paused")
        >>> [entry.workload for entry in journal.pending()]  # still pending
        ['montecarlo']
        >>> journal.record_transition("ab" * 32, "running")
        Traceback (most recent call last):
            ...
        ValueError: status must be one of ['paused', 'resumed'], got 'running'
        """
        if status not in TRANSITION_STATUSES:
            raise ValueError(
                f"status must be one of {sorted(TRANSITION_STATUSES)}, got {status!r}"
            )
        self._append({"record": status, "key": key})

    def _append(self, record: Dict[str, Any]) -> None:
        record = {"ts": time.time(), **record}
        data = wire.encode_message(record)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "ab") as handle:
                handle.write(data)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Reading / recovery
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Every decodable record, in file order.

        Undecodable lines — the torn tail a ``SIGKILL`` mid-append leaves
        behind — are skipped, never fatal.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return []
        records: List[Dict[str, Any]] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                records.append(wire.decode_message(line))
            except wire.ProtocolError:
                continue
        return records

    def pending(self) -> List[JournalEntry]:
        """Jobs submitted but never finished — the crash-interrupted set.

        Entries are deduplicated by key (a job resubmitted across restarts
        appears once) and returned in first-submission order.
        """
        return self._pending_from(self.records())

    @staticmethod
    def _pending_from(records: List[Dict[str, Any]]) -> List[JournalEntry]:
        submitted: Dict[str, JournalEntry] = {}
        for record in records:
            key = record.get("key")
            kind = record.get("record")
            if not isinstance(key, str):
                continue
            if kind == "submitted":
                if key not in submitted:
                    params = record.get("params")
                    submitted[key] = JournalEntry(
                        key=key,
                        workload=str(record.get("workload", "")),
                        params=params if isinstance(params, dict) else {},
                        submitted_at=float(record.get("ts", 0.0)),
                    )
            elif kind in TERMINAL_STATUSES:
                submitted.pop(key, None)
        return list(submitted.values())

    def compact(self) -> int:
        """Atomically rewrite the journal keeping only pending submissions.

        Returns the number of records dropped.  Called by the server on
        startup so terminal records do not accumulate across restarts.
        """
        with self._lock:
            records = self.records()
            before = len(records)
            entries = self._pending_from(records)
            if not self.path.exists():
                return 0
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "wb") as handle:
                for entry in entries:
                    handle.write(
                        wire.encode_message(
                            {
                                "ts": entry.submitted_at,
                                "record": "submitted",
                                "key": entry.key,
                                "workload": entry.workload,
                                "params": entry.params,
                            }
                        )
                    )
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            return before - len(entries)

    def describe(self) -> str:
        """Human-readable one-liner (used by ``serve`` startup logging)."""
        pending = len(self.pending())
        return f"journal at {self.path}: {pending} pending job(s)"
