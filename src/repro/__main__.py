"""``python -m repro`` — unified CLI of the OPTIMA reproduction.

Delegates to :mod:`repro.runtime.cli`; see ``python -m repro --help`` and the
"Running sweeps at scale" section there for the engine options, and
``python -m repro serve --help`` for the multi-client sweep service
(:mod:`repro.service`).
"""

from __future__ import annotations

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
